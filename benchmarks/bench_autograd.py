#!/usr/bin/env python
"""Benchmark the repro autograd engine against the frozen seed engine.

Workloads
---------
``mlp``
    A classifier training step (forward + backward) on a dense MLP.  On the
    seed engine the softmax cross-entropy loss is composed from tape
    primitives (max / exp / sum / log / getitem), which is the only way the
    seed could express it; on the new engine it uses the fused
    ``functional.softmax_cross_entropy`` kernel.  This measures the full
    stack this PR replaces: allocating ``_accumulate`` + non-freeing
    backward vs. in-place accumulation + graph freeing + fused loss.
``reduction``
    A chain of broadcasted elementwise ops and axis reductions — pure tape
    overhead, identical primitives on both engines.
``conv``
    conv2d → relu → max_pool2d → flatten → linear → cross-entropy on the new
    engine only (the seed engine has no dense spatial kernels).
``nn_mlp``
    The same MLP training step (forward + backward + SGD update) expressed
    through ``repro.nn`` modules (``Sequential`` + ``nn.optim.SGD``) vs.
    hand-rolled ``functional`` calls with manual parameter updates — measures
    the overhead the Module/optimizer layer adds over raw kernels.
``tbnet``
    A full ``repro.models.TBNet`` two-branch train step (conv + batch-norm +
    dropout branches, fused head, Adam) on synthetic data — the reference
    model's end-to-end step time.
``tbnet_infer``
    Eval-mode TBNet forward: eager ``no_grad`` dispatch vs. the compiled
    ``repro.serve`` replay of the captured trace (pre-allocated buffers,
    fused composites, no tape).  Ratios land in the JSON's ``inference``
    section; > 1.0 means compiled replay beats eager.  Measured at batch 1
    (latency serving, overhead-dominated) and the conv batch.
``fusion_chain``
    Two pairs, both landing in the ``fusion`` section.  The *training* pair
    (``unfused`` vs ``fused``) trains a linear+relu / mul+add+relu chain
    with the trace-time fusion pass off vs. on — the per-step cost of the
    region-extraction rewrite (plan-cached across steps) against the nodes
    and dispatches it saves.  The *codegen* pair (``eager_fwd`` vs
    ``codegen``; keys prefixed ``fusion_chain/codegen/``) runs just the
    elementwise tail forward — the eager ufunc-by-ufunc sequence with its
    temporaries vs. the single compiled region kernel writing one
    pre-allocated buffer (``repro.codegen``); this is the raw win codegen
    delivers wherever fusion placed a region.
``fusion_reduce``
    The reduction-tail analogue of the codegen pair: the softmax-CE scoring
    tail (``mean(sum(-(logp * t), classes), batch)``) as eager ufuncs with
    a temporary per op vs. one structured region kernel — a fused
    elementwise stage feeding C reduction stages that replay numpy's
    pairwise summation bit-for-bit.  Keys land under
    ``fusion_reduce/codegen/`` in the ``fusion`` section.
``serve_queue``
    The dynamic-batching front end: a burst of single-sample TBNet requests
    served three ways — per-request eager ``no_grad``, per-request batch-1
    ``session.run``, and the queued ``repro.serve.Server`` (bucketed pools,
    sharded workers) — measured as wall-clock throughput over the burst.
    Ratios land in the ``serving`` section; > 1.0 on every row means queued
    dynamic batching beats both per-request paths.  An **overload** pair of
    rows drives arrival rate far above a deterministically capped service
    rate (fault-injected per-serve latency, ``max_batch_size=1``) and
    compares load-shedding (``queue_limit`` + ``shed_oldest``) against
    unbounded queueing: the shed rate and the p99 latency of completed
    requests land in the ``resilience`` section, alongside the queued run's
    resilience counters (``requests_rejected`` / ``requests_expired`` /
    ``batches_retried`` / ``worker_restarts`` / ``latency_ms_p99``).  An
    **observability** pair reruns the burst on two identical servers — the
    default instrumented one (metric registry + span tracer) vs one built
    with ``NULL_REGISTRY`` and tracing off — with interleaved rounds whose
    paired per-round ratios are median-merged; the ``observability``
    section records ``overhead_frac`` (``on/off - 1``; the acceptance
    budget is < 3%).  A **process-serving** pair (headline backend only)
    reruns the queued burst on a thread ``Server`` vs a ``ProcServer``
    (worker processes over shared-memory arenas) and adds an **open-loop**
    arrival-rate sweep — requests submitted on a fixed schedule regardless
    of completions, client-side p99 per offered rate — reporting each
    arm's sustained throughput at a 50 ms p99 SLO; ratios land under
    ``serving`` (``serve_proc/.../process_vs_thread``,
    ``serve_openloop/.../process_vs_thread_slo``) and the raw sweep under
    ``process_serving``.  Process sharding only pays on multi-core hosts;
    single-core runs record a ratio < 1 by design.

Every repro-engine workload runs once per **array backend** (``--backend``,
default: ``numpy fused``), so the JSON records per-backend numbers:
the ``numpy`` reference and the ``fused`` in-place backend side by side.  The
headline ``speedups`` (seed engine vs. repro) are computed against the
``fused`` backend — the successor of the historical inline kernels — while
the ``backends`` section reports numpy-vs-fused ratios per workload (>= 1.0
means fusion pays).

Usage::

    PYTHONPATH=src python benchmarks/bench_autograd.py [--quick] [--output PATH]
        [--backend numpy fused]

Writes ``BENCH_autograd.json`` (see ``schema`` key) with per-workload median
step times and seed/new speedups.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Callable, Dict, List

import numpy as np

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _p in (os.path.join(_ROOT, "src"), _ROOT):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from benchmarks import _seed_tensor as seed_engine  # noqa: E402
from repro import nn, serve  # noqa: E402
from repro.autograd import Tensor as NewTensor  # noqa: E402
from repro.autograd import functional as F  # noqa: E402
from repro.autograd import fusion, no_grad  # noqa: E402
from repro.backend import available_backends, use_backend  # noqa: E402
from repro.models import TBNet, make_synthetic_batch  # noqa: E402

SeedTensor = seed_engine.Tensor


# --------------------------------------------------------------------------- #
# Workload builders: each returns step() -> float running one fwd+bwd pass.
# --------------------------------------------------------------------------- #
def _init_mlp_params(tensor_cls, dims: List[int], rng: np.random.Generator):
    params = []
    for fan_in, fan_out in zip(dims[:-1], dims[1:]):
        w = rng.standard_normal((fan_in, fan_out)).astype(np.float32) / np.sqrt(fan_in)
        b = np.zeros(fan_out, dtype=np.float32)
        params.append(
            (tensor_cls(w, requires_grad=True), tensor_cls(b, requires_grad=True))
        )
    return params


def _manual_cross_entropy(logits, targets_np: np.ndarray):
    """Softmax cross-entropy from tape primitives (the seed-engine path)."""
    n = targets_np.shape[0]
    zmax = logits.max(axis=1, keepdims=True)
    shifted = logits - zmax
    lse = shifted.exp().sum(axis=1, keepdims=True).log()
    logp = shifted - lse
    picked = logp[np.arange(n), targets_np]
    return -(picked.mean())


def build_mlp_step(engine: str, batch: int, dims: List[int], rng: np.random.Generator) -> Callable[[], float]:
    tensor_cls = SeedTensor if engine == "seed" else NewTensor
    params = _init_mlp_params(tensor_cls, dims, rng)
    x_np = rng.standard_normal((batch, dims[0])).astype(np.float32)
    y_np = rng.integers(0, dims[-1], batch)

    def step() -> float:
        h = tensor_cls(x_np)
        for i, (w, b) in enumerate(params):
            h = (h @ w + b) if engine == "seed" else F.linear(h, w, b)
            if i < len(params) - 1:
                h = h.relu()
        if engine == "seed":
            loss = _manual_cross_entropy(h, y_np)
        else:
            loss = F.softmax_cross_entropy(h, y_np)
        loss.backward()
        for w, b in params:
            w.zero_grad()
            b.zero_grad()
        return float(loss.data)

    return step


def build_reduction_step(engine: str, batch: int, width: int, depth: int, rng: np.random.Generator) -> Callable[[], float]:
    tensor_cls = SeedTensor if engine == "seed" else NewTensor
    x_np = rng.standard_normal((batch, width)).astype(np.float32)
    scale = tensor_cls(rng.standard_normal(width).astype(np.float32), requires_grad=True)
    shift = tensor_cls(rng.standard_normal(width).astype(np.float32), requires_grad=True)

    def step() -> float:
        h = tensor_cls(x_np)
        for _ in range(depth):
            h = (h * scale + shift).relu()
        loss = (h * h).mean() + h.sum(axis=0).mean()
        loss.backward()
        scale.zero_grad()
        shift.zero_grad()
        return float(loss.data)

    return step


def build_conv_step(batch: int, rng: np.random.Generator) -> Callable[[], float]:
    in_c, img = 3, 16
    w1 = NewTensor(rng.standard_normal((8, in_c, 3, 3)).astype(np.float32) * 0.1, requires_grad=True)
    b1 = NewTensor(np.zeros(8, dtype=np.float32), requires_grad=True)
    flat_dim = 8 * (img // 2) * (img // 2)
    w2 = NewTensor(rng.standard_normal((flat_dim, 10)).astype(np.float32) * 0.05, requires_grad=True)
    b2 = NewTensor(np.zeros(10, dtype=np.float32), requires_grad=True)
    params = [w1, b1, w2, b2]
    x_np = rng.standard_normal((batch, in_c, img, img)).astype(np.float32)
    y_np = rng.integers(0, 10, batch)

    def step() -> float:
        h = F.conv2d(NewTensor(x_np), w1, b1, stride=1, padding=1).relu()
        h = F.max_pool2d(h, 2)
        logits = h.flatten() @ w2 + b2
        loss = F.softmax_cross_entropy(logits, y_np)
        loss.backward()
        for p in params:
            p.zero_grad()
        return float(loss.data)

    return step


def build_nn_mlp_step(path: str, batch: int, dims: List[int], rng: np.random.Generator, lr: float = 0.01) -> Callable[[], float]:
    """Same MLP train step via ``repro.nn`` modules or hand-rolled kernels."""
    x_np = rng.standard_normal((batch, dims[0])).astype(np.float32)
    y_np = rng.integers(0, dims[-1], batch)

    if path == "module":
        layers: List[nn.Module] = []
        for i, (fan_in, fan_out) in enumerate(zip(dims[:-1], dims[1:])):
            layers.append(nn.Linear(fan_in, fan_out, rng=rng))
            if i < len(dims) - 2:
                layers.append(nn.ReLU())
        model = nn.Sequential(*layers)
        opt = nn.optim.SGD(model.parameters(), lr=lr)

        def step() -> float:
            loss = F.softmax_cross_entropy(model(NewTensor(x_np)), y_np)
            loss.backward()
            opt.step()
            opt.zero_grad()
            return float(loss.data)

        return step

    params = _init_mlp_params(NewTensor, dims, rng)

    def step() -> float:
        h = NewTensor(x_np)
        for i, (w, b) in enumerate(params):
            h = F.linear(h, w, b)
            if i < len(params) - 1:
                h = h.relu()
        loss = F.softmax_cross_entropy(h, y_np)
        loss.backward()
        for w, b in params:
            w.data -= lr * w.grad
            b.data -= lr * b.grad
            w.zero_grad()
            b.zero_grad()
        return float(loss.data)

    return step


def build_tbnet_step(batch: int, rng: np.random.Generator) -> Callable[[], float]:
    """Full two-branch reference-model train step with Adam."""
    model = TBNet(width=16, rng=rng)
    opt = nn.optim.Adam(model.parameters(), lr=1e-3)
    images, context, targets = make_synthetic_batch(batch, rng=rng)

    def step() -> float:
        return model.train_step(opt, images, context, targets)

    return step


def build_tbnet_infer_step(mode: str, batch: int, rng: np.random.Generator) -> Callable[[], float]:
    """Eval-mode TBNet forward: eager ``no_grad`` vs. compiled trace replay."""
    model = TBNet(width=16, rng=rng)
    model.eval()
    images, context, _ = make_synthetic_batch(batch, rng=rng)

    if mode == "compiled":
        session = serve.compile_inference(model, (images, context))

        def step() -> float:
            return float(session.run(images, context)[0, 0])

        return step

    def step() -> float:
        with no_grad():
            return float(model(images, context).data[0, 0])

    return step


def build_fusion_chain_step(
    fused: bool,
    batch: int,
    rng: np.random.Generator,
    width: int = 128,
    depth: int = 3,
    tail: int = 3,
) -> Callable[[], float]:
    """Forward+backward over fusable chains, with the rewrite pass off/on.

    The ``tail`` rounds of ``relu(h * scale + shift)`` form one maximal
    elementwise region (3 * tail ops), the shape region fusion targets:
    the fused backward runs it as a single thunk and skips the ownership
    copy on every interior link, so the saving scales with chain depth
    while the per-step plan machinery stays constant.
    """
    params: List[NewTensor] = []
    layers = []
    for _ in range(depth):
        w = NewTensor(rng.standard_normal((width, width)).astype(np.float32) / np.sqrt(width), requires_grad=True)
        b = NewTensor(np.zeros(width, dtype=np.float32), requires_grad=True)
        layers.append((w, b))
        params += [w, b]
    scale = NewTensor(rng.standard_normal(width).astype(np.float32), requires_grad=True)
    shift = NewTensor(rng.standard_normal(width).astype(np.float32), requires_grad=True)
    params += [scale, shift]
    x_np = rng.standard_normal((batch, width)).astype(np.float32)

    def step() -> float:
        with fusion.using_fusion(fused):
            h = NewTensor(x_np)
            for w, b in layers:
                h = F.linear(h, w, b).relu()  # linear+relu chains
            for _ in range(tail):
                h = (h * scale + shift).relu()  # one 3*tail-op region
            loss = (h * h).mean()
            loss.backward()
        for p in params:
            p.zero_grad()
        return float(loss.data)

    return step


def build_fusion_tail_step(
    mode: str, batch: int, rng: np.random.Generator, width: int = 128, depth: int = 4
) -> Callable[[], float]:
    """Forward-only elementwise tail: ``depth`` rounds of relu(h*scale+shift).

    ``eager_fwd`` runs the exact ufunc sequence the unfused tape executes
    (allocating every temporary); ``codegen`` runs the same program as one
    region kernel through the active backend's ``compile_region`` hook,
    writing a single pre-allocated output buffer.  The two arms are
    bit-equal by the codegen contract — the ratio is pure execution cost.
    """
    from repro.backend import get_backend
    from repro.codegen import RegionIR, RegionInput

    x = rng.standard_normal((batch, width)).astype(np.float32)
    scale = rng.standard_normal(width).astype(np.float32)
    shift = rng.standard_normal(width).astype(np.float32)

    if mode == "codegen":
        ops = []
        h_slot = 0  # x
        for _ in range(depth):
            ops.append(("mul", (h_slot, 1)))
            ops.append(("add", (len(ops) + 2, 2)))
            ops.append(("relu", (len(ops) + 2,)))
            h_slot = len(ops) + 2
        region = RegionIR(
            [
                RegionInput(np.float32, x.shape),
                RegionInput(np.float32, scale.shape),
                RegionInput(np.float32, shift.shape),
            ],
            ops,
            x.shape,
            np.float32,
        )
        kern = get_backend().compile_region(region)
        buf = np.empty(x.shape, np.float32)
        arrays = [x, scale, shift]

        def step() -> float:
            out = kern(arrays, out=buf)
            return float(out[0, 0])

        return step

    def step() -> float:
        h = x
        for _ in range(depth):
            h = np.maximum(np.add(np.multiply(h, scale), shift), 0.0)
        return float(h[0, 0])

    return step


def build_fusion_reduce_step(
    mode: str, batch: int, rng: np.random.Generator, classes: int = 512
) -> Callable[[], float]:
    """Forward-only softmax-CE scoring tail: ``mean(sum(-(logp * t), -1))``.

    ``eager_fwd`` is the ufunc-by-ufunc sequence (one temporary per op, a
    numpy reduction per axis group); ``codegen`` runs the same program as
    one structured region — the elementwise stage and both reduction
    stages compiled, the C reductions replaying numpy's pairwise summation
    bit-for-bit — through the active backend's ``compile_region`` hook.
    """
    from repro.backend import get_backend
    from repro.codegen import RegionIR, RegionInput

    logp = -np.abs(rng.standard_normal((batch, classes))).astype(np.float32)
    t = rng.random((batch, classes)).astype(np.float32)

    if mode == "codegen":
        region = RegionIR(
            [
                RegionInput(np.float32, logp.shape),
                RegionInput(np.float32, t.shape),
            ],
            [
                ("mul", (0, 1)),
                ("neg", (2,)),
                ("sum", (3,), (1, False)),
                ("mean", (4,), (1, False)),
            ],
            (),
            np.float32,
        )
        kern = get_backend().compile_region(region)
        buf = np.empty((), np.float32)
        arrays = [logp, t]

        def step() -> float:
            return float(kern(arrays, out=buf))

        return step

    def step() -> float:
        loss = np.negative(np.multiply(logp, t)).sum(axis=-1).mean(axis=-1)
        return float(loss)

    return step


def run_serve_queue(
    n_requests: int,
    buckets,
    workers: int,
    max_wait: float,
    rng: np.random.Generator,
    rounds: int,
) -> Dict:
    """Throughput of three ways to serve a burst of single-sample requests.

    ``eager`` runs the model's ``no_grad`` forward per request, ``session``
    replays a batch-1 compiled session per request, and ``queued`` submits
    every request to a :class:`repro.serve.Server` (bucketed pools over
    ``workers`` sharded threads) and drains the futures.  Unlike the
    step-timed workloads this measures wall clock over the whole burst —
    the queue's win *is* the coalescing, which per-step timing would hide.
    """
    model = TBNet(width=16, rng=rng)
    model.eval()
    images, context, _ = make_synthetic_batch(n_requests, rng=rng)
    img, ctx = images.data, context.data
    samples = [(img[i : i + 1], ctx[i : i + 1]) for i in range(n_requests)]

    session = serve.compile_inference(model, (img[:1], ctx[:1]))

    def eager_all() -> None:
        for si, sc in samples:
            model.infer(si, sc)

    def session_all() -> None:
        for si, sc in samples:
            session.run(si, sc)

    server = serve.Server(
        model, (img[:1], ctx[:1]), buckets, workers=workers, max_wait=max_wait
    )
    server.start()

    def queued_all() -> None:
        for future in [server.submit(si, sc) for si, sc in samples]:
            future.result()

    timings: Dict[str, float] = {}
    try:
        for mode, fn in (("eager", eager_all), ("session", session_all), ("queued", queued_all)):
            fn()  # warmup
            best = float("inf")
            for _ in range(rounds):
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            timings[mode] = best
        stats = server.stats()
    finally:
        server.stop()
    return {"timings": timings, "stats": stats}


def run_serve_overload(
    n_requests: int,
    service_delay: float,
    queue_limit: int,
    rng: np.random.Generator,
) -> Dict:
    """Overload (arrival rate >> capacity): load-shedding vs unbounded queue.

    The service rate is capped deterministically: fault-injected latency of
    ``service_delay`` per serve call with ``max_batch_size=1``, so coalescing
    cannot absorb the burst and capacity is exactly ``1/service_delay``
    requests per second.  The whole burst is submitted effectively at once —
    far above capacity — so the unbounded queue builds a backlog whose tail
    latency grows with queue position, while ``shed_oldest`` with
    ``queue_limit`` caps the backlog (bounded p99 for completed requests) at
    the price of cancelled stale futures.  Reports per mode: wall-clock,
    completed count, shed rate, and the p99 latency of completed requests.
    """
    from concurrent.futures import CancelledError

    model = TBNet(width=16, rng=rng)
    model.eval()
    images, context, _ = make_synthetic_batch(n_requests, rng=rng)
    img, ctx = images.data, context.data
    samples = [(img[i : i + 1], ctx[i : i + 1]) for i in range(n_requests)]

    reports: Dict[str, Dict] = {}
    for mode in ("unbounded", "shed"):
        kwargs = (
            {"queue_limit": queue_limit, "overload": "shed_oldest"}
            if mode == "shed"
            else {}
        )
        server = serve.Server(
            model, (img[:1], ctx[:1]), (1,),
            workers=1, max_batch_size=1, max_wait=0.0, **kwargs,
        )
        server.start()
        try:
            with serve.inject_faults(server, latency=service_delay, seed=0):
                start = time.perf_counter()
                futures = [server.submit(si, sc) for si, sc in samples]
                completed = 0
                for future in futures:
                    try:
                        future.result()
                        completed += 1
                    except CancelledError:
                        pass  # shed
                elapsed = time.perf_counter() - start
                stats = server.stats()
        finally:
            server.stop()
        reports[mode] = {
            "elapsed": elapsed,
            "completed": completed,
            "shed_rate": stats["requests_shed"] / max(1.0, stats["requests_submitted"]),
            "latency_ms_p99": stats["latency_ms_p99"],
            "stats": stats,
        }
    return reports


def run_serve_procpool(
    n_requests: int,
    buckets,
    workers: int,
    max_wait: float,
    rng: np.random.Generator,
    rounds: int,
) -> Dict:
    """Closed-loop burst: thread-sharded vs process-sharded serving.

    The same single-sample TBNet burst drains through a thread
    :class:`repro.serve.Server` and a :class:`repro.serve.ProcServer`
    (worker processes over shared-memory arenas/rings) built with
    identical buckets/workers/max_wait.  Rounds interleave the two arms so
    both sample the same load conditions; the best round survives.  On a
    single core the process arm pays IPC for no parallelism and loses; on
    a multi-core host it escapes the interpreter serialization that caps
    thread workers on small (GIL-bound, not BLAS-bound) batches.
    """
    model = TBNet(width=16, rng=rng)
    model.eval()
    images, context, _ = make_synthetic_batch(n_requests, rng=rng)
    img, ctx = images.data, context.data
    samples = [(img[i : i + 1], ctx[i : i + 1]) for i in range(n_requests)]

    servers = {
        "thread": serve.Server(
            model, (img[:1], ctx[:1]), buckets,
            workers=workers, max_wait=max_wait,
        ),
        "process": serve.ProcServer(
            model, (img[:1], ctx[:1]), buckets,
            workers=workers, max_wait=max_wait,
            model_factory=model.spawn_factory(),
        ),
    }
    timings = {"thread": float("inf"), "process": float("inf")}
    stats: Dict[str, Dict] = {}
    try:
        for server in servers.values():
            server.start()

        def burst(server) -> None:
            for future in [server.submit(si, sc) for si, sc in samples]:
                future.result()

        for server in servers.values():
            burst(server)  # warmup (process arm also pays worker compile here)
        for _ in range(max(2, rounds)):
            for mode, server in servers.items():
                start = time.perf_counter()
                burst(server)
                timings[mode] = min(timings[mode], time.perf_counter() - start)
        for mode, server in servers.items():
            snap = server.stats()
            stats[mode] = {
                "batch_occupancy": snap["batch_occupancy"],
                "latency_ms_p99": snap["latency_ms_p99"],
            }
        stats["process"]["start_method"] = servers["process"].start_method
    finally:
        for server in servers.values():
            server.stop()
    return {"timings": timings, "stats": stats}


def run_serve_openloop(
    rates,
    duration: float,
    slo_ms: float,
    buckets,
    workers: int,
    max_wait: float,
    rng: np.random.Generator,
) -> Dict:
    """Open-loop arrival-rate sweep: throughput at a p99 latency SLO.

    Closed-loop bursts hide queueing delay (each client waits for its
    result before "sending" the next request); an open loop submits on a
    fixed arrival schedule regardless of completions, so latency includes
    the backlog a too-slow server accumulates — the standard way serving
    capacity is stated.  Both arms (thread Server, ProcServer) sweep the
    same absolute rate grid; per rate the client-side latency of every
    request is captured in a done-callback and the report records the p99
    and the achieved throughput.  ``sustained_rps`` per arm is the
    achieved throughput of the highest offered rate whose p99 stayed
    within ``slo_ms``.
    """
    model = TBNet(width=16, rng=rng)
    model.eval()
    pool_n = 64
    images, context, _ = make_synthetic_batch(pool_n, rng=rng)
    img, ctx = images.data, context.data
    samples = [(img[i : i + 1], ctx[i : i + 1]) for i in range(pool_n)]

    def sweep(server) -> Dict:
        per_rate = {}
        for future in [server.submit(si, sc) for si, sc in samples]:
            future.result()  # warmup
        for rate in rates:
            n = max(8, int(rate * duration))
            latencies: List[float] = []
            futures = []
            t0 = time.perf_counter()
            for i in range(n):
                target = t0 + i / rate
                now = time.perf_counter()
                if target > now:
                    time.sleep(target - now)
                si, sc = samples[i % pool_n]
                sent = time.perf_counter()
                future = server.submit(si, sc)
                future.add_done_callback(
                    lambda f, s=sent: latencies.append(time.perf_counter() - s)
                )
                futures.append(future)
            for future in futures:
                future.result()
            elapsed = time.perf_counter() - t0
            lat = sorted(latencies)
            per_rate[rate] = {
                "offered_rps": rate,
                "achieved_rps": n / elapsed,
                "p50_ms": lat[len(lat) // 2] * 1e3,
                "p99_ms": lat[min(len(lat) - 1, int(len(lat) * 0.99))] * 1e3,
                "requests": n,
            }
        return per_rate

    report: Dict[str, Dict] = {"slo_ms": slo_ms, "rates": {}, "sustained_rps": {}}
    for mode in ("thread", "process"):
        if mode == "thread":
            server = serve.Server(
                model, (img[:1], ctx[:1]), buckets,
                workers=workers, max_wait=max_wait,
            )
        else:
            server = serve.ProcServer(
                model, (img[:1], ctx[:1]), buckets,
                workers=workers, max_wait=max_wait,
                model_factory=model.spawn_factory(),
            )
        server.start()
        try:
            per_rate = sweep(server)
        finally:
            server.stop()
        report["rates"][mode] = per_rate
        passing = [r["achieved_rps"] for r in per_rate.values()
                   if r["p99_ms"] <= slo_ms]
        report["sustained_rps"][mode] = max(passing, default=0.0)
    return report


def run_obs_overhead(
    n_requests: int,
    buckets,
    workers: int,
    max_wait: float,
    rng: np.random.Generator,
    rounds: int,
) -> Dict:
    """Observability cost on the serving hot path: instrumented on vs off.

    Two identical Servers serve the same single-sample burst.  The ``on``
    arm keeps the default per-server metric registry and span tracer; the
    ``off`` arm is built with ``registry=NULL_REGISTRY, trace=False`` —
    the exact same code path, every metric write a no-op and no spans
    recorded.

    The burst is a threaded queue workload with ms-scale scheduler jitter,
    so a min-merge of a handful of rounds does not converge.  Two noise
    sources need different treatment: per-round scheduler drift (handled
    by pairing — each interleaved round yields one on/off ratio, and the
    session's estimate is the **median** paired ratio) and session-level
    placement luck (a Server's worker threads are created once, so a badly
    placed session is consistently slow — handled by running independent
    sessions with fresh server pairs and keeping the best session's
    median).  ``overhead_frac`` is that ratio minus one (0.01 =
    instrumentation costs 1% of burst wall-clock); the acceptance budget
    is < 3%.  ``on_ms`` / ``off_ms`` report the best session's per-arm
    median round time.
    """
    import statistics

    from repro.obs.metrics import NULL_REGISTRY

    model = TBNet(width=16, rng=rng)
    model.eval()
    images, context, _ = make_synthetic_batch(n_requests, rng=rng)
    img, ctx = images.data, context.data
    samples = [(img[i : i + 1], ctx[i : i + 1]) for i in range(n_requests)]

    def session() -> Dict:
        servers = {
            "on": serve.Server(
                model, (img[:1], ctx[:1]), buckets,
                workers=workers, max_wait=max_wait,
            ),
            "off": serve.Server(
                model, (img[:1], ctx[:1]), buckets,
                workers=workers, max_wait=max_wait,
                registry=NULL_REGISTRY, trace=False,
            ),
        }
        times = {"on": [], "off": []}
        try:
            for server in servers.values():
                server.start()

            def burst(server) -> None:
                for future in [server.submit(si, sc) for si, sc in samples]:
                    future.result()

            for server in servers.values():
                burst(server)  # warmup
            for _ in range(max(12, rounds)):
                for arm, server in servers.items():
                    start = time.perf_counter()
                    burst(server)
                    times[arm].append(time.perf_counter() - start)
        finally:
            for server in servers.values():
                server.stop()
        ratio = statistics.median(
            on / off for on, off in zip(times["on"], times["off"])
        )
        return {
            "on_ms": statistics.median(times["on"]) * 1e3,
            "off_ms": statistics.median(times["off"]) * 1e3,
            "overhead_frac": ratio - 1.0,
        }

    best = min((session() for _ in range(2)),
               key=lambda s: s["overhead_frac"])
    best["requests"] = n_requests
    return best


# --------------------------------------------------------------------------- #
# Timing
# --------------------------------------------------------------------------- #
def time_pair(step_a, step_b, repeats: int, inner: int, warmup: int):
    """:func:`time_step` for a ratio-bearing pair of steps.

    The two steps alternate per inner-block on a single timeline, so both
    arms sample the same load/thermal conditions at a granularity of one
    block (~a millisecond) instead of one whole measurement (~a second).
    On a busy host, coarse interleaving was observed to swing a ~1.0 ratio
    by >15% between runs; block-level pairing keeps both medians and both
    minima drawn from the same noise process.  Returns two dicts shaped
    like :func:`time_step` results.
    """
    for _ in range(warmup):
        step_a()
        step_b()
    samples_a: List[float] = []
    samples_b: List[float] = []
    loss_a = loss_b = float("nan")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            loss_a = step_a()
        samples_a.append((time.perf_counter() - start) / inner)
        start = time.perf_counter()
        for _ in range(inner):
            loss_b = step_b()
        samples_b.append((time.perf_counter() - start) / inner)

    def _pack(samples: List[float], loss: float) -> Dict:
        samples = sorted(samples)
        return {
            "per_step_ms": samples[len(samples) // 2] * 1e3,
            "best_ms": samples[0] * 1e3,
            "repeats": repeats,
            "inner_steps": inner,
            "final_loss": loss,
        }

    return _pack(samples_a, loss_a), _pack(samples_b, loss_b)


def time_step(step: Callable[[], float], repeats: int, inner: int, warmup: int) -> Dict:
    for _ in range(warmup):
        step()
    samples = []
    loss = float("nan")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            loss = step()
        samples.append((time.perf_counter() - start) / inner)
    samples.sort()
    median = samples[len(samples) // 2]
    return {
        "per_step_ms": median * 1e3,
        "best_ms": samples[0] * 1e3,
        "repeats": repeats,
        "inner_steps": inner,
        "final_loss": loss,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--output", default=os.path.join(_ROOT, "BENCH_autograd.json"))
    parser.add_argument("--quick", action="store_true", help="tiny config for CI smoke runs")
    parser.add_argument("--repeats", type=int, default=None, help="timing repeats per workload")
    parser.add_argument("--batch-sizes", type=int, nargs="+", default=None)
    parser.add_argument(
        "--backend",
        nargs="+",
        choices=available_backends(),
        default=None,
        help="array backends to benchmark the repro engine under "
        "(default: numpy fused; others, e.g. lazy, are opt-in)",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="interleaved measurement rounds per row (default: 3, 1 with --quick); "
        "raise on noisy hosts so the min-merged timings converge",
    )
    args = parser.parse_args(argv)
    if args.rounds is not None and args.rounds < 1:
        parser.error("--rounds must be >= 1")

    quick = args.quick
    repeats = args.repeats or (3 if quick else 15)
    inner = 2 if quick else 10
    warmup = 1 if quick else 5
    batches = args.batch_sizes or ([32] if quick else [64, 256])
    # Reference first: the numpy run absorbs any residual warm-up cost so the
    # fused numbers are never flattered by ordering.  Other registered
    # backends (e.g. ``lazy``) are opt-in via --backend: the default matrix
    # stays the two whose rows every trend gate keys on.
    backends = args.backend or [n for n in ("numpy", "fused") if n in available_backends()]
    mlp_dims = [64, 64, 64, 64, 10]
    red_width, red_depth = 256, 8

    results = []

    # Every row — seed engine and repro alike — is the min-merge of `rounds`
    # independent time_step rounds, so the two sides of every ratio in the
    # report share one measurement methodology.
    rounds = args.rounds or (1 if quick else 3)

    def _min_merge(merged, timing) -> Dict:
        if merged is None:
            return dict(timing)
        merged["best_ms"] = min(merged["best_ms"], timing["best_ms"])
        merged["per_step_ms"] = min(merged["per_step_ms"], timing["per_step_ms"])
        return merged

    def record(workload: str, engine: str, batch: int, make_step, bench_inner: int, backend=None) -> Dict:
        merged = None
        for _ in range(rounds):
            merged = _min_merge(merged, time_step(make_step(), repeats, bench_inner, warmup))
        rec = {"workload": workload, "engine": engine, "batch": batch, "backend": backend}
        rec.update(merged)
        results.append(rec)
        tag = engine if backend is None else f"{engine}/{backend}"
        print(f"{workload:9s}{tag:14s} batch={batch:<4d} {rec['per_step_ms']:8.3f} ms/step")
        return rec

    def record_backends(workload: str, engine: str, batch: int, make_step, bench_inner: int) -> None:
        """Measure ``make_step()`` under every backend, interleaved.

        ``rounds`` alternating rounds per backend (one in --quick mode, where
        no interleaving happens) give each backend early and late slots, so
        thermal/load drift over the run cannot systematically favor whichever
        backend happens to be measured last; the best (minimum) timings
        across rounds survive into the record.
        """
        merged: Dict[str, Dict] = {}
        for _ in range(rounds):
            for bname in backends:
                with use_backend(bname):
                    step = make_step()
                    timing = time_step(step, repeats, bench_inner, warmup)
                merged[bname] = _min_merge(merged.get(bname), timing)
        for bname in backends:
            rec = {"workload": workload, "engine": engine, "batch": batch, "backend": bname}
            rec.update(merged[bname])
            results.append(rec)
            print(f"{workload:9s}{engine + '/' + bname:14s} batch={batch:<4d} {rec['per_step_ms']:8.3f} ms/step")

    # Each (workload, batch) gets its own fixed seed so the seed and repro
    # engines (under every backend) train on byte-identical weights and
    # inputs.  The seed engine predates the backend registry, so its rows
    # carry backend=None; repro rows are repeated per requested backend with
    # the whole build+measure loop running under that backend.
    for batch in batches:
        record("mlp", "seed", batch,
               lambda b=batch: build_mlp_step("seed", b, mlp_dims, np.random.default_rng(1000 + b)),
               inner)
        record_backends(
            "mlp", "repro", batch,
            lambda b=batch: build_mlp_step("repro", b, mlp_dims, np.random.default_rng(1000 + b)),
            inner,
        )

        record("reduction", "seed", batch,
               lambda b=batch: build_reduction_step("seed", b, red_width, red_depth, np.random.default_rng(2000 + b)),
               inner)
        record_backends(
            "reduction", "repro", batch,
            lambda b=batch: build_reduction_step("repro", b, red_width, red_depth, np.random.default_rng(2000 + b)),
            inner,
        )

    conv_batch = batches[0] if quick else 64
    record_backends(
        "conv", "repro", conv_batch,
        lambda: build_conv_step(conv_batch, np.random.default_rng(3000 + conv_batch)),
        max(1, inner // 2),
    )

    for batch in batches:
        for path in ("functional", "module"):
            record_backends(
                "nn_mlp", path, batch,
                lambda p=path, b=batch: build_nn_mlp_step(p, b, mlp_dims, np.random.default_rng(4000 + b)),
                inner,
            )

    tbnet_batch = batches[0] if quick else 64
    record_backends(
        "tbnet", "module", tbnet_batch,
        lambda: build_tbnet_step(tbnet_batch, np.random.default_rng(5000 + tbnet_batch)),
        max(1, inner // 2),
    )

    def record_engine_pair(workload: str, engines, batch: int, make_step, bench_inner: int) -> None:
        """``record_backends`` for a ratio-bearing engine pair.

        The two engines are measured with :func:`time_pair` — alternating
        per inner-block on one timeline — so both sides of the reported
        ratio sample identical load/thermal conditions.  Measuring the pair
        in disjoint time windows — as the plain per-engine loop does — was
        observed to swing a ~1.0 fusion ratio by >15% on a busy host,
        which is larger than the effect being gated.  At least two rounds
        run even under ``--quick``, with the backend order rotated so no
        cell is always measured last.
        """
        ea, eb = engines
        merged: Dict[tuple, Dict] = {}
        for r in range(max(2, rounds)):
            for bname in backends[r % len(backends):] + backends[: r % len(backends)]:
                with use_backend(bname):
                    timing_a, timing_b = time_pair(
                        make_step(ea), make_step(eb), repeats, bench_inner, warmup
                    )
                merged[(ea, bname)] = _min_merge(merged.get((ea, bname)), timing_a)
                merged[(eb, bname)] = _min_merge(merged.get((eb, bname)), timing_b)
        for ename in engines:
            for bname in backends:
                rec = {"workload": workload, "engine": ename, "batch": batch, "backend": bname}
                rec.update(merged[(ename, bname)])
                results.append(rec)
                print(f"{workload:9s}{ename + '/' + bname:14s} batch={batch:<4d} {rec['per_step_ms']:8.3f} ms/step")

    # Serving: eager no_grad vs compiled replay, at the latency-serving batch
    # (1, overhead-dominated like the paper's short-block workloads) and the
    # conv batch.  The eager/compiled pair backs the inference ratios, so it
    # is measured with the pair interleaved like the fusion rows.
    # Batch 1 runs even under --quick: the shape-specialized bucket kernels
    # are gated on the batch-1 ratio in CI, and the row is cheap to measure.
    infer_batches = [1, tbnet_batch] if tbnet_batch != 1 else [tbnet_batch]
    for batch in infer_batches:
        record_engine_pair(
            "tbnet_infer", ("eager", "compiled"), batch,
            lambda m, b=batch: build_tbnet_infer_step(m, b, np.random.default_rng(6000 + b)),
            inner,
        )

    # Trace-time fusion: the rewrite pass off vs on over fusable chains.
    # Pinned to batch 64 even under --quick: the fusion ratio's sign depends
    # on array size (fixed plan-cache cost vs size-scaled backward savings),
    # and the CI gate reads the quick run — gate and full bench must measure
    # the same operating point.  An explicit --batch-sizes still wins.
    fusion_batch = batches[0] if args.batch_sizes else 64
    # Full-size inner blocks even under --quick: these steps run in ~0.5ms,
    # so 2-step blocks sit at the timer's noise floor and the gated ratio
    # swings ±5%; 10-step blocks cost ~100ms extra total and stabilize it.
    fusion_inner = max(inner, 10)
    record_engine_pair(
        "fusion_chain", ("unfused", "fused"), fusion_batch,
        lambda m: build_fusion_chain_step(m == "fused", fusion_batch, np.random.default_rng(7000)),
        fusion_inner,
    )
    # Codegen: the elementwise tail forward, eager ufuncs vs one compiled
    # region kernel (the numpy-interpreter arm when no compiler exists).
    record_engine_pair(
        "fusion_chain", ("eager_fwd", "codegen"), fusion_batch,
        lambda m: build_fusion_tail_step(m, fusion_batch, np.random.default_rng(7100)),
        fusion_inner,
    )
    # Reduction-tail codegen: the softmax-CE scoring tail as eager ufuncs
    # plus numpy reductions vs one structured (map + reduce stages) region
    # kernel through compile_region.
    record_engine_pair(
        "fusion_reduce", ("eager_fwd", "codegen"), fusion_batch,
        lambda m: build_fusion_reduce_step(m, fusion_batch, np.random.default_rng(7200)),
        fusion_inner,
    )

    # Dynamic-batching front end: a burst of single-sample requests served
    # per-request (eager / compiled session) vs through the queued Server.
    serve_requests = 32 if quick else 192
    serve_buckets = (1, 4, 8) if quick else (1, 4, 16, 64)
    serve_workers = 2
    overload_requests = 32 if quick else 96
    overload_delay = 0.002
    overload_limit = 8
    resilience: Dict[str, Dict] = {}
    for bname in backends:
        with use_backend(bname):
            queue_report = run_serve_queue(
                serve_requests, serve_buckets, serve_workers, 0.001,
                np.random.default_rng(8000), rounds,
            )
        qstats = queue_report["stats"]
        for mode, seconds in queue_report["timings"].items():
            rec = {
                "workload": "serve_queue", "engine": mode, "batch": 1,
                "backend": bname, "requests": serve_requests,
                "total_ms": seconds * 1e3,
                "throughput_rps": serve_requests / seconds,
            }
            if mode == "queued":
                rec["workers"] = serve_workers
                rec["buckets"] = list(serve_buckets)
                rec["batch_occupancy"] = qstats["batch_occupancy"]
                rec["latency_ms_p50"] = qstats["latency_ms_p50"]
                rec["latency_ms_p95"] = qstats["latency_ms_p95"]
                rec["latency_ms_p99"] = qstats["latency_ms_p99"]
            results.append(rec)
            print(
                f"{'serve_q':9s}{mode + '/' + bname:14s} reqs={serve_requests:<4d}"
                f" {rec['throughput_rps']:8.0f} req/s"
            )
        # Overload: arrival >> capacity, shed_oldest vs unbounded queueing.
        with use_backend(bname):
            overload = run_serve_overload(
                overload_requests, overload_delay, overload_limit,
                np.random.default_rng(8100),
            )
        for mode, report in overload.items():
            rec = {
                "workload": "serve_queue", "engine": f"overload_{mode}",
                "batch": 1, "backend": bname, "requests": overload_requests,
                "total_ms": report["elapsed"] * 1e3,
                "completed": report["completed"],
                "shed_rate": report["shed_rate"],
                "latency_ms_p99": report["latency_ms_p99"],
                "queue_limit": overload_limit if mode == "shed" else None,
                "service_delay_ms": overload_delay * 1e3,
            }
            results.append(rec)
            print(
                f"{'serve_o':9s}{mode + '/' + bname:14s} reqs={overload_requests:<4d}"
                f" p99={rec['latency_ms_p99']:7.1f} ms  shed={rec['shed_rate']:.2f}"
            )
        # Resilience counters: the healthy queued run's stats() plus the
        # overload comparison, per backend — CI asserts these keys exist.
        resilience[bname] = {
            "requests_rejected": qstats["requests_rejected"],
            "requests_expired": qstats["requests_expired"],
            "requests_failed": qstats["requests_failed"],
            "batches_retried": qstats["batches_retried"],
            "worker_restarts": qstats["worker_restarts"],
            "latency_ms_p99": qstats["latency_ms_p99"],
            "overload": {
                "queue_limit": overload_limit,
                "service_delay_ms": overload_delay * 1e3,
                "shed_rate": overload["shed"]["shed_rate"],
                "completed_shed": overload["shed"]["completed"],
                "completed_unbounded": overload["unbounded"]["completed"],
                "p99_ms_shed": overload["shed"]["latency_ms_p99"],
                "p99_ms_unbounded": overload["unbounded"]["latency_ms_p99"],
            },
        }

    # Observability overhead: the instrumented hot path (registry + tracer)
    # vs the same Server with NULL_REGISTRY/no tracer, interleaved rounds.
    # A percent-level ratio needs a burst long enough to rise above
    # scheduler jitter, so the pair keeps a floor of 128 requests even in
    # the quick config (~2s extra, and the number is actually meaningful).
    obs_requests = max(128, serve_requests)
    observability: Dict[str, Dict] = {}
    for bname in backends:
        with use_backend(bname):
            obs_report = run_obs_overhead(
                obs_requests, serve_buckets, serve_workers, 0.001,
                np.random.default_rng(8200), rounds,
            )
        observability[bname] = obs_report
        print(
            f"{'serve_m':9s}{'obs/' + bname:14s} reqs={obs_requests:<4d}"
            f" overhead={obs_report['overhead_frac'] * 100:+5.1f}%"
            f" (on={obs_report['on_ms']:.1f}ms off={obs_report['off_ms']:.1f}ms)"
        )

    # Process-sharded serving: thread vs process workers on the same burst,
    # plus the open-loop arrival-rate sweep (throughput at a p99 SLO).
    # Headline backend only — the comparison is worker substrate, not
    # kernels, and the process arm pays a worker-compile warmup per server.
    process_serving: Dict[str, Dict] = {}
    proc_backend = "fused" if "fused" in backends else backends[0]
    openloop_rates = [50, 100, 200] if quick else [100, 200, 400, 800]
    openloop_duration = 0.25 if quick else 0.5
    openloop_slo_ms = 50.0
    with use_backend(proc_backend):
        proc_report = run_serve_procpool(
            serve_requests, serve_buckets, serve_workers, 0.001,
            np.random.default_rng(8300), rounds,
        )
        open_report = run_serve_openloop(
            openloop_rates, openloop_duration, openloop_slo_ms,
            serve_buckets, serve_workers, 0.001,
            np.random.default_rng(8400),
        )
    thread_s = proc_report["timings"]["thread"]
    process_s = proc_report["timings"]["process"]
    for mode, seconds in proc_report["timings"].items():
        rec = {
            "workload": "serve_proc", "engine": mode, "batch": 1,
            "backend": proc_backend, "requests": serve_requests,
            "workers": serve_workers, "total_ms": seconds * 1e3,
            "throughput_rps": serve_requests / seconds,
            "latency_ms_p99": proc_report["stats"][mode]["latency_ms_p99"],
        }
        results.append(rec)
        print(
            f"{'serve_p':9s}{mode + '/' + proc_backend:14s}"
            f" reqs={serve_requests:<4d}"
            f" {rec['throughput_rps']:8.0f} req/s"
        )
    sustained = open_report["sustained_rps"]
    process_serving[proc_backend] = {
        "workers": serve_workers,
        "cores": os.cpu_count(),
        "start_method": proc_report["stats"]["process"]["start_method"],
        "burst": {
            "thread_rps": serve_requests / thread_s,
            "process_rps": serve_requests / process_s,
            "process_vs_thread": thread_s / process_s,
        },
        "openloop": open_report,
    }
    if sustained["thread"] > 0:
        process_serving[proc_backend]["openloop"]["process_vs_thread_slo"] = (
            sustained["process"] / sustained["thread"]
        )
    print(
        f"{'serve_p':9s}{'openloop':14s} slo={openloop_slo_ms:.0f}ms"
        f" thread={sustained['thread']:.0f} rps"
        f" process={sustained['process']:.0f} rps"
    )

    # Headline speedups keep their historical keys and semantics (seed engine
    # vs. repro); the repro side is the fused backend when it was measured,
    # since the fused backend is the successor of the old inline kernels.
    headline = "fused" if "fused" in backends else backends[0]
    speedups = {}
    for workload in ("mlp", "reduction"):
        for batch in batches:
            times = {
                r["backend"] or r["engine"]: r["per_step_ms"]
                for r in results
                if r["workload"] == workload and r["batch"] == batch
            }
            if "seed" in times and headline in times:
                speedups[f"{workload}/batch{batch}"] = times["seed"] / times[headline]

    # Per-workload backend comparison: numpy reference vs fused (>= 1.0 means
    # the fused backend meets or beats the reference).  Uses best-of timings:
    # the minimum over repeats is the least noise-contaminated estimate of a
    # deterministic step, so ratios between two near-identical code paths are
    # not dominated by scheduler jitter.
    backend_speedups = {}
    if "numpy" in backends and "fused" in backends:
        for r in results:
            # serve_queue rows carry burst throughput, not per-step timings.
            if r["backend"] != "numpy" or r["engine"] == "seed" or "best_ms" not in r:
                continue
            twin = next(
                (
                    s for s in results
                    if s["backend"] == "fused"
                    and (s["workload"], s["engine"], s["batch"])
                    == (r["workload"], r["engine"], r["batch"])
                ),
                None,
            )
            if twin is not None:
                key = f"{r['workload']}/{r['engine']}/batch{r['batch']}"
                backend_speedups[key] = r["best_ms"] / twin["best_ms"]

    def _paired_ratio(workload: str, num_engine: str, den_engine: str) -> Dict[str, float]:
        """Per-backend/batch best-of ratios between two engines of a workload."""
        ratios = {}
        for r in results:
            if r["workload"] != workload or r["engine"] != num_engine:
                continue
            twin = next(
                (
                    s for s in results
                    if s["workload"] == workload and s["engine"] == den_engine
                    and (s["backend"], s["batch"]) == (r["backend"], r["batch"])
                ),
                None,
            )
            if twin is not None:
                key = f"{workload}/{r['backend']}/batch{r['batch']}"
                ratios[key] = r["best_ms"] / twin["best_ms"]
        return ratios

    # Inference section: eager-vs-compiled per backend/batch (> 1.0 means the
    # compiled replay beats the eager no_grad forward).
    inference = _paired_ratio("tbnet_infer", "eager", "compiled")
    # Fusion section: unfused-vs-fused training over the same chains, plus
    # the forward-only eager-vs-codegen tail under its own key prefix.
    fusion_ratios = _paired_ratio("fusion_chain", "unfused", "fused")
    for key, value in _paired_ratio("fusion_chain", "eager_fwd", "codegen").items():
        fusion_ratios[key.replace("fusion_chain/", "fusion_chain/codegen/", 1)] = value
    for key, value in _paired_ratio("fusion_reduce", "eager_fwd", "codegen").items():
        fusion_ratios[key.replace("fusion_reduce/", "fusion_reduce/codegen/", 1)] = value

    # Serving section: queued dynamic batching vs both per-request paths
    # (> 1.0 on every row means the queue front end pays its overhead).
    serving = {}
    for bname in backends:
        rows = {
            r["engine"]: r for r in results
            if r["workload"] == "serve_queue" and r["backend"] == bname
        }
        if {"eager", "session", "queued"} <= rows.keys():
            queued_rps = rows["queued"]["throughput_rps"]
            serving[f"serve_queue/{bname}/queued_vs_session"] = (
                queued_rps / rows["session"]["throughput_rps"]
            )
            serving[f"serve_queue/{bname}/queued_vs_eager"] = (
                queued_rps / rows["eager"]["throughput_rps"]
            )
        if {"overload_unbounded", "overload_shed"} <= rows.keys():
            # > 1.0 means load-shedding bounds the completed-request p99
            # that unbounded queueing lets grow with the backlog.
            shed_p99 = rows["overload_shed"]["latency_ms_p99"]
            if shed_p99 > 0:
                serving[f"serve_queue/{bname}/overload_p99_unbounded_vs_shed"] = (
                    rows["overload_unbounded"]["latency_ms_p99"] / shed_p99
                )
    for bname, section in process_serving.items():
        # Worker-substrate ratios: > 1.0 means process sharding beats
        # thread sharding (expect < 1.0 on a single core, where the
        # process arm pays IPC for no parallelism).
        serving[f"serve_proc/{bname}/process_vs_thread"] = (
            section["burst"]["process_vs_thread"]
        )
        slo_ratio = section["openloop"].get("process_vs_thread_slo")
        if slo_ratio is not None:
            serving[f"serve_openloop/{bname}/process_vs_thread_slo"] = slo_ratio

    # Module-vs-functional ratios are overhead measurements, not seed-engine
    # speedups, so they live under their own key: the ROADMAP's "beat the
    # speedups" rule must not treat them as a perf trajectory.
    overhead = {}
    for batch in batches:
        times = {
            r["engine"]: r["per_step_ms"]
            for r in results
            if r["workload"] == "nn_mlp" and r["batch"] == batch and r["backend"] == headline
        }
        if "functional" in times and "module" in times:
            # >= 1.0 means the Module layer is free; < 1.0 is its overhead.
            overhead[f"nn_mlp/batch{batch}"] = times["functional"] / times["module"]

    from repro.codegen import codegen_stats, have_compiler

    report = {
        "schema": "bench_autograd/v9",
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "quick": quick,
            "backends": backends,
            "headline_backend": headline,
            # Pinning BLAS to one thread (OMP_NUM_THREADS=1) stabilizes the
            # numpy-vs-fused ratios on noisy hosts; record it so artifacts
            # are only compared like-for-like.
            "blas_threads": os.environ.get("OMP_NUM_THREADS", "default"),
        },
        "config": {
            "mlp_dims": mlp_dims,
            "reduction": {"width": red_width, "depth": red_depth},
            "batch_sizes": batches,
            "repeats": repeats,
            "inner_steps": inner,
            "rounds": rounds,
        },
        "results": results,
        "speedups": speedups,
        "backends": backend_speedups,
        "overhead": overhead,
        "inference": inference,
        "fusion": fusion_ratios,
        # Whether the codegen rows above ran the compiled arm or the
        # interpreter fallback, and how the kernel cache behaved.
        "codegen": {"have_compiler": have_compiler(), **codegen_stats()},
        "serving": serving,
        "resilience": resilience,
        "observability": observability,
        "process_serving": process_serving,
    }
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"\nwrote {args.output}")
    for key, value in sorted(speedups.items()):
        print(f"  speedup {key}: {value:.2f}x")
    for key, value in sorted(backend_speedups.items()):
        print(f"  backend {key}: {value:.2f}x (numpy/fused)")
    for key, value in sorted(overhead.items()):
        print(f"  overhead {key}: {value:.2f}x (functional/module)")
    for key, value in sorted(inference.items()):
        print(f"  inference {key}: {value:.2f}x (eager/compiled)")
    for key, value in sorted(fusion_ratios.items()):
        print(f"  fusion {key}: {value:.2f}x (unfused/fused)")
    for key, value in sorted(serving.items()):
        print(f"  serving {key}: {value:.2f}x (queued throughput gain)")
    for bname, section in sorted(resilience.items()):
        over = section["overload"]
        print(
            f"  resilience {bname}: shed_rate={over['shed_rate']:.2f} "
            f"p99 shed={over['p99_ms_shed']:.1f}ms vs "
            f"unbounded={over['p99_ms_unbounded']:.1f}ms"
        )
    for bname, section in sorted(observability.items()):
        print(
            f"  observability {bname}: overhead="
            f"{section['overhead_frac'] * 100:+.1f}% (budget < 3%)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
