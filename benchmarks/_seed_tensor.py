"""A reverse-mode autograd tensor backed by numpy.

The design follows the classic "define-by-run tape" approach: every operation
on :class:`Tensor` objects produces a new tensor that remembers its parents and
a closure computing the local vector-Jacobian product.  Calling
:meth:`Tensor.backward` performs a topological sort of the recorded graph and
accumulates gradients into ``.grad`` of every tensor that requires them.

Only the operations needed by the TBNet reproduction are implemented, but each
is implemented for arbitrary broadcastable shapes so the layer code in
:mod:`repro.nn` stays simple.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph recording (like ``torch.no_grad``)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _as_array(value: ArrayLike, dtype=np.float32) -> np.ndarray:
    if isinstance(value, np.ndarray):
        if value.dtype != dtype:
            return value.astype(dtype)
        return value
    return np.asarray(value, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``, undoing numpy broadcasting.

    Broadcasting may have added leading dimensions and/or stretched size-1
    dimensions; the adjoint of broadcasting is summation over those axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over extra leading dimensions.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over dimensions that were broadcast from size 1.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff.

    Parameters
    ----------
    data:
        The underlying values (converted to ``float32`` by default).
    requires_grad:
        If ``True`` the tensor accumulates gradients during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "_op")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _prev: Tuple["Tensor", ...] = (),
        _op: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[], None] = lambda: None
        self._prev: Tuple[Tensor, ...] = _prev
        self._op = _op

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def clone(self) -> "Tensor":
        """Return a copy of this tensor that participates in the graph."""
        out = Tensor(self.data.copy(), requires_grad=self._needs_graph(), _prev=(self,), _op="clone")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad)

        out._backward = _backward
        return out

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}, op={self._op!r})"

    def __len__(self) -> int:
        return self.data.shape[0]

    # ------------------------------------------------------------------ #
    # Graph helpers
    # ------------------------------------------------------------------ #
    def _needs_graph(self) -> bool:
        return self.requires_grad and is_grad_enabled()

    def _accumulate(self, grad: Optional[np.ndarray]) -> None:
        if grad is None:
            return
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad = self.grad + grad

    @staticmethod
    def _wrap(other: ArrayLike) -> "Tensor":
        if isinstance(other, Tensor):
            return other
        return Tensor(other)

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        op: str,
        backward: Callable[["Tensor"], Callable[[], None]],
    ) -> "Tensor":
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _prev=parents if requires else (), _op=op)
        if requires:
            out._backward = backward(out)
        return out

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad, self.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(out.grad, other.shape))

            return _backward

        return self._make(self.data + other.data, (self, other), "add", make_backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(-out.grad)

            return _backward

        return self._make(-self.data, (self,), "neg", make_backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-self._wrap(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._wrap(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad * other.data, self.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(out.grad * self.data, other.shape))

            return _backward

        return self._make(self.data * other.data, (self, other), "mul", make_backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(_unbroadcast(out.grad / other.data, self.shape))
                if other.requires_grad:
                    other._accumulate(
                        _unbroadcast(-out.grad * self.data / (other.data ** 2), other.shape)
                    )

            return _backward

        return self._make(self.data / other.data, (self, other), "div", make_backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._wrap(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad * exponent * np.power(self.data, exponent - 1))

            return _backward

        return self._make(np.power(self.data, exponent), (self,), "pow", make_backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = self._wrap(other)

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad @ other.data.swapaxes(-1, -2))
                if other.requires_grad:
                    other._accumulate(self.data.swapaxes(-1, -2) @ out.grad)

            return _backward

        return self._make(self.data @ other.data, (self, other), "matmul", make_backward)

    def abs(self) -> "Tensor":
        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad * np.sign(self.data))

            return _backward

        return self._make(np.abs(self.data), (self,), "abs", make_backward)

    def exp(self) -> "Tensor":
        result = np.exp(self.data)

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad * result)

            return _backward

        return self._make(result, (self,), "exp", make_backward)

    def log(self) -> "Tensor":
        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad / self.data)

            return _backward

        return self._make(np.log(self.data), (self,), "log", make_backward)

    def sqrt(self) -> "Tensor":
        result = np.sqrt(self.data)

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad * 0.5 / result)

            return _backward

        return self._make(result, (self,), "sqrt", make_backward)

    # ------------------------------------------------------------------ #
    # Non-linearities
    # ------------------------------------------------------------------ #
    def relu(self) -> "Tensor":
        mask = self.data > 0

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad * mask)

            return _backward

        return self._make(self.data * mask, (self,), "relu", make_backward)

    def sigmoid(self) -> "Tensor":
        result = 1.0 / (1.0 + np.exp(-self.data))

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad * result * (1.0 - result))

            return _backward

        return self._make(result, (self,), "sigmoid", make_backward)

    def tanh(self) -> "Tensor":
        result = np.tanh(self.data)

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad * (1.0 - result ** 2))

            return _backward

        return self._make(result, (self,), "tanh", make_backward)

    # ------------------------------------------------------------------ #
    # Reductions and shape manipulation
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if not self.requires_grad:
                    return
                grad = out.grad
                if axis is None:
                    grad = np.broadcast_to(grad, self.shape)
                else:
                    if not keepdims:
                        grad = np.expand_dims(grad, axis=axis)
                    grad = np.broadcast_to(grad, self.shape)
                self._accumulate(grad.astype(self.data.dtype))

            return _backward

        return self._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), "sum", make_backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mean = self.mean(axis=axis, keepdims=True)
        centered = self - mean
        result = (centered * centered).mean(axis=axis, keepdims=keepdims)
        return result

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original_shape = self.shape

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad.reshape(original_shape))

            return _backward

        return self._make(self.data.reshape(shape), (self,), "reshape", make_backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = tuple(np.argsort(axes))

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad.transpose(inverse))

            return _backward

        return self._make(self.data.transpose(axes), (self,), "transpose", make_backward)

    def flatten(self, start_dim: int = 1) -> "Tensor":
        new_shape = self.shape[:start_dim] + (-1,)
        return self.reshape(new_shape)

    def __getitem__(self, index) -> "Tensor":
        original_shape = self.shape

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    grad = np.zeros(original_shape, dtype=self.data.dtype)
                    np.add.at(grad, index, out.grad)
                    self._accumulate(grad)

            return _backward

        return self._make(self.data[index], (self,), "getitem", make_backward)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        result = self.data.max(axis=axis, keepdims=keepdims)

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if not self.requires_grad:
                    return
                expanded = result if keepdims or axis is None else np.expand_dims(result, axis=axis)
                grad = out.grad if keepdims or axis is None else np.expand_dims(out.grad, axis=axis)
                mask = (self.data == expanded).astype(self.data.dtype)
                # Distribute gradient evenly across ties.
                denom = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
                self._accumulate(grad * mask / denom)

            return _backward

        return self._make(result, (self,), "max", make_backward)

    # ------------------------------------------------------------------ #
    # Combination helpers used by the two-branch model
    # ------------------------------------------------------------------ #
    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._wrap(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                for tensor, start, end in zip(tensors, offsets[:-1], offsets[1:]):
                    if tensor.requires_grad:
                        slicer = [slice(None)] * out.grad.ndim
                        slicer[axis] = slice(start, end)
                        tensor._accumulate(out.grad[tuple(slicer)])

            return _backward

        return Tensor._make(data, tuple(tensors), "concat", make_backward)

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._wrap(t) for t in tensors]
        data = np.stack([t.data for t in tensors], axis=axis)

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                grads = np.split(out.grad, len(tensors), axis=axis)
                for tensor, grad in zip(tensors, grads):
                    if tensor.requires_grad:
                        tensor._accumulate(np.squeeze(grad, axis=axis))

            return _backward

        return Tensor._make(data, tuple(tensors), "stack", make_backward)

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the two trailing spatial dimensions of an NCHW tensor."""
        if padding == 0:
            return self
        pad_width = ((0, 0), (0, 0), (padding, padding), (padding, padding))
        padded = np.pad(self.data, pad_width, mode="constant")

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    grad = out.grad[:, :, padding:-padding, padding:-padding]
                    self._accumulate(grad)

            return _backward

        return self._make(padded, (self,), "pad2d", make_backward)

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Back-propagate gradients from this tensor through the graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        self.grad = _as_array(grad, dtype=self.data.dtype).reshape(self.shape)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        for node in reversed(topo):
            node._backward()

    # Convenience constructors -------------------------------------------------
    @staticmethod
    def zeros(shape: Tuple[int, ...], requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=np.float32), requires_grad=requires_grad)

    @staticmethod
    def ones(shape: Tuple[int, ...], requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape, dtype=np.float32), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape: int, rng: Optional[np.random.Generator] = None, requires_grad: bool = False) -> "Tensor":
        rng = rng or np.random.default_rng()
        return Tensor(rng.standard_normal(shape).astype(np.float32), requires_grad=requires_grad)
