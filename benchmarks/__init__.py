"""Benchmark harness for the repro autograd engine.

``benchmarks/_seed_tensor.py`` is a frozen copy of the seed tape engine
(allocating gradient accumulation, non-freeing backward pass); the harness
times identical workloads on it and on ``repro.autograd`` so every PR has a
performance trajectory to beat.  Run::

    PYTHONPATH=src python benchmarks/bench_autograd.py

which writes ``BENCH_autograd.json`` in the repository root.
"""
