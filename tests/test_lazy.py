"""Lazy backend tests: deferral, flush points, and bit-equality to numpy."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F
from repro.backend import LazyArray, get_backend, pause_deferral, set_deferral, use_backend
from repro.backend.lazy import deferral_enabled


@pytest.fixture
def lazy_be():
    with use_backend("lazy") as be:
        yield be


def _pair(shape=(4, 8), dtype=np.float32, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.standard_normal(shape).astype(dtype),
        rng.standard_normal(shape).astype(dtype),
    )


# --------------------------------------------------------------------------- #
# Deferral mechanics
# --------------------------------------------------------------------------- #
def test_elementwise_primitives_defer(lazy_be):
    a, b = _pair()
    r = lazy_be.relu(lazy_be.add(lazy_be.multiply(a, b), a))
    assert isinstance(r, LazyArray)
    assert r._value is None and r.nops == 3
    # Metadata reads do not force.
    assert r.shape == (4, 8) and r.dtype == np.float32 and r.ndim == 2
    assert r._value is None
    expect = np.maximum(a * b + a, 0.0)
    assert np.asarray(r).tobytes() == expect.tobytes()
    # Forced once; the concrete value is cached and srcs dropped.
    assert r._value is not None and r.srcs == ()


def test_shared_subexpression_flushes_as_one_dag(lazy_be):
    a, b = _pair()
    s = lazy_be.add(a, b)
    r = lazy_be.multiply(s, s)  # one pending node used twice
    assert isinstance(r, LazyArray)
    expect = np.multiply(np.add(a, b), np.add(a, b))
    assert np.asarray(r).tobytes() == expect.tobytes()


def test_matmul_and_reductions_force(lazy_be):
    a, b = _pair()
    m = lazy_be.matmul(lazy_be.add(a, b), b.T)
    assert isinstance(m, np.ndarray)
    assert m.tobytes() == np.matmul(a + b, b.T).tobytes()
    s = lazy_be.sum(lazy_be.multiply(a, b), axis=0)
    assert isinstance(s, np.ndarray)
    assert s.tobytes() == (a * b).sum(axis=0).tobytes()


def test_mixed_dtype_falls_through_eager(lazy_be):
    a = np.ones((3,), np.float32)
    b = np.ones((3,), np.float64)
    r = lazy_be.add(a, b)
    assert isinstance(r, np.ndarray)  # dtype promotion stays numpy's business
    assert r.dtype == np.float64
    i = lazy_be.multiply(np.arange(3), np.arange(3))
    assert isinstance(i, np.ndarray)  # ints never defer


def test_long_chains_are_capped(lazy_be):
    a, b = _pair()
    acc = a
    for _ in range(100):
        acc = lazy_be.add(acc, b)
    assert isinstance(acc, LazyArray)
    from repro.backend.lazy import _MAX_CHAIN

    assert acc.nops <= _MAX_CHAIN + 1
    expect = a.copy()
    for _ in range(100):
        expect = np.add(expect, b)
    assert np.asarray(acc).tobytes() == expect.tobytes()


def test_set_deferral_and_pause(lazy_be):
    a, b = _pair()
    assert deferral_enabled()
    prev = set_deferral(False)
    try:
        assert prev is True
        r = lazy_be.add(a, b)
        assert isinstance(r, np.ndarray)
    finally:
        set_deferral(prev)
    with pause_deferral():
        assert not deferral_enabled()
        assert isinstance(lazy_be.multiply(a, b), np.ndarray)
    assert deferral_enabled()
    assert isinstance(lazy_be.multiply(a, b), LazyArray)


def test_lazy_array_python_protocols(lazy_be):
    a, b = _pair()
    r = lazy_be.add(a, b)
    expect = a + b
    assert len(r) == 4
    assert float(r.sum()) == pytest.approx(float(expect.sum()))
    assert (r[0] == expect[0]).all()
    assert ((r > 0.0) == (expect > 0.0)).all()
    assert (r + 1.0).tobytes() == (expect + 1.0).tobytes()


# --------------------------------------------------------------------------- #
# Bit-equality through the full stack
# --------------------------------------------------------------------------- #
def _train_step():
    rng = np.random.default_rng(42)
    x = Tensor(rng.standard_normal((8, 16)).astype(np.float32), requires_grad=True)
    w = Tensor(rng.standard_normal((16, 4)).astype(np.float32), requires_grad=True)
    s = Tensor(rng.standard_normal((8, 4)).astype(np.float32), requires_grad=True)
    h = F.linear(x, w)
    loss = ((h * s + s).relu() * h).mean()
    loss.backward()
    return loss.numpy().copy(), x.grad.copy(), w.grad.copy(), s.grad.copy()


def test_training_step_bit_equal_to_numpy_backend():
    with use_backend("numpy"):
        ref = _train_step()
    with use_backend("lazy"):
        lazy = _train_step()
    for r, l in zip(ref, lazy):
        assert isinstance(l, np.ndarray)
        assert r.tobytes() == l.tobytes()


def test_backward_pauses_deferral_and_restores_it():
    with use_backend("lazy"):
        x = Tensor(np.array([1.0, -2.0, 3.0], np.float32), requires_grad=True)
        y = (x * 2.0).relu().sum()
        y.backward()
        # Gradients are concrete (the thunk loop ran eagerly)...
        assert isinstance(x.grad, np.ndarray)
        assert x.grad.tobytes() == np.array([2.0, 0.0, 2.0], np.float32).tobytes()
        # ...and deferral is back on afterwards.
        assert deferral_enabled()
        assert isinstance(get_backend().add(x.data, x.data), LazyArray)


def test_tensor_numpy_swaps_concrete_value_back():
    with use_backend("lazy"):
        x = Tensor(np.array([1.0, 2.0], np.float32))
        y = x * 3.0 + 1.0
        out = y.numpy()
        assert isinstance(out, np.ndarray)
        assert isinstance(y.data, np.ndarray)  # flushed in place
        assert out.tobytes() == np.array([4.0, 7.0], np.float32).tobytes()


def test_deferral_flag_is_thread_local(lazy_be):
    # backward() pauses deferral with save/restore; if the flag were a
    # process-wide global, two overlapping backward passes would restore
    # each other's value mid-run and _accumulate_fresh could adopt a
    # LazyArray as .grad.  Pausing on one thread must not leak to another.
    import threading

    paused = threading.Event()
    release = threading.Event()
    seen = {}

    def worker():
        previous = set_deferral(False)
        paused.set()
        release.wait(timeout=30)
        seen["worker_defers"] = deferral_enabled()
        set_deferral(previous)

    t = threading.Thread(target=worker)
    t.start()
    assert paused.wait(timeout=30)
    # This thread still defers while the worker has deferral off.
    assert deferral_enabled()
    assert isinstance(lazy_be.add(*_pair()), LazyArray)
    release.set()
    t.join(timeout=30)
    assert seen["worker_defers"] is False


def test_concurrent_backward_passes_keep_grads_concrete():
    import threading

    barrier = threading.Barrier(2, timeout=30)
    failures = []

    def run():
        try:
            x = Tensor(np.linspace(-1, 1, 64, dtype=np.float32), requires_grad=True)
            barrier.wait()
            for _ in range(50):
                ((x * 2.0 + x).relu().sum()).backward()
                assert type(x.grad) is np.ndarray
                x.grad = None
        except Exception as exc:  # pragma: no cover - failure path
            failures.append(exc)

    with use_backend("lazy"):
        threads = [threading.Thread(target=run) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
    assert not failures, failures


def test_compiled_session_under_lazy_matches_numpy():
    # Serving pauses deferral at capture and replay: the session must fuse
    # regions, reuse its output buffer, and score bit-identically to the
    # numpy backend.
    from repro import nn
    from repro.autograd import fusion
    from repro.serve import compile_inference

    rng = np.random.default_rng(11)
    x = rng.standard_normal((4, 8)).astype(np.float32)

    def build():
        r = np.random.default_rng(3)
        model = nn.Sequential(nn.Linear(8, 8, rng=r), nn.ReLU(), nn.Linear(8, 3, rng=r))
        model.eval()
        return model

    with fusion.using_fusion(True):
        with use_backend("numpy"):
            ref = compile_inference(build(), x).run(x).copy()
        with use_backend("lazy"):
            session = compile_inference(build(), x)
            first = session.run(x)
            assert type(first) is np.ndarray
            assert first.tobytes() == ref.tobytes()
            assert session.run(rng.standard_normal((4, 8)).astype(np.float32)) is first


# --------------------------------------------------------------------------- #
# Deferral through trailing-axes reductions
# --------------------------------------------------------------------------- #
def test_trailing_reductions_defer(lazy_be):
    a, b = _pair()
    s = lazy_be.sum(lazy_be.multiply(a, b), axis=-1)
    assert isinstance(s, LazyArray)
    assert s.shape == (4,) and s._value is None
    assert np.asarray(s).tobytes() == (a * b).sum(axis=-1).tobytes()

    m = lazy_be.mean(lazy_be.add(a, b), axis=1, keepdims=True)
    assert isinstance(m, LazyArray)
    assert m.shape == (4, 1)
    assert np.asarray(m).tobytes() == (a + b).mean(axis=1, keepdims=True).tobytes()

    # axis=None is the full trailing run: defers to a 0-d region output.
    t = lazy_be.sum(lazy_be.multiply(a, b), axis=None)
    assert isinstance(t, LazyArray)
    assert t.shape == ()
    assert np.asarray(t).tobytes() == (a * b).sum().tobytes()


def test_non_trailing_reductions_still_force(lazy_be):
    a, b = _pair()
    # Leading axis: not a trailing run, so the operand is forced and the
    # eager ndarray method runs (the pre-existing behavior).
    s = lazy_be.sum(lazy_be.multiply(a, b), axis=0)
    assert isinstance(s, np.ndarray)
    assert s.tobytes() == (a * b).sum(axis=0).tobytes()
    m = lazy_be.mean(a, axis=0)
    assert isinstance(m, np.ndarray)
    assert m.tobytes() == a.mean(axis=0).tobytes()


def test_deferred_reduction_chains_further(lazy_be):
    # relu(x*y).sum(-1) then consumed by an elementwise op: the reduction
    # joins the pending region and the whole DAG flushes as one program.
    a, b = _pair(shape=(6, 16), seed=4)
    r = lazy_be.sum(lazy_be.relu(lazy_be.multiply(a, b)), axis=-1)
    z = lazy_be.add(r, r)
    assert isinstance(z, LazyArray)
    expect = np.maximum(a * b, 0.0).sum(axis=-1)
    expect = expect + expect
    assert np.asarray(z).tobytes() == expect.tobytes()


def test_training_step_with_mean_tail_bit_equal_to_numpy():
    def step():
        rng = np.random.default_rng(31)
        x = Tensor(rng.standard_normal((8, 16)).astype(np.float32), requires_grad=True)
        s = Tensor(rng.standard_normal((8, 16)).astype(np.float32), requires_grad=True)
        loss = ((x * s).relu().mean(axis=-1)).sum()
        loss.backward()
        return loss.numpy().copy(), x.grad.copy(), s.grad.copy()

    with use_backend("numpy"):
        ref = step()
    with use_backend("lazy"):
        lazy = step()
    for r, l in zip(ref, lazy):
        assert r.tobytes() == l.tobytes()
