"""Dynamic-batching front end: bucket routing, the request queue, sharding."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, no_grad
from repro.backend import use_backend
from repro.models import TBNet, make_synthetic_batch
from repro.nn.init import manual_seed
from repro.serve import Server, SessionPool

BACKENDS = ("numpy", "fused")
AWKWARD_COUNTS = (1, 5, 63, 65, 129)


def _mlp(rng):
    model = nn.Sequential(
        nn.Linear(12, 16, rng=rng),
        nn.BatchNorm1d(16),
        nn.ReLU(),
        nn.Linear(16, 5, rng=rng),
    )
    for _ in range(3):  # warm the running statistics
        x = rng.standard_normal((32, 12)).astype(np.float32)
        model(x).sum().backward()
        model.zero_grad()
    model.eval()
    return model


def _eager(model, *arrays):
    with no_grad():
        return model(*arrays).data


# --------------------------------------------------------------------------- #
# SessionPool: decomposition and routing
# --------------------------------------------------------------------------- #
def test_greedy_decomposition():
    pool = SessionPool(_mlp(np.random.default_rng(0)),
                       np.zeros((1, 12), np.float32), buckets=(1, 4, 16, 64))
    assert pool.buckets == (64, 16, 4, 1)
    assert pool.decompose(129) == ([64, 64, 1], 0)
    assert pool.decompose(85) == ([64, 16, 4, 1], 0)
    assert pool.decompose(3) == ([1, 1, 1], 0)
    assert pool.decompose(0) == ([], 0)
    with pytest.raises(ValueError, match=">= 0"):
        pool.decompose(-1)


def test_decomposition_remainder_without_unit_bucket():
    pool = SessionPool(_mlp(np.random.default_rng(0)),
                       np.zeros((1, 12), np.float32), buckets=(4, 16))
    assert pool.decompose(21) == ([16, 4], 1)
    assert pool.decompose(3) == ([], 3)


def test_bucket_validation():
    model = _mlp(np.random.default_rng(0))
    with pytest.raises(ValueError, match="positive"):
        SessionPool(model, np.zeros((1, 12), np.float32), buckets=(0, 4))
    with pytest.raises(ValueError, match="at least one bucket"):
        SessionPool(model, np.zeros((1, 12), np.float32), buckets=())


@pytest.mark.parametrize("backend", BACKENDS)
def test_pool_is_bit_equal_to_eager_for_awkward_counts(backend):
    # The numerics contract: every routed chunk is bit-equal to the eager
    # no_grad forward of exactly those samples, for every awkward count.
    rng = np.random.default_rng(1)
    with use_backend(backend):
        model = _mlp(rng)
        pool = SessionPool(model, rng.standard_normal((2, 12)).astype(np.float32))
        for n in AWKWARD_COUNTS:
            data = rng.standard_normal((n, 12)).astype(np.float32)
            out = pool.serve(data)
            assert out.shape == (n, 5)
            chunks, remainder = pool.decompose(n)
            assert remainder == 0  # size-1 bucket: no eager last resort
            start = 0
            for chunk in chunks:
                np.testing.assert_array_equal(
                    out[start : start + chunk],
                    _eager(model, data[start : start + chunk]),
                )
                start += chunk
        assert pool.eager_calls == 0


def test_pool_routes_greedily_and_counts():
    rng = np.random.default_rng(2)
    pool = SessionPool(_mlp(rng), np.zeros((1, 12), np.float32))
    pool.serve(np.zeros((85, 12), np.float32))
    assert pool.bucket_calls == {64: 1, 16: 1, 4: 1, 1: 1}
    pool.serve(np.zeros((129, 12), np.float32))
    assert pool.bucket_calls == {64: 3, 16: 1, 4: 1, 1: 2}
    assert pool.eager_calls == 0


def test_pool_partial_only_stream_uses_eager_last_resort():
    # Smaller than every bucket: the eager fallback is the last resort.
    rng = np.random.default_rng(3)
    model = _mlp(rng)
    pool = SessionPool(model, np.zeros((1, 12), np.float32), buckets=(4, 16))
    data = rng.standard_normal((3, 12)).astype(np.float32)
    out = pool.serve(data)
    np.testing.assert_array_equal(out, _eager(model, data))
    assert pool.eager_calls == 1
    assert all(count == 0 for count in pool.bucket_calls.values())


def test_pool_zero_samples_is_pinned():
    pool = SessionPool(_mlp(np.random.default_rng(4)), np.zeros((1, 12), np.float32))
    out = pool.serve(np.zeros((0, 12), np.float32))
    assert out.shape == (0, 5)
    assert out.dtype == np.float32
    assert pool.eager_calls == 0 and all(v == 0 for v in pool.bucket_calls.values())


def test_pool_validates_shapes_and_dtypes():
    pool = SessionPool(_mlp(np.random.default_rng(5)), np.zeros((1, 12), np.float32))
    with pytest.raises(ValueError, match="per-sample shape"):
        pool.serve(np.zeros((4, 11), np.float32))
    with pytest.raises(ValueError, match="dtype"):
        pool.serve(np.zeros((4, 12), np.float64))
    with pytest.raises(ValueError, match="out has shape"):
        pool.serve(np.zeros((4, 12), np.float32), out=np.zeros((3, 5), np.float32))
    with pytest.raises(ValueError, match="out has dtype"):
        pool.serve(np.zeros((4, 12), np.float32), out=np.zeros((4, 5), np.float64))


def test_pool_rejects_reduced_outputs():
    class MeanHead(nn.Module):
        def forward(self, x):
            return Tensor._wrap(x).sum(axis=0)

    model = MeanHead()
    model.eval()
    with pytest.raises(ValueError, match="per-sample"):
        SessionPool(model, np.zeros((2, 3), np.float32), buckets=(2, 4))


def test_pool_parameters_stay_bound_by_reference():
    rng = np.random.default_rng(6)
    model = nn.Sequential(nn.Linear(6, 3, rng=rng))
    model.eval()
    pool = SessionPool(model, np.zeros((1, 6), np.float32), buckets=(1, 4))
    data = rng.standard_normal((5, 6)).astype(np.float32)
    before = pool.serve(data).copy()
    model[0].weight.data += 1.0  # in-place fine-tune, no recompile
    after = pool.serve(data)
    assert not np.array_equal(before, after)
    chunks, _ = pool.decompose(5)
    start = 0
    for chunk in chunks:
        np.testing.assert_array_equal(
            after[start : start + chunk], _eager(model, data[start : start + chunk])
        )
        start += chunk


@pytest.mark.parametrize("backend", BACKENDS)
def test_tbnet_pool_round_trip(backend):
    with use_backend(backend):
        manual_seed(31)
        model = TBNet(width=8)
        model.eval()
        pool = SessionPool(
            model,
            (Tensor.zeros(1, 3, 16, 16), Tensor.zeros(1, 16)),
            buckets=(1, 4, 16),
        )
        images, context, _ = make_synthetic_batch(21, rng=np.random.default_rng(8))
        out = pool.serve((images, context))
        start = 0
        for chunk in pool.decompose(21)[0]:
            np.testing.assert_array_equal(
                out[start : start + chunk],
                model.infer(
                    images.data[start : start + chunk],
                    context.data[start : start + chunk],
                ),
            )
            start += chunk


# --------------------------------------------------------------------------- #
# Server: the request queue
# --------------------------------------------------------------------------- #
def test_server_serves_requests_bit_equal_per_dispatch():
    # A full-bucket request with an otherwise empty queue is dispatched
    # alone, so its result is bit-equal to the eager forward of the request.
    rng = np.random.default_rng(10)
    model = _mlp(rng)
    with Server(model, np.zeros((1, 12), np.float32), buckets=(1, 4, 16)) as server:
        data = rng.standard_normal((16, 12)).astype(np.float32)
        np.testing.assert_array_equal(server(data), _eager(model, data))


def test_server_coalesces_and_scatters_correct_rows():
    rng = np.random.default_rng(11)
    model = _mlp(rng)
    requests = [rng.standard_normal((n, 12)).astype(np.float32) for n in (1, 3, 1, 2, 5, 1, 1, 2)]
    with Server(
        model, np.zeros((1, 12), np.float32), buckets=(1, 4, 16),
        workers=2, max_wait=0.02,
    ) as server:
        futures = [server.submit(r) for r in requests]
        for request, future in zip(requests, futures):
            got = future.result(timeout=10)
            assert got.shape == (request.shape[0], 5)
            # Coalescing/bucket boundaries may reassociate BLAS reductions,
            # so cross-request rows agree with eager only to tolerance (a
            # scatter bug would swap whole rows, far outside it).
            np.testing.assert_allclose(
                got, _eager(model, request), rtol=1e-4, atol=1e-5
            )
        stats = server.stats()
    assert stats["requests_completed"] == len(requests)
    assert stats["samples_completed"] == sum(r.shape[0] for r in requests)
    assert stats["queue_depth"] == 0


def test_server_results_are_owned_copies():
    rng = np.random.default_rng(12)
    model = _mlp(rng)
    with Server(model, np.zeros((1, 12), np.float32), buckets=(1, 4), max_wait=0.02) as server:
        futures = [
            server.submit(rng.standard_normal((1, 12)).astype(np.float32))
            for _ in range(8)
        ]
        results = [f.result(timeout=10) for f in futures]
    for a in results:
        assert a.flags.writeable
    # Writing into one result must not disturb any other.
    snapshot = [a.copy() for a in results]
    results[0][:] = -1.0
    for a, b in zip(results[1:], snapshot[1:]):
        np.testing.assert_array_equal(a, b)


def test_server_metrics_shape():
    rng = np.random.default_rng(13)
    model = _mlp(rng)
    with Server(
        model, np.zeros((1, 12), np.float32), buckets=(1, 4, 16), max_wait=0.05
    ) as server:
        futures = [
            server.submit(rng.standard_normal((1, 12)).astype(np.float32))
            for _ in range(32)
        ]
        for future in futures:
            future.result(timeout=10)
        stats = server.stats()
    # Batching happened: far fewer dispatches than requests, real occupancy.
    assert stats["batches_dispatched"] < 32
    assert 0.0 < stats["batch_occupancy"] <= 1.0
    assert stats["latency_ms_p95"] >= stats["latency_ms_p50"] > 0.0
    assert stats["throughput_rps"] > 0.0
    # Each dispatch decomposes into >= 1 bucket runs.
    assert sum(stats["bucket_calls"].values()) >= stats["batches_dispatched"]


def test_server_submit_validates_synchronously():
    model = _mlp(np.random.default_rng(14))
    with Server(model, np.zeros((1, 12), np.float32), buckets=(1, 4)) as server:
        with pytest.raises(ValueError, match="per-sample shape"):
            server.submit(np.zeros((2, 11), np.float32))
        with pytest.raises(ValueError, match="dtype"):
            server.submit(np.zeros((2, 12), np.float64))
        # Zero-sample requests resolve immediately.
        empty = server.submit(np.zeros((0, 12), np.float32)).result(timeout=1)
        assert empty.shape == (0, 5)


def test_server_lifecycle():
    model = _mlp(np.random.default_rng(15))
    server = Server(model, np.zeros((1, 12), np.float32), buckets=(1, 4))
    with pytest.raises(RuntimeError, match="not running"):
        server.submit(np.zeros((1, 12), np.float32))
    server.start()
    future = server.submit(np.zeros((1, 12), np.float32))
    server.stop()  # drains: the pending future completes
    assert future.result(timeout=1).shape == (1, 5)
    with pytest.raises(RuntimeError, match="not running"):
        server.submit(np.zeros((1, 12), np.float32))
    with pytest.raises(RuntimeError, match="restarted"):
        server.start()


def test_server_survives_cancelled_futures():
    # A queued future a client cancels must be dropped at dispatch, not
    # resolved (set_result on a cancelled future raises InvalidStateError
    # and would kill the worker thread, hanging every later request).
    rng = np.random.default_rng(19)
    model = _mlp(rng)
    with Server(
        model, np.zeros((1, 12), np.float32), buckets=(1, 4), max_wait=0.2
    ) as server:
        first = server.submit(rng.standard_normal((1, 12)).astype(np.float32))
        second = server.submit(rng.standard_normal((1, 12)).astype(np.float32))
        second.cancel()  # may race the worker; either outcome must be safe
        first.result(timeout=10)
        # The worker is still alive and serving.
        data = rng.standard_normal((2, 12)).astype(np.float32)
        got = server.submit(data).result(timeout=10)
        np.testing.assert_allclose(got, _eager(model, data), rtol=1e-4, atol=1e-5)
        stats = server.stats()
    assert stats["queue_depth"] == 0


def test_server_occupancy_stays_a_fraction_for_oversized_requests():
    # Requests larger than max_batch_size dispatch alone; occupancy counts
    # them as one full dispatch instead of exceeding 1.0.
    rng = np.random.default_rng(20)
    model = _mlp(rng)
    with Server(
        model, np.zeros((1, 12), np.float32), buckets=(1, 4), max_batch_size=4
    ) as server:
        out = server(rng.standard_normal((10, 12)).astype(np.float32))
        assert out.shape == (10, 5)
        stats = server.stats()
    assert stats["batches_dispatched"] == 1
    assert stats["batch_occupancy"] == 1.0


def test_server_rejects_bad_config():
    model = _mlp(np.random.default_rng(16))
    with pytest.raises(ValueError, match="workers"):
        Server(model, np.zeros((1, 12), np.float32), workers=0)
    with pytest.raises(ValueError, match="max_wait"):
        Server(model, np.zeros((1, 12), np.float32), max_wait=-1.0)
    with pytest.raises(ValueError, match="max_batch_size"):
        Server(model, np.zeros((1, 12), np.float32), max_batch_size=0)


def test_tbnet_serve_convenience():
    manual_seed(17)
    model = TBNet(width=8)
    with model.serve(buckets=(1, 4), workers=1) as server:
        assert not model.training  # serve() switches to eval
        images, context, _ = make_synthetic_batch(4, rng=np.random.default_rng(18))
        got = server(images.data, context.data)
        np.testing.assert_array_equal(got, model.infer(images.data, context.data))
