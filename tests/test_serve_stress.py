"""Threaded stress: concurrent submit()/stop() and cancel-while-collecting.

Races here are probabilistic by nature; the invariant under test is strict
all the same — every submitted future must reach a terminal state (result,
declared server-side error, or cancellation) and the server must never
deadlock or strand a client.  The per-test watchdog in ``conftest.py``
turns any regression into a fast failure instead of a hung run.
"""

import threading
import time
from concurrent.futures import CancelledError

import numpy as np
import pytest

from repro import nn
from repro.autograd import no_grad
from repro.backend import use_backend
from repro.serve import DeadlineExceeded, Server

BACKENDS = ("numpy", "fused")


def _model(rng):
    model = nn.Sequential(
        nn.Linear(6, 8, rng=rng), nn.ReLU(), nn.Linear(8, 3, rng=rng)
    )
    model.eval()
    return model


def _eager(model, arr):
    with no_grad():
        return model(arr).data


@pytest.mark.parametrize("backend", BACKENDS)
def test_concurrent_submit_and_stop_leaves_no_future_stranded(backend):
    with use_backend(backend):
        rng = np.random.default_rng(20)
        model = _model(rng)
        server = Server(
            model, np.zeros((1, 6), np.float32), buckets=(1, 2, 4),
            workers=2, max_wait=0.001,
        )
        server.start()
        futures = []
        futures_lock = threading.Lock()
        submit_errors = []

        def submitter(seed):
            local = np.random.default_rng(seed)
            for _ in range(40):
                data = local.standard_normal((int(local.integers(1, 4)), 6))
                try:
                    future = server.submit(data.astype(np.float32))
                except RuntimeError:
                    submit_errors.append("stopped")  # server already stopping
                    return
                with futures_lock:
                    futures.append(future)

        threads = [threading.Thread(target=submitter, args=(30 + i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(0.01)
        server.stop(drain=True, timeout=10.0)  # races the submitters
        for thread in threads:
            thread.join(timeout=10)
            assert not thread.is_alive()
        # Every accepted future reaches a terminal state quickly.
        outcomes = {"ok": 0, "error": 0, "cancelled": 0}
        for future in futures:
            try:
                out = future.result(timeout=10)
                assert out.shape[1] == 3
                outcomes["ok"] += 1
            except CancelledError:
                outcomes["cancelled"] += 1
            except (RuntimeError, DeadlineExceeded):
                outcomes["error"] += 1
        assert outcomes["ok"] >= 1  # the drain served what it accepted
        stats = server.stats()
        assert stats["queue_depth"] == 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_cancel_while_collecting_race(backend):
    # Clients cancel futures at random moments — before collection, during
    # coalescing, after dispatch.  Whatever the interleaving: cancelled
    # futures never resolve with data, uncancelled futures always resolve
    # correctly, and the workers survive every outcome.
    with use_backend(backend):
        rng = np.random.default_rng(21)
        model = _model(rng)
        with Server(
            model, np.zeros((1, 6), np.float32), buckets=(1, 2, 4),
            workers=2, max_wait=0.005,
        ) as server:
            for wave in range(6):
                requests = [
                    rng.standard_normal((1, 6)).astype(np.float32)
                    for _ in range(24)
                ]
                futures = [server.submit(r) for r in requests]
                cancel_rng = np.random.default_rng(100 + wave)
                targets = cancel_rng.choice(len(futures), size=8, replace=False)

                def canceller():
                    for i in targets:
                        futures[i].cancel()

                thread = threading.Thread(target=canceller)
                thread.start()
                thread.join(timeout=10)
                for i, (request, future) in enumerate(zip(requests, futures)):
                    if future.cancelled():
                        with pytest.raises(CancelledError):
                            future.result(timeout=10)
                        continue
                    np.testing.assert_allclose(
                        future.result(timeout=10), _eager(model, request),
                        rtol=1e-4, atol=1e-5,
                    )
            # The server survived six waves of cancel races intact.
            assert server.ready()
            health = server.health()
            assert health["workers_alive"] == 2
            assert health["worker_crashes"] == 0
        stats = server.stats()
        assert stats["queue_depth"] == 0
        assert stats["requests_failed"] == 0


def test_many_threads_hammering_one_server():
    # Pure throughput smoke under client concurrency: every request from
    # every thread resolves to its own eager-equivalent rows.
    rng = np.random.default_rng(22)
    model = _model(rng)
    failures = []
    with Server(
        model, np.zeros((1, 6), np.float32), buckets=(1, 2, 4),
        workers=2, max_wait=0.001, queue_limit=256, overload="block",
    ) as server:

        def client(seed):
            local = np.random.default_rng(seed)
            for _ in range(25):
                data = local.standard_normal((int(local.integers(1, 5)), 6))
                data = data.astype(np.float32)
                try:
                    out = server.submit(data, timeout=30.0).result(timeout=30)
                except BaseException as exc:  # noqa: BLE001 - collected for assert
                    failures.append(exc)
                    return
                if out.shape != (data.shape[0], 3):
                    failures.append(AssertionError(out.shape))
                    return

        threads = [threading.Thread(target=client, args=(40 + i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive()
        assert not failures
        stats = server.stats()
        assert stats["requests_completed"] == 6 * 25
        assert stats["requests_failed"] == 0
        assert stats["worker_restarts"] == 0
