"""Codegen tests: region IR, the kernel cache, and the two-arm bit contract."""

import numpy as np
import pytest

from repro.codegen import (
    RegionIR,
    RegionInput,
    clear_kernel_memo,
    codegen_stats,
    compile_region,
    have_compiler,
    kernel_cache_dir,
    using_codegen,
)

needs_cc = pytest.mark.skipif(not have_compiler(), reason="no C compiler available")


def _chain_region(shape=(4, 8), dtype=np.float32):
    """relu((a * b) + c) over ``shape`` arrays."""
    inputs = [RegionInput(dtype, shape) for _ in range(3)]
    ops = [("mul", (0, 1)), ("add", (3, 2)), ("relu", (4,))]
    return RegionIR(inputs, ops, shape, dtype)


def _arrays(region, seed=0):
    rng = np.random.default_rng(seed)
    return [
        rng.standard_normal(inp.shape).astype(inp.dtype)
        for inp in region.inputs
        if inp.const is None
    ]


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """Point the on-disk kernel cache at a fresh directory; clear the memo."""
    monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path))
    clear_kernel_memo()
    yield tmp_path
    clear_kernel_memo()


# --------------------------------------------------------------------------- #
# Region IR structure
# --------------------------------------------------------------------------- #
def test_region_validates_program():
    with pytest.raises(ValueError, match="at least one op"):
        RegionIR([RegionInput(np.float32, (2,))], [], (2,), np.float32)
    with pytest.raises(ValueError, match="undefined slot"):
        RegionIR(
            [RegionInput(np.float32, (2,))], [("neg", (5,))], (2,), np.float32
        )
    with pytest.raises(ValueError, match="float32/float64 only"):
        RegionIR(
            [RegionInput(np.int32, (2,))], [("neg", (0,))], (2,), np.int32
        )
    with pytest.raises(ValueError, match="share the output dtype"):
        RegionIR(
            [RegionInput(np.float64, (2,))], [("neg", (0,))], (2,), np.float32
        )


def test_signature_abstracts_concrete_sizes():
    # Same structure at different batch sizes -> one cache key.
    r8 = _chain_region(shape=(8, 16))
    r64 = _chain_region(shape=(64, 16))
    assert r8.signature() == r64.signature()
    # dtype changes the key.
    assert r8.signature() != _chain_region(shape=(8, 16), dtype=np.float64).signature()
    # Rank changes the key (same element count).
    r3d = _chain_region(shape=(8, 4, 4))
    assert r8.signature() != r3d.signature()
    # Broadcast pattern changes the key.
    inputs = [
        RegionInput(np.float32, (8, 16)),
        RegionInput(np.float32, (16,)),  # row-broadcast operand
        RegionInput(np.float32, (8, 16)),
    ]
    rb = RegionIR(
        inputs, [("mul", (0, 1)), ("add", (3, 2)), ("relu", (4,))], (8, 16), np.float32
    )
    assert rb.signature() != r8.signature()


def test_interpret_matches_eager_ufunc_sequence():
    region = _chain_region()
    a, b, c = _arrays(region)
    expect = np.maximum(np.add(np.multiply(a, b), c), 0.0)
    got = region.interpret([a, b, c])
    assert got.tobytes() == expect.tobytes()
    # out= writes into the caller's buffer with identical values.
    buf = np.empty(region.out_shape, region.out_dtype)
    got2 = region.interpret([a, b, c], out=buf)
    assert got2 is buf
    assert buf.tobytes() == expect.tobytes()


def test_bind_rejects_shape_and_dtype_mismatch():
    region = _chain_region()
    a, b, c = _arrays(region)
    with pytest.raises(ValueError, match="has shape"):
        region.bind([a[:2], b, c])
    with pytest.raises(ValueError, match="has dtype"):
        region.bind([a.astype(np.float64), b, c])
    with pytest.raises(ValueError, match="takes 3 arrays"):
        region.bind([a, b])


def test_respecialize_reuses_program_at_new_batch_size():
    region = _chain_region(shape=(4, 8))
    bigger = region.respecialize([(32, 8), (32, 8), (32, 8)])
    assert bigger.out_shape == (32, 8)
    assert bigger.ops == region.ops
    assert bigger.signature() == region.signature()
    arrays = _arrays(bigger, seed=3)
    expect = np.maximum(arrays[0] * arrays[1] + arrays[2], 0.0)
    assert bigger.interpret(arrays).tobytes() == expect.tobytes()


# --------------------------------------------------------------------------- #
# The two execution arms
# --------------------------------------------------------------------------- #
def test_disabled_codegen_forces_interpreter_arm(cache_dir):
    region = _chain_region()
    arrays = _arrays(region)
    with using_codegen(False):
        kern = compile_region(region)
    assert kern.is_compiled is False
    expect = np.maximum(arrays[0] * arrays[1] + arrays[2], 0.0)
    assert kern(arrays).tobytes() == expect.tobytes()
    assert not list(cache_dir.glob("*.so"))  # nothing compiled


@needs_cc
def test_compiled_arm_bit_equal_to_interpreter(cache_dir):
    region = _chain_region(shape=(16, 32))
    rng = np.random.default_rng(7)
    arrays = [rng.standard_normal((16, 32)).astype(np.float32) for _ in range(3)]
    # Exercise the special values the relu rule must preserve.
    arrays[0][0, :4] = [np.nan, np.inf, -np.inf, -0.0]
    with using_codegen(True):
        compiled = compile_region(region)
    assert compiled.is_compiled is True
    with using_codegen(False):
        interp = compile_region(region)
    assert compiled(arrays).tobytes() == interp(arrays).tobytes()
    # out= path too.
    buf = np.empty(region.out_shape, region.out_dtype)
    got = compiled(arrays, out=buf)
    assert got is buf and buf.tobytes() == interp(arrays).tobytes()


@needs_cc
def test_float64_region_compiles_and_matches(cache_dir):
    region = _chain_region(shape=(5, 7), dtype=np.float64)
    arrays = _arrays(region, seed=11)
    with using_codegen(True):
        kern = compile_region(region)
    assert kern.is_compiled
    expect = region.interpret(arrays)
    assert kern(arrays).tobytes() == expect.tobytes()


# --------------------------------------------------------------------------- #
# Kernel cache behavior
# --------------------------------------------------------------------------- #
@needs_cc
def test_identical_region_hits_cache(cache_dir):
    region = _chain_region()
    before = codegen_stats()
    with using_codegen(True):
        k1 = compile_region(region)
        # Same structure, different batch size: same signature -> memo hit.
        k2 = compile_region(_chain_region(shape=(64, 8)))
    after = codegen_stats()
    assert k1.is_compiled and k2.is_compiled
    assert after["compiled"] == before["compiled"] + 1
    assert after["memo_hits"] == before["memo_hits"] + 1
    assert len(list(cache_dir.glob("*.so"))) == 1

    # Fresh process simulated by clearing the memo: the .so is reloaded
    # from disk, not recompiled.
    clear_kernel_memo()
    with using_codegen(True):
        k3 = compile_region(region)
    final = codegen_stats()
    assert k3.is_compiled
    assert final["compiled"] == after["compiled"]
    assert final["disk_hits"] == after["disk_hits"] + 1


@needs_cc
def test_dtype_and_rank_changes_miss_cache(cache_dir):
    before = codegen_stats()
    with using_codegen(True):
        compile_region(_chain_region(shape=(4, 8), dtype=np.float32))
        compile_region(_chain_region(shape=(4, 8), dtype=np.float64))
        compile_region(_chain_region(shape=(2, 2, 8), dtype=np.float32))
    after = codegen_stats()
    assert after["compiled"] == before["compiled"] + 3
    assert len(list(cache_dir.glob("*.so"))) == 3


@needs_cc
def test_corrupted_cache_entry_recompiles(cache_dir, tmp_path_factory, monkeypatch):
    # Compile in a scratch cache only to learn the entry's content-addressed
    # filename, then plant a garbage .so under that name in a *fresh* cache
    # dir.  (Corrupting the scratch copy in place would be unsound: it is
    # still mmapped by this process, and overwriting a mapped .so faults.)
    region = _chain_region()
    arrays = _arrays(region)
    scratch = tmp_path_factory.mktemp("kernels-scratch")
    monkeypatch.setenv("REPRO_KERNEL_CACHE", str(scratch))
    with using_codegen(True):
        assert compile_region(region).is_compiled
    (so_path,) = scratch.glob("*.so")

    monkeypatch.setenv("REPRO_KERNEL_CACHE", str(cache_dir))
    (cache_dir / so_path.name).write_bytes(b"not a shared object")
    clear_kernel_memo()
    before = codegen_stats()
    with using_codegen(True):
        kern = compile_region(region)
    after = codegen_stats()
    assert kern.is_compiled
    assert after["compiled"] == before["compiled"] + 1  # recompiled, no crash
    expect = np.maximum(arrays[0] * arrays[1] + arrays[2], 0.0)
    assert kern(arrays).tobytes() == expect.tobytes()


@needs_cc
def test_const_inputs_are_bound_not_passed(cache_dir):
    shift = np.full((8,), -0.25, np.float32)
    inputs = [
        RegionInput(np.float32, (4, 8)),
        RegionInput(np.float32, (8,), const=shift),
    ]
    region = RegionIR(inputs, [("add", (0, 1)), ("relu", (2,))], (4, 8), np.float32)
    assert region.num_dynamic == 1
    x = np.random.default_rng(5).standard_normal((4, 8)).astype(np.float32)
    expect = np.maximum(x + shift, 0.0)
    with using_codegen(True):
        kern = compile_region(region)
    assert kern([x]).tobytes() == expect.tobytes()
    with using_codegen(False):
        interp = compile_region(region)
    assert interp([x]).tobytes() == expect.tobytes()


def test_codegen_counters_exported_to_registry(cache_dir):
    from repro.obs.metrics import get_registry

    region = _chain_region()
    with using_codegen(False):
        compile_region(region)
    text = get_registry().render()
    assert "repro_codegen_fallback_total" in text


# --------------------------------------------------------------------------- #
# Structured regions: reduction tails, linear heads, shape specialization
# --------------------------------------------------------------------------- #
def _reduce_region(op="sum", shape=(6, 10), k=1, keepdims=False, dtype=np.float32):
    """``op((a * b), over the last k axes)`` — map stage + reduce tail."""
    inputs = [RegionInput(dtype, shape) for _ in range(2)]
    kept = shape[: len(shape) - k]
    out_shape = kept + (1,) * k if keepdims else kept
    ops = [("mul", (0, 1)), (op, (2,), (k, keepdims))]
    return RegionIR(inputs, ops, out_shape, dtype)


def _linear_region(b=True, tail=None, dtype=np.float32, n=4, d=6, m=8):
    """``relu(x @ w [+ b])`` with an optional reduction tail."""
    inputs = [RegionInput(dtype, (n, d)), RegionInput(dtype, (d, m))]
    srcs = (0, 1)
    if b:
        inputs.append(RegionInput(dtype, (m,)))
        srcs = (0, 1, 2)
    first = len(inputs)
    ops = [("linear", srcs), ("relu", (first,))]
    out_shape = (n, m)
    if tail is not None:
        ops.append((tail, (first + 1,), (1, False)))
        out_shape = (n,)
    return RegionIR(inputs, ops, out_shape, dtype)


def test_reduction_meta_is_part_of_the_program():
    with pytest.raises(ValueError, match="meta"):
        RegionIR(
            [RegionInput(np.float32, (4, 8))], [("sum", (0,))], (4,), np.float32
        )
    r1 = _reduce_region(k=1)
    r2 = _reduce_region(shape=(6, 10, 3), k=2)
    assert r1.signature() != r2.signature()
    assert not r1.is_elementwise
    assert _chain_region().is_elementwise


def test_reduction_interpret_matches_eager_and_pins_dtype():
    # The interpreter arm must accumulate in the *region* dtype: a float32
    # region sums in float32 (numpy's own default for float32 inputs), so
    # cancellation behaves exactly like the eager backend — not like a
    # higher-precision accumulator.  [1e8, 1, -1e8, 1] loses one of the 1s
    # in float32; a float64 accumulator would keep both.
    vals = np.array([[1e8, 1.0, -1e8, 1.0]], np.float32)
    ones = np.ones_like(vals)
    region = _reduce_region(shape=(1, 4), k=1)
    got = region.interpret([vals, ones])
    assert got.dtype == np.float32
    expect = vals.sum(axis=-1)
    assert got.tobytes() == expect.tobytes()
    assert got[0] != np.float32(vals.astype(np.float64).sum())
    # mean divides the same accumulator.
    mregion = _reduce_region(op="mean", shape=(1, 4), k=1)
    assert mregion.interpret([vals, ones]).tobytes() == vals.mean(axis=-1).tobytes()


@needs_cc
@pytest.mark.parametrize("dtype", [np.float32, np.float64])
@pytest.mark.parametrize("op", ["sum", "mean"])
@pytest.mark.parametrize("specialize", [False, True])
def test_reduction_tail_kernel_bit_equal_to_interpreter(cache_dir, dtype, op, specialize):
    # Cover all three pairwise-summation regimes of the C arm: sequential
    # (R < 8), the 8-lane block (8 <= R <= 128), and recursive halving
    # (R > 128) — plus a multi-axis tail and keepdims.
    cases = [
        ((3, 5), 1, False),
        ((4, 64), 1, False),
        ((2, 1000), 1, True),
        ((3, 4, 6), 2, False),
    ]
    for shape, k, keepdims in cases:
        region = _reduce_region(op=op, shape=shape, k=k, keepdims=keepdims, dtype=dtype)
        arrays = _arrays(region, seed=hash((shape, k)) % 1000)
        with using_codegen(True):
            kern = compile_region(region, specialize=specialize)
        assert kern.is_compiled, (shape, k)
        expect = region.interpret(arrays)
        got = kern(arrays)
        assert got.shape == expect.shape
        assert got.tobytes() == expect.tobytes(), (shape, k, keepdims)
        # out= lands the same bytes in the caller's buffer.
        buf = np.empty(region.out_shape, region.out_dtype)
        assert kern(arrays, out=buf) is buf
        assert buf.tobytes() == expect.tobytes()


@needs_cc
@pytest.mark.parametrize("specialize", [False, True])
@pytest.mark.parametrize("bias", [True, False])
def test_linear_epilogue_kernel_matches_interpreter(cache_dir, specialize, bias):
    region = _linear_region(b=bias)
    arrays = _arrays(region, seed=9)
    with using_codegen(True):
        kern = compile_region(region, specialize=specialize)
    assert kern.is_compiled
    expect = region.interpret(arrays)
    x, w = arrays[0], arrays[1]
    eager = np.matmul(x, w)
    if bias:
        eager = np.add(eager, arrays[2])
    eager = np.maximum(eager, 0.0)
    assert expect.tobytes() == eager.tobytes()
    assert kern(arrays).tobytes() == expect.tobytes()


@needs_cc
@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_linear_reduction_pipeline_kernel(cache_dir, dtype):
    # GEMM head -> relu epilogue -> sum tail: three stages through one
    # compiled pipeline, bit-equal to the interpreter and to eager numpy.
    region = _linear_region(tail="sum", dtype=dtype)
    arrays = _arrays(region, seed=21)
    with using_codegen(True):
        kern = compile_region(region)
    assert kern.is_compiled
    expect = region.interpret(arrays)
    eager = np.maximum(np.add(np.matmul(arrays[0], arrays[1]), arrays[2]), 0.0)
    eager = eager.sum(axis=-1, dtype=dtype)
    assert expect.tobytes() == eager.tobytes()
    assert kern(arrays).tobytes() == expect.tobytes()


def test_scalar_full_reduction_compiles_or_interprets(cache_dir):
    # Reduce over *every* axis: 0-d output exercises the (0,) dims path.
    region = _reduce_region(shape=(5, 7), k=2)
    arrays = _arrays(region, seed=2)
    expect = np.multiply(*arrays).sum(dtype=np.float32)
    with using_codegen(True):
        kern = compile_region(region)
    got = kern(arrays)
    assert got.shape == ()
    assert got.tobytes() == expect.tobytes()
    with using_codegen(False):
        interp = compile_region(region)
    assert interp(arrays).tobytes() == expect.tobytes()


def test_unplannable_structured_region_falls_back_whole(cache_dir):
    # A post-reduce op that re-reads a pre-reduce interior cannot be staged;
    # the whole region must resolve to the interpreter arm (still correct),
    # never a half-compiled pipeline.
    inputs = [RegionInput(np.float32, (4, 8))]
    ops = [("relu", (0,)), ("sum", (1,), (1, True)), ("mul", (1, 2))]
    region = RegionIR(inputs, ops, (4, 8), np.float32)
    (x,) = _arrays(region, seed=13)
    relu = np.maximum(x, 0.0)
    expect = relu * relu.sum(axis=-1, keepdims=True, dtype=np.float32)
    with using_codegen(True):
        kern = compile_region(region)
    assert kern.is_compiled is False
    assert kern([x]).tobytes() == expect.tobytes()


# --------------------------------------------------------------------------- #
# Shape-specialized kernels and the shape-keyed cache
# --------------------------------------------------------------------------- #
@needs_cc
def test_specialized_kernels_are_shape_keyed(cache_dir):
    region8 = _chain_region(shape=(8, 16))
    region64 = _chain_region(shape=(64, 16))
    before = codegen_stats()
    with using_codegen(True):
        k8 = compile_region(region8, specialize=True)
        k64 = compile_region(region64, specialize=True)
    after = codegen_stats()
    assert k8.is_compiled and k64.is_compiled
    # One structure, two shapes -> two cache entries (the dynamic kernel
    # would be a single shared one, see test_identical_region_hits_cache).
    assert after["compiled"] == before["compiled"] + 2
    assert len(list(cache_dir.glob("*.so"))) == 2
    for region, kern in ((region8, k8), (region64, k64)):
        arrays = _arrays(region, seed=1)
        assert kern(arrays).tobytes() == region.interpret(arrays).tobytes()

    # Shape-keyed entries round-trip through the disk cache: a fresh memo
    # reloads both .so files instead of recompiling.
    clear_kernel_memo()
    with using_codegen(True):
        k8b = compile_region(region8, specialize=True)
        k64b = compile_region(region64, specialize=True)
    final = codegen_stats()
    assert k8b.is_compiled and k64b.is_compiled
    assert final["compiled"] == after["compiled"]
    assert final["disk_hits"] == after["disk_hits"] + 2


@needs_cc
def test_specialized_and_dynamic_kernels_coexist(cache_dir):
    region = _reduce_region(shape=(4, 32), k=1)
    arrays = _arrays(region, seed=8)
    with using_codegen(True):
        dyn = compile_region(region)
        spec = compile_region(region, specialize=True)
    assert dyn.is_compiled and spec.is_compiled
    assert dyn(arrays).tobytes() == spec(arrays).tobytes()
    # Distinct cache entries: specializing never shadows the dynamic kernel.
    assert len(list(cache_dir.glob("*.so"))) == 2


# --------------------------------------------------------------------------- #
# Cross-process cache concurrency + the mode-labelled counters
# --------------------------------------------------------------------------- #
def _concurrent_compile_worker(barrier, queue):
    # Runs in a forked child: compile the same reduction region as every
    # sibling, all released through one barrier to maximize lock contention.
    import numpy as _np

    from repro.codegen import clear_kernel_memo as _clear
    from repro.codegen import compile_region as _cr, codegen_stats as _stats
    from repro.codegen import RegionIR as _R, RegionInput as _RI
    from repro.codegen.jit import using_codegen as _using

    shape = (3, 37)
    region = _R(
        [_RI(_np.float32, shape), _RI(_np.float32, shape)],
        [("mul", (0, 1)), ("sum", (2,), (1, False))],
        (3,),
        _np.float32,
    )
    rng = _np.random.default_rng(0)
    arrays = [rng.standard_normal(shape).astype(_np.float32) for _ in range(2)]
    # Forked children inherit the parent's kernel memo; drop it so each
    # child resolves against the shared *disk* cache like a fresh worker.
    _clear()
    before = _stats()["compiled"]
    barrier.wait(timeout=60)
    with _using(True):
        kern = _cr(region)
    queue.put(
        (
            bool(kern.is_compiled),
            kern(arrays).tobytes(),
            region.interpret(arrays).tobytes(),
            _stats()["compiled"] - before,
        )
    )


@needs_cc
def test_concurrent_processes_share_one_compile(cache_dir):
    # N processes race to compile one kernel into a shared cache: the
    # per-entry flock serializes them into one compile + N-1 disk hits,
    # one .so on disk, and identical bytes everywhere.
    import multiprocessing as mp

    ctx = mp.get_context("fork")
    n = 4
    barrier = ctx.Barrier(n)
    queue = ctx.Queue()
    procs = [
        ctx.Process(target=_concurrent_compile_worker, args=(barrier, queue))
        for _ in range(n)
    ]
    for p in procs:
        p.start()
    results = [queue.get(timeout=120) for _ in range(n)]
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0
    assert all(compiled for compiled, _, _, _ in results)
    reference = results[0][2]
    for _, got, interp, _ in results:
        assert got == reference and interp == reference
    # Exactly one child actually invoked the compiler...
    assert sum(compiled_count for _, _, _, compiled_count in results) == 1
    # ...and exactly one entry landed on disk.
    assert len(list(cache_dir.glob("*.so"))) == 1
    assert list(cache_dir.glob("*.lock"))  # the advisory lock was taken


@needs_cc
def test_cache_counters_are_mode_labelled(cache_dir):
    from repro.obs.metrics import get_registry

    from repro.codegen import ingest_worker_codegen_stats

    region = _chain_region(shape=(9, 13))
    before = codegen_stats()
    with using_codegen(True):
        compile_region(region)  # compile: one mode="local" miss
    clear_kernel_memo()
    with using_codegen(True):
        compile_region(region)  # disk reload: one mode="local" hit
    after = codegen_stats()
    assert after["compiled"] == before["compiled"] + 1
    assert after["disk_hits"] == before["disk_hits"] + 1
    text = get_registry().render()
    assert 'repro_codegen_cache_miss_total{mode="local"}' in text
    assert 'repro_codegen_cache_hit_total{mode="local"}' in text

    # A worker snapshot folds in under mode="process": ProcServer sends
    # codegen_stats() with its ready handshake and the parent ingests it.
    ingest_worker_codegen_stats({"compiled": 2, "disk_hits": 3, "memo_hits": 1})
    text = get_registry().render()
    assert 'repro_codegen_cache_miss_total{mode="process"}' in text
    assert 'repro_codegen_cache_hit_total{mode="process"}' in text
