"""Codegen tests: region IR, the kernel cache, and the two-arm bit contract."""

import numpy as np
import pytest

from repro.codegen import (
    RegionIR,
    RegionInput,
    clear_kernel_memo,
    codegen_stats,
    compile_region,
    have_compiler,
    kernel_cache_dir,
    using_codegen,
)

needs_cc = pytest.mark.skipif(not have_compiler(), reason="no C compiler available")


def _chain_region(shape=(4, 8), dtype=np.float32):
    """relu((a * b) + c) over ``shape`` arrays."""
    inputs = [RegionInput(dtype, shape) for _ in range(3)]
    ops = [("mul", (0, 1)), ("add", (3, 2)), ("relu", (4,))]
    return RegionIR(inputs, ops, shape, dtype)


def _arrays(region, seed=0):
    rng = np.random.default_rng(seed)
    return [
        rng.standard_normal(inp.shape).astype(inp.dtype)
        for inp in region.inputs
        if inp.const is None
    ]


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """Point the on-disk kernel cache at a fresh directory; clear the memo."""
    monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path))
    clear_kernel_memo()
    yield tmp_path
    clear_kernel_memo()


# --------------------------------------------------------------------------- #
# Region IR structure
# --------------------------------------------------------------------------- #
def test_region_validates_program():
    with pytest.raises(ValueError, match="at least one op"):
        RegionIR([RegionInput(np.float32, (2,))], [], (2,), np.float32)
    with pytest.raises(ValueError, match="undefined slot"):
        RegionIR(
            [RegionInput(np.float32, (2,))], [("neg", (5,))], (2,), np.float32
        )
    with pytest.raises(ValueError, match="float32/float64 only"):
        RegionIR(
            [RegionInput(np.int32, (2,))], [("neg", (0,))], (2,), np.int32
        )
    with pytest.raises(ValueError, match="share the output dtype"):
        RegionIR(
            [RegionInput(np.float64, (2,))], [("neg", (0,))], (2,), np.float32
        )


def test_signature_abstracts_concrete_sizes():
    # Same structure at different batch sizes -> one cache key.
    r8 = _chain_region(shape=(8, 16))
    r64 = _chain_region(shape=(64, 16))
    assert r8.signature() == r64.signature()
    # dtype changes the key.
    assert r8.signature() != _chain_region(shape=(8, 16), dtype=np.float64).signature()
    # Rank changes the key (same element count).
    r3d = _chain_region(shape=(8, 4, 4))
    assert r8.signature() != r3d.signature()
    # Broadcast pattern changes the key.
    inputs = [
        RegionInput(np.float32, (8, 16)),
        RegionInput(np.float32, (16,)),  # row-broadcast operand
        RegionInput(np.float32, (8, 16)),
    ]
    rb = RegionIR(
        inputs, [("mul", (0, 1)), ("add", (3, 2)), ("relu", (4,))], (8, 16), np.float32
    )
    assert rb.signature() != r8.signature()


def test_interpret_matches_eager_ufunc_sequence():
    region = _chain_region()
    a, b, c = _arrays(region)
    expect = np.maximum(np.add(np.multiply(a, b), c), 0.0)
    got = region.interpret([a, b, c])
    assert got.tobytes() == expect.tobytes()
    # out= writes into the caller's buffer with identical values.
    buf = np.empty(region.out_shape, region.out_dtype)
    got2 = region.interpret([a, b, c], out=buf)
    assert got2 is buf
    assert buf.tobytes() == expect.tobytes()


def test_bind_rejects_shape_and_dtype_mismatch():
    region = _chain_region()
    a, b, c = _arrays(region)
    with pytest.raises(ValueError, match="has shape"):
        region.bind([a[:2], b, c])
    with pytest.raises(ValueError, match="has dtype"):
        region.bind([a.astype(np.float64), b, c])
    with pytest.raises(ValueError, match="takes 3 arrays"):
        region.bind([a, b])


def test_respecialize_reuses_program_at_new_batch_size():
    region = _chain_region(shape=(4, 8))
    bigger = region.respecialize([(32, 8), (32, 8), (32, 8)])
    assert bigger.out_shape == (32, 8)
    assert bigger.ops == region.ops
    assert bigger.signature() == region.signature()
    arrays = _arrays(bigger, seed=3)
    expect = np.maximum(arrays[0] * arrays[1] + arrays[2], 0.0)
    assert bigger.interpret(arrays).tobytes() == expect.tobytes()


# --------------------------------------------------------------------------- #
# The two execution arms
# --------------------------------------------------------------------------- #
def test_disabled_codegen_forces_interpreter_arm(cache_dir):
    region = _chain_region()
    arrays = _arrays(region)
    with using_codegen(False):
        kern = compile_region(region)
    assert kern.is_compiled is False
    expect = np.maximum(arrays[0] * arrays[1] + arrays[2], 0.0)
    assert kern(arrays).tobytes() == expect.tobytes()
    assert not list(cache_dir.glob("*.so"))  # nothing compiled


@needs_cc
def test_compiled_arm_bit_equal_to_interpreter(cache_dir):
    region = _chain_region(shape=(16, 32))
    rng = np.random.default_rng(7)
    arrays = [rng.standard_normal((16, 32)).astype(np.float32) for _ in range(3)]
    # Exercise the special values the relu rule must preserve.
    arrays[0][0, :4] = [np.nan, np.inf, -np.inf, -0.0]
    with using_codegen(True):
        compiled = compile_region(region)
    assert compiled.is_compiled is True
    with using_codegen(False):
        interp = compile_region(region)
    assert compiled(arrays).tobytes() == interp(arrays).tobytes()
    # out= path too.
    buf = np.empty(region.out_shape, region.out_dtype)
    got = compiled(arrays, out=buf)
    assert got is buf and buf.tobytes() == interp(arrays).tobytes()


@needs_cc
def test_float64_region_compiles_and_matches(cache_dir):
    region = _chain_region(shape=(5, 7), dtype=np.float64)
    arrays = _arrays(region, seed=11)
    with using_codegen(True):
        kern = compile_region(region)
    assert kern.is_compiled
    expect = region.interpret(arrays)
    assert kern(arrays).tobytes() == expect.tobytes()


# --------------------------------------------------------------------------- #
# Kernel cache behavior
# --------------------------------------------------------------------------- #
@needs_cc
def test_identical_region_hits_cache(cache_dir):
    region = _chain_region()
    before = codegen_stats()
    with using_codegen(True):
        k1 = compile_region(region)
        # Same structure, different batch size: same signature -> memo hit.
        k2 = compile_region(_chain_region(shape=(64, 8)))
    after = codegen_stats()
    assert k1.is_compiled and k2.is_compiled
    assert after["compiled"] == before["compiled"] + 1
    assert after["memo_hits"] == before["memo_hits"] + 1
    assert len(list(cache_dir.glob("*.so"))) == 1

    # Fresh process simulated by clearing the memo: the .so is reloaded
    # from disk, not recompiled.
    clear_kernel_memo()
    with using_codegen(True):
        k3 = compile_region(region)
    final = codegen_stats()
    assert k3.is_compiled
    assert final["compiled"] == after["compiled"]
    assert final["disk_hits"] == after["disk_hits"] + 1


@needs_cc
def test_dtype_and_rank_changes_miss_cache(cache_dir):
    before = codegen_stats()
    with using_codegen(True):
        compile_region(_chain_region(shape=(4, 8), dtype=np.float32))
        compile_region(_chain_region(shape=(4, 8), dtype=np.float64))
        compile_region(_chain_region(shape=(2, 2, 8), dtype=np.float32))
    after = codegen_stats()
    assert after["compiled"] == before["compiled"] + 3
    assert len(list(cache_dir.glob("*.so"))) == 3


@needs_cc
def test_corrupted_cache_entry_recompiles(cache_dir, tmp_path_factory, monkeypatch):
    # Compile in a scratch cache only to learn the entry's content-addressed
    # filename, then plant a garbage .so under that name in a *fresh* cache
    # dir.  (Corrupting the scratch copy in place would be unsound: it is
    # still mmapped by this process, and overwriting a mapped .so faults.)
    region = _chain_region()
    arrays = _arrays(region)
    scratch = tmp_path_factory.mktemp("kernels-scratch")
    monkeypatch.setenv("REPRO_KERNEL_CACHE", str(scratch))
    with using_codegen(True):
        assert compile_region(region).is_compiled
    (so_path,) = scratch.glob("*.so")

    monkeypatch.setenv("REPRO_KERNEL_CACHE", str(cache_dir))
    (cache_dir / so_path.name).write_bytes(b"not a shared object")
    clear_kernel_memo()
    before = codegen_stats()
    with using_codegen(True):
        kern = compile_region(region)
    after = codegen_stats()
    assert kern.is_compiled
    assert after["compiled"] == before["compiled"] + 1  # recompiled, no crash
    expect = np.maximum(arrays[0] * arrays[1] + arrays[2], 0.0)
    assert kern(arrays).tobytes() == expect.tobytes()


@needs_cc
def test_const_inputs_are_bound_not_passed(cache_dir):
    shift = np.full((8,), -0.25, np.float32)
    inputs = [
        RegionInput(np.float32, (4, 8)),
        RegionInput(np.float32, (8,), const=shift),
    ]
    region = RegionIR(inputs, [("add", (0, 1)), ("relu", (2,))], (4, 8), np.float32)
    assert region.num_dynamic == 1
    x = np.random.default_rng(5).standard_normal((4, 8)).astype(np.float32)
    expect = np.maximum(x + shift, 0.0)
    with using_codegen(True):
        kern = compile_region(region)
    assert kern([x]).tobytes() == expect.tobytes()
    with using_codegen(False):
        interp = compile_region(region)
    assert interp([x]).tobytes() == expect.tobytes()


def test_codegen_counters_exported_to_registry(cache_dir):
    from repro.obs.metrics import get_registry

    region = _chain_region()
    with using_codegen(False):
        compile_region(region)
    text = get_registry().render()
    assert "repro_codegen_fallback_total" in text
