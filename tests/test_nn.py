"""Module/Parameter container and layer tests for :mod:`repro.nn`."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, no_grad
from repro.autograd import functional as F


def make_mlp(rng=None):
    rng = rng if rng is not None else np.random.default_rng(0)
    return nn.Sequential(
        nn.Linear(8, 16, rng=rng),
        nn.BatchNorm1d(16),
        nn.ReLU(),
        nn.Dropout(0.5, rng=rng),
        nn.Linear(16, 4, rng=rng),
    )


# --------------------------------------------------------------------------- #
# Parameter / Module discovery
# --------------------------------------------------------------------------- #
def test_parameter_always_requires_grad():
    p = nn.Parameter(np.ones((2, 3)))
    assert p.requires_grad and p.shape == (2, 3)
    # Adopting a Tensor (e.g. an init scheme's output) shares its storage.
    t = Tensor.randn(4, 4, rng=np.random.default_rng(0))
    assert nn.Parameter(t).data is t.data


def test_parameter_adopts_tensor_dtype():
    # float64 init output must stay float64 (finite-difference checks rely on it).
    t = nn.init.kaiming_uniform((3, 3), fan_in=3, rng=np.random.default_rng(0), dtype=np.float64)
    p = nn.Parameter(t)
    assert p.dtype == np.float64 and p.data is t.data


def test_buffer_assignment_preserves_registered_dtype():
    bn = nn.BatchNorm1d(3)
    bn.running_mean = [0, 0, 0]  # plain-int reset must not flip to int64
    assert bn.running_mean.dtype == np.float32
    bn.train()
    bn(Tensor(np.random.default_rng(0).standard_normal((8, 3)).astype(np.float32)))
    assert not np.array_equal(bn.running_mean, np.zeros(3))  # EMA still works


def test_named_parameters_cover_nested_modules_and_lists():
    model = make_mlp()
    names = [n for n, _ in model.named_parameters()]
    assert names == [
        "layers.0.weight",
        "layers.0.bias",
        "layers.1.weight",
        "layers.1.bias",
        "layers.4.weight",
        "layers.4.bias",
    ]
    assert len(model.parameters()) == 6


def test_parameters_deduplicate_shared_weights():
    class Tied(nn.Module):
        def __init__(self):
            super().__init__()
            self.embed = nn.Linear(4, 8)
            self.head = nn.Linear(4, 8)
            self.head.weight = self.embed.weight  # weight tying

    tied = Tied()
    assert len(list(tied.named_parameters())) == 4
    assert len(tied.parameters()) == 3  # the shared weight appears once


def test_named_modules_walks_the_tree():
    model = make_mlp()
    kinds = [type(m).__name__ for _, m in model.named_modules()]
    assert kinds == ["Sequential", "Linear", "BatchNorm1d", "ReLU", "Dropout", "Linear"]


def test_zero_grad_clears_all_parameters():
    model = make_mlp()
    x = Tensor(np.random.default_rng(0).standard_normal((4, 8)).astype(np.float32))
    model(x).sum().backward()
    assert any(p.grad is not None for p in model.parameters())
    model.zero_grad()
    assert all(p.grad is None for p in model.parameters())


def test_forward_not_implemented():
    with pytest.raises(NotImplementedError):
        nn.Module()(1)


# --------------------------------------------------------------------------- #
# train / eval mode semantics
# --------------------------------------------------------------------------- #
def test_train_eval_recurse():
    model = make_mlp()
    assert all(m.training for m in model.modules())
    model.eval()
    assert all(not m.training for m in model.modules())
    model.train()
    assert all(m.training for m in model.modules())


def test_batchnorm_updates_running_stats_only_in_train_mode():
    bn = nn.BatchNorm1d(6)
    x = Tensor(np.random.default_rng(1).standard_normal((32, 6)).astype(np.float32) * 2 + 1)

    bn.eval()
    bn(x)
    assert np.array_equal(bn.running_mean, np.zeros(6))
    assert np.array_equal(bn.running_var, np.ones(6))
    assert int(bn.num_batches_tracked) == 0

    bn.train()
    bn(x)
    assert not np.array_equal(bn.running_mean, np.zeros(6))
    assert not np.array_equal(bn.running_var, np.ones(6))
    assert int(bn.num_batches_tracked) == 1


def test_batchnorm_eval_normalizes_with_running_stats():
    bn = nn.BatchNorm1d(3)
    bn.running_mean = np.array([1.0, 2.0, 3.0], dtype=np.float32)
    bn.running_var = np.array([4.0, 4.0, 4.0], dtype=np.float32)
    bn.eval()
    out = bn(Tensor(np.array([[1.0, 2.0, 3.0]], dtype=np.float32)))
    np.testing.assert_allclose(out.data, np.zeros((1, 3)), atol=1e-6)


def test_dropout_is_identity_in_eval_mode():
    drop = nn.Dropout(0.9)
    x = Tensor(np.ones((8, 8)))
    drop.eval()
    out = drop(x)
    assert out is x  # not even a tape node
    drop.train()
    assert not np.array_equal(drop(x).data, x.data)


def test_no_grad_inference_through_sequential_records_no_graph():
    model = make_mlp().eval()
    x = Tensor(np.random.default_rng(2).standard_normal((4, 8)).astype(np.float32))
    with no_grad():
        out = model(x)
    assert not out.requires_grad
    assert out._backward is None and out._prev == ()


# --------------------------------------------------------------------------- #
# state_dict / load_state_dict
# --------------------------------------------------------------------------- #
def test_state_dict_round_trip_is_bit_exact():
    rng = np.random.default_rng(3)
    model = make_mlp(rng)
    x = Tensor(rng.standard_normal((16, 8)).astype(np.float32))
    model(x)  # populate running stats
    state = model.state_dict()
    assert "layers.1.running_mean" in state and "layers.0.weight" in state

    other = make_mlp(np.random.default_rng(999))
    other.load_state_dict(state)
    for key, value in other.state_dict().items():
        assert np.array_equal(value, state[key]), key


def test_state_dict_returns_copies():
    model = make_mlp()
    state = model.state_dict()
    state["layers.0.weight"][:] = 0.0
    assert not np.array_equal(model.layers[0].weight.data, state["layers.0.weight"])


def test_load_state_dict_is_in_place():
    model = make_mlp()
    weight_storage = model.layers[0].weight.data
    model.load_state_dict(make_mlp(np.random.default_rng(4)).state_dict())
    assert model.layers[0].weight.data is weight_storage


def test_load_state_dict_strict_validates_keys():
    model = make_mlp()
    state = model.state_dict()
    state["bogus"] = np.zeros(1)
    with pytest.raises(KeyError, match="bogus"):
        model.load_state_dict(state)
    del state["bogus"]
    del state["layers.0.weight"]
    with pytest.raises(KeyError, match="layers.0.weight"):
        model.load_state_dict(state)
    model.load_state_dict(state, strict=False)  # tolerated when not strict


def test_load_state_dict_validates_shapes():
    model = make_mlp()
    state = model.state_dict()
    state["layers.0.weight"] = np.zeros((2, 2), dtype=np.float32)
    with pytest.raises(ValueError, match="shape"):
        model.load_state_dict(state)


# --------------------------------------------------------------------------- #
# Layers forward against their functional kernels
# --------------------------------------------------------------------------- #
def test_linear_layer_matches_functional():
    rng = np.random.default_rng(5)
    layer = nn.Linear(5, 3, rng=rng)
    x = Tensor(rng.standard_normal((4, 5)).astype(np.float32))
    np.testing.assert_array_equal(
        layer(x).data, F.linear(x, layer.weight, layer.bias).data
    )


def test_linear_layer_without_bias_routes_none_end_to_end():
    rng = np.random.default_rng(6)
    layer = nn.Linear(5, 3, bias=False, rng=rng)
    assert layer.bias is None
    assert len(layer.parameters()) == 1
    x = Tensor(rng.standard_normal((4, 5)).astype(np.float32))
    loss = (layer(x) ** 2.0).sum()
    loss.backward()
    assert layer.weight.grad is not None and layer.weight.grad.shape == (5, 3)
    assert "bias" not in layer.state_dict()


def test_conv2d_layer_matches_functional_and_supports_no_bias():
    rng = np.random.default_rng(7)
    layer = nn.Conv2d(3, 8, 3, stride=1, padding=1, rng=rng)
    x = Tensor(rng.standard_normal((2, 3, 6, 6)).astype(np.float32))
    np.testing.assert_array_equal(
        layer(x).data,
        F.conv2d(x, layer.weight, layer.bias, stride=(1, 1), padding=(1, 1)).data,
    )
    no_bias = nn.Conv2d(3, 8, 3, bias=False, rng=rng)
    assert no_bias.bias is None
    no_bias(x).sum().backward()
    assert no_bias.weight.grad is not None


def test_pool_and_flatten_layers():
    rng = np.random.default_rng(8)
    x = Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32))
    assert nn.MaxPool2d(2)(x).shape == (2, 3, 4, 4)
    assert nn.AvgPool2d(2)(x).shape == (2, 3, 4, 4)
    assert nn.Flatten()(x).shape == (2, 3 * 8 * 8)
    assert nn.Flatten(start_dim=2)(x).shape == (2, 3, 64)


def test_batchnorm_validates_rank_and_channels():
    with pytest.raises(ValueError, match="4-D"):
        nn.BatchNorm2d(3)(Tensor(np.ones((2, 3))))
    with pytest.raises(ValueError, match="channels"):
        nn.BatchNorm1d(3)(Tensor(np.ones((2, 5))))


def test_sequential_container_api():
    model = make_mlp()
    assert len(model) == 5
    assert isinstance(model[0], nn.Linear)
    assert isinstance(model[1:3], nn.Sequential) and len(model[1:3]) == 2
    model.append(nn.ReLU())
    assert len(model) == 6
    assert len([m for m in model]) == 6


def test_sequential_slices_share_module_identity():
    model = make_mlp()
    head = model[:2]
    assert head[0] is model[0] and head[1] is model[1]  # shared, not copied
    assert head[0].weight is model[0].weight
    # Training the slice trains the original (same parameter storage).
    tail = model[-1:]
    assert tail[0] is model[4]
    assert model[::2][1] is model[2]  # stepped slices too


def test_sequential_mutators_feed_parameter_discovery():
    rng = np.random.default_rng(0)
    model = nn.Sequential(nn.Linear(8, 8, rng=rng))
    assert model.append(nn.ReLU()) is model
    assert model.insert(0, nn.Linear(8, 8, rng=rng)) is model  # at the front
    assert model.extend([nn.Linear(8, 4, rng=rng), nn.ReLU()]) is model
    assert [type(m).__name__ for m in model] == [
        "Linear", "Linear", "ReLU", "Linear", "ReLU",
    ]
    # Every layer added through every mutator is discovered: 3 Linears with
    # weight+bias each.
    assert len(model.parameters()) == 6
    names = dict(model.named_parameters())
    assert "layers.0.weight" in names and "layers.3.weight" in names
    # extend() accepts another Sequential and shares its modules.
    other = nn.Sequential(nn.Linear(4, 2, rng=rng))
    model.extend(other)
    assert model[-1] is other[0]
    assert len(model.parameters()) == 8
    out = model(np.zeros((2, 8), dtype=np.float32))
    assert out.shape == (2, 2)


def test_sequential_rejects_non_modules():
    model = nn.Sequential()
    with pytest.raises(TypeError, match="Module"):
        model.append(lambda x: x)
    with pytest.raises(TypeError, match="Module"):
        model.insert(0, np.zeros(3))
    with pytest.raises(TypeError, match="Module"):
        model.extend([nn.ReLU(), "not a module"])
    assert len(model) == 0  # extend validates up front, never half-applies
    with pytest.raises(TypeError, match="Module"):
        nn.Sequential(nn.ReLU(), 42)


def test_module_repr_nests():
    text = repr(make_mlp())
    assert "Sequential" in text and "Linear(8, 16" in text and "Dropout(p=0.5)" in text


# --------------------------------------------------------------------------- #
# init schemes
# --------------------------------------------------------------------------- #
def test_init_schemes_are_seedable_and_scaled():
    rng1, rng2 = np.random.default_rng(11), np.random.default_rng(11)
    a = nn.init.kaiming_uniform((50, 50), fan_in=50, rng=rng1)
    b = nn.init.kaiming_uniform((50, 50), fan_in=50, rng=rng2)
    assert np.array_equal(a.data, b.data)
    assert np.abs(a.data).max() <= np.sqrt(6.0 / 50) + 1e-6

    n = nn.init.kaiming_normal((400, 100), fan_in=100, rng=rng1)
    assert abs(n.data.std() - np.sqrt(2.0 / 100)) < 0.01

    xu = nn.init.xavier_uniform((100, 100), fan_in=100, fan_out=100, rng=rng1)
    assert np.abs(xu.data.max()) <= np.sqrt(6.0 / 200) + 1e-6
    xn = nn.init.xavier_normal((400, 100), fan_in=100, fan_out=100, rng=rng1)
    assert abs(xn.data.std() - np.sqrt(2.0 / 200)) < 0.01


def test_manual_seed_makes_default_init_deterministic():
    nn.init.manual_seed(123)
    w1 = nn.Linear(6, 6).weight.data.copy()
    nn.init.manual_seed(123)
    w2 = nn.Linear(6, 6).weight.data.copy()
    assert np.array_equal(w1, w2)


# --------------------------------------------------------------------------- #
# Tensor constructors backing the init layer
# --------------------------------------------------------------------------- #
def test_tensor_constructors_shapes_and_values():
    assert Tensor.zeros(2, 3).shape == (2, 3)
    assert Tensor.zeros((2, 3)).shape == (2, 3)
    assert np.array_equal(Tensor.ones(4).data, np.ones(4, dtype=np.float32))
    full = Tensor.full((2, 2), 7.5)
    assert np.array_equal(full.data, np.full((2, 2), 7.5, dtype=np.float32))
    assert Tensor.full(3, 1.0).shape == (3,)
    assert Tensor.zeros(2, 2, dtype=np.float64).dtype == np.float64
    assert Tensor.ones(2, requires_grad=True).requires_grad


def test_tensor_random_constructors_are_generator_seeded():
    a = Tensor.randn(3, 4, rng=np.random.default_rng(5))
    b = Tensor.randn((3, 4), rng=np.random.default_rng(5))
    assert a.shape == (3, 4) and np.array_equal(a.data, b.data)
    u = Tensor.uniform(100, low=-2.0, high=3.0, rng=np.random.default_rng(5))
    assert u.data.min() >= -2.0 and u.data.max() < 3.0
