"""Server observability integration: registry/stats agreement, stage
latency breakdown, trace-span ordering under faults, the HTTP edge."""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import nn
from repro.obs.metrics import NULL_REGISTRY, Registry
from repro.serve import Server, inject_faults
from repro.serve.resilience import RetryPolicy


def _mlp(rng):
    model = nn.Sequential(
        nn.Linear(12, 16, rng=rng),
        nn.ReLU(),
        nn.Linear(16, 5, rng=rng),
    )
    model.eval()
    return model


def _server(rng, **kwargs):
    kwargs.setdefault("buckets", (1, 4))
    kwargs.setdefault("max_wait", 0.001)
    return Server(_mlp(rng), np.zeros((1, 12), np.float32), **kwargs)


def _value(server, name, **extra_labels):
    family = server.registry.get(name)
    assert family is not None, f"{name} not registered"
    labels = {"mode": server.mode, "server": server._server_id, **extra_labels}
    return family.labels(**labels).value


# --------------------------------------------------------------------------- #
# Registry is the source of truth; stats() is the same numbers
# --------------------------------------------------------------------------- #
def test_stats_and_registry_agree_after_traffic():
    rng = np.random.default_rng(0)
    with _server(rng, workers=2) as server:
        futures = [
            server.submit(rng.standard_normal((n, 12)).astype(np.float32))
            for n in (1, 3, 4, 7, 2)
        ]
        for f in futures:
            f.result(timeout=10)
        stats = server.stats()

        assert stats["requests_submitted"] == 5.0
        assert stats["requests_completed"] == 5.0
        assert stats["samples_completed"] == 17.0
        assert stats["requests_submitted"] == _value(
            server, "repro_serve_requests_submitted_total")
        assert stats["requests_completed"] == _value(
            server, "repro_serve_requests_completed_total")
        assert stats["samples_completed"] == _value(
            server, "repro_serve_samples_completed_total")
        assert stats["batches_dispatched"] == _value(
            server, "repro_serve_batches_dispatched_total")
        # Pool routing counters roll up into the labeled bucket series.
        for bucket, count in stats["bucket_calls"].items():
            assert count == _value(
                server, "repro_serve_bucket_calls_total", bucket=str(bucket))
        # Scrape-time gauges evaluate live.
        assert _value(server, "repro_serve_queue_depth") == 0.0
        assert _value(server, "repro_serve_workers_alive") == 2.0
        assert _value(server, "repro_serve_batch_occupancy") == pytest.approx(
            stats["batch_occupancy"])
        # The latency histogram observed exactly the completed requests.
        fam = server.registry.get("repro_serve_request_latency_ms")
        assert fam.labels(mode="thread", server=server._server_id).count == 5


def test_stage_breakdown_queue_wait_plus_service():
    rng = np.random.default_rng(1)
    with _server(rng, workers=1) as server:
        for _ in range(8):
            server.submit(rng.standard_normal((2, 12)).astype(np.float32)).result(
                timeout=10)
        stats = server.stats()
        for key in ("latency_ms", "queue_wait_ms", "service_ms"):
            for pct in (50, 95, 99):
                assert f"{key}_p{pct}" in stats
        # All three stage quantities are per-request over the same window:
        # latency (submit->result) decomposes into queue wait
        # (submit->collect) plus service (collect->result).
        assert stats["latency_ms_p50"] > 0.0
        assert stats["service_ms_p50"] > 0.0
        assert stats["latency_ms_p50"] == pytest.approx(
            stats["queue_wait_ms_p50"] + stats["service_ms_p50"], rel=0.5,
            abs=2.0)
        # The histograms observed the same per-request quantities.
        for name, count in (
            ("repro_serve_request_latency_ms", 8),
            ("repro_serve_queue_wait_ms", 8),
            ("repro_serve_service_ms", 8),
        ):
            child = server.registry.get(name).labels(
                mode="thread", server=server._server_id)
            assert child.count == count


def test_null_registry_disables_counters_but_keeps_percentiles():
    rng = np.random.default_rng(2)
    with _server(rng, registry=NULL_REGISTRY, trace=False) as server:
        assert server.tracer is None
        server.submit(rng.standard_normal((3, 12)).astype(np.float32)).result(
            timeout=10)
        stats = server.stats()
        assert stats["requests_completed"] == 0.0  # writes were swallowed
        assert stats["latency_ms_p50"] > 0.0  # internal windows stay live
        assert server.registry.render() == ""


def test_two_servers_share_a_registry_via_the_server_label():
    rng = np.random.default_rng(3)
    registry = Registry()
    with _server(rng, registry=registry) as a, _server(rng, registry=registry) as b:
        a.submit(np.zeros((1, 12), np.float32)).result(timeout=10)
        b.submit(np.zeros((2, 12), np.float32)).result(timeout=10)
        assert a._server_id != b._server_id
        text = registry.render()
        assert (
            'repro_serve_samples_completed_total{mode="thread",server="%s"} 1'
            % a._server_id
        ) in text
        assert (
            'repro_serve_samples_completed_total{mode="thread",server="%s"} 2'
            % b._server_id
        ) in text


# --------------------------------------------------------------------------- #
# Trace spans: the request lifecycle, including retries and bisection
# --------------------------------------------------------------------------- #
def _spans_by_name(tracer, trace_id):
    spans = tracer.spans(trace_id)
    by_name = {}
    for s in spans:
        by_name.setdefault(s.name, []).append(s)
    return spans, by_name


def test_clean_request_records_ordered_stage_spans():
    rng = np.random.default_rng(4)
    with _server(rng, workers=1) as server:
        future = server.submit(rng.standard_normal((2, 12)).astype(np.float32))
        future.result(timeout=10)
        trace_id = len(server.tracer.spans()) and server.tracer.spans()[0].trace_id
        spans, by_name = _spans_by_name(server.tracer, trace_id)
        for stage in ("queue_wait", "coalesce", "serve", "scatter", "resolve"):
            assert stage in by_name, f"missing {stage} span"
        # Stage intervals chain: each starts where the previous ended.
        qw, co = by_name["queue_wait"][0], by_name["coalesce"][0]
        sv, sc = by_name["serve"][0], by_name["scatter"][0]
        rs = by_name["resolve"][0]
        assert qw.start <= qw.end == co.start <= co.end <= sv.start
        assert sv.end <= sc.start <= sc.end == rs.start <= rs.end
        assert sv.args["attempt"] == 0 and "error" not in sv.args


def test_retried_request_records_a_serve_span_per_attempt():
    rng = np.random.default_rng(5)
    with _server(rng, workers=1,
                 retry=RetryPolicy(max_retries=2, backoff_base=0.0)) as server:
        with inject_faults(server, raise_on={1}, seed=0):
            future = server.submit(
                rng.standard_normal((2, 12)).astype(np.float32))
            future.result(timeout=10)
        trace_id = server.tracer.spans()[0].trace_id
        _, by_name = _spans_by_name(server.tracer, trace_id)
        serves = by_name["serve"]
        assert len(serves) == 2
        assert serves[0].args["attempt"] == 0
        assert serves[0].args["error"] == "TransientError"
        assert serves[1].args["attempt"] == 1 and "error" not in serves[1].args
        assert serves[0].end <= serves[1].start
        assert server.stats()["batches_retried"] == 1.0


def test_bisected_poisoned_request_spans_and_isolation():
    rng = np.random.default_rng(6)
    clean_a = rng.standard_normal((1, 12)).astype(np.float32)
    poisoned = np.full((1, 12), np.nan, dtype=np.float32)
    clean_b = rng.standard_normal((1, 12)).astype(np.float32)
    with _server(rng, workers=1, max_wait=0.2, max_batch_size=4) as server:
        with inject_faults(
            server, poison=lambda arrays: np.isnan(arrays[0]).any(), seed=0,
        ) as chaos:
            # One coalesced group of three requests, the middle one poisoned.
            futures = [server.submit(clean_a), server.submit(poisoned),
                       server.submit(clean_b)]
            results = []
            for f in futures:
                try:
                    results.append(f.result(timeout=10))
                except Exception as exc:
                    results.append(exc)
        assert chaos.poisoned >= 2  # whole group + at least one half
        # Isolation: only the poisoned request failed.
        assert isinstance(results[0], np.ndarray)
        assert type(results[1]).__name__ == "PoisonedRequest"
        assert isinstance(results[2], np.ndarray)

        all_spans = server.tracer.spans()
        poisoned_id = sorted({s.trace_id for s in all_spans})[1]  # 2nd submit
        spans, by_name = _spans_by_name(server.tracer, poisoned_id)
        # The poisoned request was served more than once (group, then its
        # bisection half/single), every attempt failing.
        serves = by_name["serve"]
        assert len(serves) >= 2
        assert all(s.args["error"] == "PoisonedRequest" for s in serves)
        # The group shrank toward the singleton across bisection levels.
        group_sizes = [s.args["group_requests"] for s in serves]
        assert group_sizes[0] == 3 and group_sizes[-1] == 1
        assert sorted(group_sizes, reverse=True) == group_sizes
        # Ordering: queue_wait -> coalesce -> first serve, serves in order.
        qw, co = by_name["queue_wait"][0], by_name["coalesce"][0]
        assert qw.end == co.start <= co.end <= serves[0].start
        for earlier, later in zip(serves, serves[1:]):
            assert earlier.end <= later.start
        # A failed request has no scatter/resolve stage.
        assert "scatter" not in by_name and "resolve" not in by_name
        # The clean co-batched requests did resolve, with their own spans.
        for clean_id in (poisoned_id - 1, poisoned_id + 1):
            _, clean_names = _spans_by_name(server.tracer, clean_id)
            assert "scatter" in clean_names and "resolve" in clean_names
        assert server.stats()["requests_failed"] == 1.0
        assert server.stats()["batches_retried"] >= 2.0  # bisection halves


def test_trace_ring_is_bounded_per_server():
    rng = np.random.default_rng(7)
    with _server(rng, trace_capacity=8) as server:
        for _ in range(10):
            server.submit(np.zeros((1, 12), np.float32)).result(timeout=10)
        assert len(server.tracer.spans()) <= 8


# --------------------------------------------------------------------------- #
# The HTTP edge on a live server
# --------------------------------------------------------------------------- #
def _get(url):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.read().decode()


def test_serve_http_exposes_metrics_probes_and_traces():
    rng = np.random.default_rng(8)
    with _server(rng, workers=1) as server:
        edge = server.serve_http()
        assert server.serve_http() is edge  # idempotent
        server.submit(rng.standard_normal((3, 12)).astype(np.float32)).result(
            timeout=10)

        status, body = _get(edge.url + "/metrics")
        assert status == 200
        sid = server._server_id
        assert (
            f'repro_serve_requests_completed_total'
            f'{{mode="thread",server="{sid}"}} 1' in body
        )
        assert f'repro_serve_queue_depth{{mode="thread",server="{sid}"}} 0' in body
        assert (
            f'repro_serve_request_latency_ms_bucket'
            f'{{mode="thread",server="{sid}",le="+Inf"}} 1' in body
        )
        for series in (
            "repro_serve_requests_rejected_total",
            "repro_serve_requests_expired_total",
            "repro_serve_batches_retried_total",
            "repro_serve_worker_restarts_total",
            "repro_serve_queue_wait_ms_bucket",
            "repro_serve_service_ms_bucket",
        ):
            assert series in body

        status, body = _get(edge.url + "/health")
        health = json.loads(body)
        assert health["ready"] is True and health["workers_alive"] == 1

        status, body = _get(edge.url + "/ready")
        assert status == 200

        status, body = _get(edge.url + "/traces.json")
        names = {e["name"] for e in json.loads(body)["traceEvents"]}
        assert {"queue_wait", "coalesce", "serve"} <= names

        url = edge.url
    # stop() (via the context manager) took the edge down with the server.
    with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
        _get(url + "/metrics")
    assert server._http is None
