"""Fusion-pass tests: pattern rewrites, bit-exactness, toggles, retain_graph."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, functional as F, fusion, ir
from repro.backend import get_backend, use_backend
from repro.models import TBNet, make_synthetic_batch
from repro.nn.init import manual_seed

BACKENDS = ("numpy", "fused")

#: Region extraction needs concrete ndarray node outputs; under the lazy
#: backend eager elementwise results are LazyArrays, because deferral
#: *itself* delivers region fusion there (covered by test_lazy.py).  Only
#: the tests that call fuse() on eagerly built tensors are affected —
#: traced/served paths capture with deferral paused and fuse normally.
requires_eager_data = pytest.mark.skipif(
    get_backend().name == "lazy",
    reason="eager tensors carry LazyArrays under the lazy backend; "
    "deferral provides the equivalent region fusion (see test_lazy.py)",
)


def _grads(params):
    return [None if p.grad is None else p.grad.copy() for p in params]


# --------------------------------------------------------------------------- #
# Pattern rewrites
# --------------------------------------------------------------------------- #
def test_linear_relu_fuses_into_one_node():
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((4, 3)).astype(np.float32), requires_grad=True)
    w = Tensor(rng.standard_normal((3, 2)).astype(np.float32), requires_grad=True)
    out = F.linear(x, w).relu()
    stats = fusion.fuse(out)
    assert stats == {"linear_relu": 1}
    assert out._node.op == "linear_relu"
    assert out._node.inputs == (x, w)


@requires_eager_data
def test_mul_add_relu_chain_becomes_one_region():
    # mul → add → relu: the whole elementwise chain collapses into one
    # region node (the old pass could only take the mul+add pair).
    x = Tensor([1.0, -2.0], requires_grad=True)
    s = Tensor([3.0, 4.0], requires_grad=True)
    t = Tensor([0.5, 0.5], requires_grad=True)
    out = (x * s + t).relu()
    stats = fusion.fuse(out)
    assert stats == {"region": 1}
    assert out._node.op == "region"
    assert out._node.attrs["size"] == 3
    assert [op for op, _ in out._node.attrs["region"].ops] == ["mul", "add", "relu"]
    assert out._node.inputs == (x, s, t)


@requires_eager_data
def test_add_relu_fuses_into_a_region():
    a = Tensor([1.0, -2.0], requires_grad=True)
    b = Tensor([3.0, -4.0], requires_grad=True)
    out = (a + b).relu()
    assert fusion.fuse(out) == {"region": 1}
    assert out._node.op == "region"
    assert out._node.attrs["size"] == 2


@requires_eager_data
def test_region_matches_either_addend_side():
    a = Tensor([1.0, 2.0], requires_grad=True)
    b = Tensor([3.0, 4.0], requires_grad=True)
    c = Tensor([5.0, 6.0], requires_grad=True)
    out = c + a * b  # the mul is the *right* operand of add
    assert fusion.fuse(out) == {"region": 1}
    out.backward(np.ones(2, dtype=np.float32))
    np.testing.assert_array_equal(a.grad, b.data)
    np.testing.assert_array_equal(c.grad, [1.0, 1.0])


def test_shared_intermediate_is_not_fused():
    # The linear output feeds both the relu and a second consumer: fusing
    # would change accumulation order (and lose the intermediate), so the
    # pass must leave the chain alone.
    rng = np.random.default_rng(1)
    x = Tensor(rng.standard_normal((4, 3)).astype(np.float32), requires_grad=True)
    w = Tensor(rng.standard_normal((3, 2)).astype(np.float32), requires_grad=True)
    h = F.linear(x, w)
    out = h.relu().sum() + h.sum()
    assert fusion.fuse(out) == {}
    out.backward()
    assert x.grad is not None


def test_fused_away_intermediate_gets_no_transient_grad():
    x = Tensor([[1.0, -1.0]], requires_grad=True)
    w = Tensor(np.eye(2, dtype=np.float32), requires_grad=True)
    h = F.linear(x, w)
    out = h.relu().sum()
    fusion.fuse(out)
    out.backward()
    assert h.grad is None  # bypassed like a PyTorch non-leaf
    assert x.grad is not None and w.grad is not None


# --------------------------------------------------------------------------- #
# Bit-exactness against the unfused tape
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("pattern", ["linear_relu", "mul_add", "add_relu", "bn_relu_train", "bn_relu_eval"])
def test_fused_backward_is_bit_identical(backend, pattern):
    rng = np.random.default_rng(7)

    def build():
        x = Tensor(rng.standard_normal((6, 4)).astype(np.float32), requires_grad=True)
        if pattern == "linear_relu":
            w = Tensor(rng.standard_normal((4, 3)).astype(np.float32), requires_grad=True)
            b = Tensor(rng.standard_normal(3).astype(np.float32), requires_grad=True)
            return [x, w, b], lambda p: F.linear(p[0], p[1], p[2]).relu().sum()
        if pattern == "mul_add":
            s = Tensor(rng.standard_normal(4).astype(np.float32), requires_grad=True)
            t = Tensor(rng.standard_normal(4).astype(np.float32), requires_grad=True)
            return [x, s, t], lambda p: (p[0] * p[1] + p[2]).sum()
        if pattern == "add_relu":
            b = Tensor(rng.standard_normal(4).astype(np.float32), requires_grad=True)
            return [x, b], lambda p: (p[0] + p[1]).relu().sum()
        gamma = Tensor(rng.standard_normal(4).astype(np.float32), requires_grad=True)
        beta = Tensor(rng.standard_normal(4).astype(np.float32), requires_grad=True)
        if pattern == "bn_relu_train":
            return [x, gamma, beta], lambda p: F.batch_norm(
                p[0], p[1], p[2], training=True
            ).relu().sum()
        rm = np.zeros(4, dtype=np.float32)
        rv = np.ones(4, dtype=np.float32)
        return [x, gamma, beta], lambda p: F.batch_norm(
            p[0], p[1], p[2], running_mean=rm, running_var=rv, training=False
        ).relu().sum()

    with use_backend(backend):
        params, loss_fn = build()

        loss_fn(params).backward()
        reference = _grads(params)
        ref_loss = loss_fn(params).data  # identical forward value check

        for p in params:
            p.grad = None
        loss = loss_fn(params)
        stats = fusion.fuse(loss)
        assert sum(stats.values()) == 1, f"expected one fusion, got {stats}"
        np.testing.assert_array_equal(loss.data, ref_loss)
        loss.backward()
        for got, want in zip(_grads(params), reference):
            np.testing.assert_array_equal(got, want)


@pytest.mark.parametrize("backend", BACKENDS)
def test_tbnet_fused_train_step_is_bit_identical(backend):
    """Full two-branch model: forward loss, every parameter gradient and the
    batch-norm running statistics are bit-equal with and without fusion."""
    with use_backend(backend):
        def run(fused: bool):
            manual_seed(123)  # identical init + dropout masks
            model = TBNet(width=8, dropout=0.25)
            images, context, targets = make_synthetic_batch(
                16, rng=np.random.default_rng(5)
            )
            with fusion.using_fusion(fused):
                loss = model.loss(images, context, targets)
                loss.backward()
            grads = {k: p.grad.copy() for k, p in model.named_parameters()}
            stats = {k: b.copy() for k, b in model.named_buffers()}
            return loss.data, grads, stats

        loss_a, grads_a, stats_a = run(False)
        loss_b, grads_b, stats_b = run(True)
        np.testing.assert_array_equal(loss_a, loss_b)
        assert grads_a.keys() == grads_b.keys()
        for key in grads_a:
            np.testing.assert_array_equal(grads_a[key], grads_b[key], err_msg=key)
        for key in stats_a:
            np.testing.assert_array_equal(stats_a[key], stats_b[key], err_msg=key)


# --------------------------------------------------------------------------- #
# retain_graph interaction
# --------------------------------------------------------------------------- #
def test_retain_graph_replays_the_fused_graph():
    rng = np.random.default_rng(11)
    x = Tensor(rng.standard_normal((5, 3)).astype(np.float32), requires_grad=True)
    w = Tensor(rng.standard_normal((3, 2)).astype(np.float32), requires_grad=True)

    loss = F.linear(x, w).relu().sum()
    loss.backward(retain_graph=True)
    once = w.grad.copy()
    loss.backward(retain_graph=True)
    np.testing.assert_array_equal(w.grad, once * 2.0)  # leaves accumulate

    for t in (x, w):
        t.grad = None
    with fusion.using_fusion(True):
        loss2 = F.linear(x, w).relu().sum()
        loss2.backward(retain_graph=True)
        assert loss2._node.inputs[0]._node.op == "linear_relu"
        np.testing.assert_array_equal(w.grad, once)
        loss2.backward(retain_graph=True)  # cached topo over fused nodes
        np.testing.assert_array_equal(w.grad, once * 2.0)
        loss2.backward()  # final pass frees the fused graph
        np.testing.assert_array_equal(w.grad, once * 3.0)
        with pytest.raises(RuntimeError, match="already been freed"):
            loss2.backward()


def test_explicit_fuse_then_retained_double_backward_matches_unfused():
    a = Tensor([1.0, -2.0, 3.0], requires_grad=True)
    b = Tensor([0.5, 0.5, 0.5], requires_grad=True)
    loss = (a * b + a).sum()
    fusion.fuse(loss)
    assert loss._node.op == "sum"
    loss.backward(retain_graph=True)
    first = a.grad.copy()
    loss.backward()
    np.testing.assert_array_equal(a.grad, first * 2.0)
    np.testing.assert_array_equal(first, b.data + 1.0)


# --------------------------------------------------------------------------- #
# Toggles
# --------------------------------------------------------------------------- #
def test_bypassed_producer_is_freed_with_its_fused_node():
    # The mul node is routed around by the fusion rewrite; freeing the fused
    # graph must free it too, so a later backward through the retained
    # intermediate raises instead of silently double-accumulating.
    with fusion.using_fusion(True):
        x = Tensor([2.0], requires_grad=True)
        y = Tensor([3.0], requires_grad=True)
        c = Tensor([1.0], requires_grad=True)
        inter = x * y
        loss = (inter + c).sum()
        loss.backward()
        np.testing.assert_array_equal(x.grad, [3.0])
        with pytest.raises(RuntimeError, match="already been freed"):
            inter.backward(np.ones(1, dtype=np.float32))
        np.testing.assert_array_equal(x.grad, [3.0])  # untouched
        assert inter._node.inputs == () and inter._node.out is None


def test_fused_graph_is_collectable_without_gc():
    # The free pass must drop the bypassed producer's closures too, so the
    # whole fused graph is reclaimed by refcounting alone.
    import gc
    import weakref

    with fusion.using_fusion(True):
        x = Tensor([1.0], requires_grad=True)
        inter = x * 2.0
        loss = (inter + 1.0).sum()
        refs = [weakref.ref(inter), weakref.ref(loss)]
        loss.backward()
        gc.disable()
        try:
            del inter, loss
            assert all(r() is None for r in refs)
        finally:
            gc.enable()


def test_freed_graph_backward_still_raises_the_sentinel_under_fusion():
    # The pass must skip freed nodes (inputs/attrs are gone) so the second
    # backward reaches the freed-graph sentinel, not an IndexError.
    with fusion.using_fusion(True):
        x = Tensor([1.0, -2.0], requires_grad=True)
        y = Tensor([3.0, 4.0], requires_grad=True)
        z = (x * y).relu()
        z.backward(np.ones(2, dtype=np.float32))
        with pytest.raises(RuntimeError, match="already been freed"):
            z.backward(np.ones(2, dtype=np.float32))

        a = Tensor([2.0], requires_grad=True)
        h = a * a
        l1 = h.sum()
        l2 = (h * 2.0).sum()
        l1.backward()  # frees h's node
        with pytest.raises(RuntimeError, match="already been freed"):
            l2.backward()  # walks through the freed shared node

        # A freed producer must not be picked up as a fusion candidate: the
        # linear node below is freed by z2's pass, and z1's relu would fuse
        # with it if the pass did not skip freed nodes.
        rng = np.random.default_rng(0)
        x = Tensor(rng.standard_normal((3, 4)).astype(np.float32), requires_grad=True)
        w = Tensor(rng.standard_normal((4, 2)).astype(np.float32), requires_grad=True)
        y = F.linear(x, w)
        z1 = y.relu().sum()
        z2 = (y * 2.0).sum()
        z2.backward()
        with pytest.raises(RuntimeError, match="already been freed"):
            z1.backward()


def _primitives_only_backend():
    """A third-party backend exposing the pre-IR ArrayBackend surface only
    (no linear_relu/mul_add/add_relu/bn_normalize_relu/relu_grad)."""
    from repro.backend.numpy_backend import NumpyBackend

    reference = NumpyBackend()

    class PrimitivesOnly:
        name = "primitives-only"

    for method in (
        "zeros", "add", "multiply", "divide", "negative", "power", "matmul",
        "tensordot", "exp", "log", "sqrt", "tanh", "sum", "mean", "var",
        "amax", "argmax", "pad", "sliding_windows", "random_uniform",
        "standard_normal", "uniform", "relu", "sigmoid", "linear", "softmax",
        "softmax_grad", "log_softmax", "log_softmax_grad", "xent_grad",
        "bn_normalize", "bn_input_grad", "dropout_mask", "sgd_update",
        "adam_update",
    ):
        setattr(PrimitivesOnly, method, staticmethod(getattr(reference, method)))
    backend = PrimitivesOnly()
    assert not hasattr(backend, "linear_relu")
    return backend


def test_backends_without_composites_are_not_fused():
    # A backend implementing only the documented primitive surface must get
    # no fusion (instead of an AttributeError mid-backward or mid-replay).
    from repro.backend import set_backend

    rng = np.random.default_rng(17)
    previous = set_backend("numpy")
    try:
        set_backend(_primitives_only_backend())
        x = Tensor(rng.standard_normal((4, 3)).astype(np.float32), requires_grad=True)
        w = Tensor(rng.standard_normal((3, 2)).astype(np.float32), requires_grad=True)
        s = Tensor(rng.standard_normal(2).astype(np.float32), requires_grad=True)
        with fusion.using_fusion(True):
            out = F.linear(x, w).relu()
            loss = (out * s + 1.0).sum()
            assert fusion.fuse(loss) == {}  # every pattern declined
            loss.backward()
        assert all(t.grad is not None for t in (x, w, s))
    finally:
        set_backend(previous)


def test_serving_compiles_unfused_on_composite_less_backends():
    from repro.backend import set_backend
    from repro.serve import compile_inference

    rng = np.random.default_rng(18)
    model = nn.Sequential(nn.Linear(5, 4, rng=rng), nn.ReLU())
    model.eval()
    x = rng.standard_normal((3, 5)).astype(np.float32)
    previous = set_backend("numpy")
    try:
        set_backend(_primitives_only_backend())
        session = compile_inference(model, x)  # fuse=True, silently declined
        assert session.fused_counts == {}
        from repro.autograd import no_grad
        with no_grad():
            expected = model(x).data
        np.testing.assert_array_equal(session.run(x), expected)
    finally:
        set_backend(previous)


def test_repro_fusion_env_toggle(monkeypatch):
    monkeypatch.delenv("REPRO_FUSION", raising=False)
    fusion.enable_fusion(None)
    assert not fusion.fusion_enabled()
    for value in ("1", "on", "trace"):
        monkeypatch.setenv("REPRO_FUSION", value)
        assert fusion.fusion_enabled()
    for value in ("0", "off", "false", "no", ""):
        monkeypatch.setenv("REPRO_FUSION", value)
        assert not fusion.fusion_enabled()
    monkeypatch.setenv("REPRO_FUSION", "0")
    with fusion.using_fusion(True):
        assert fusion.fusion_enabled()  # override beats the environment
    assert not fusion.fusion_enabled()


def test_backward_runs_the_pass_only_when_enabled():
    x = Tensor([[1.0, -1.0]], requires_grad=True)
    w = Tensor(np.eye(2, dtype=np.float32), requires_grad=True)

    with fusion.using_fusion(False):
        out = F.linear(x, w).relu().sum()
        out.backward(retain_graph=True)
        assert out._node.inputs[0]._node.op == "relu"

    x.grad = None
    w.grad = None
    with fusion.using_fusion(True):
        out = F.linear(x, w).relu().sum()
        out.backward(retain_graph=True)
        assert out._node.inputs[0]._node.op == "linear_relu"


def test_fusion_applies_inside_nn_modules():
    manual_seed(0)
    model = nn.Sequential(nn.Linear(6, 4), nn.ReLU(), nn.Linear(4, 2), nn.ReLU())
    x = np.random.default_rng(2).standard_normal((3, 6)).astype(np.float32)
    with fusion.using_fusion(True):
        out = model(x)
        loss = out.sum()
        loss.backward()
    assert out._node.op == "linear_relu"
    assert all(p.grad is not None for p in model.parameters())


# --------------------------------------------------------------------------- #
# Structured capture regions: reduction tails
# --------------------------------------------------------------------------- #
@requires_eager_data
def test_captured_reduction_tail_joins_the_region():
    rng = np.random.default_rng(19)
    a = Tensor(rng.standard_normal((4, 8)).astype(np.float32))
    b = Tensor(rng.standard_normal((4, 8)).astype(np.float32))
    from repro.autograd import no_grad

    with no_grad(), ir.capture():
        out = (a * b).sum(axis=-1)
    assert fusion.fuse(out) == {"region": 1}
    assert out._node.op == "region"
    region = out._node.attrs["region"]
    assert region.ops == (("mul", (0, 1)), ("sum", (2,), (1, False)))
    assert not region.is_elementwise


@requires_eager_data
def test_captured_mean_tail_fuses_with_its_epilogue():
    # Tensor.mean lowers to sum + div-by-count: both join one region, the
    # division riding along as a post-reduce elementwise stage.
    rng = np.random.default_rng(20)
    a = Tensor(rng.standard_normal((3, 16)).astype(np.float32))
    b = Tensor(rng.standard_normal((3, 16)).astype(np.float32))
    from repro.autograd import no_grad

    with no_grad(), ir.capture():
        out = (a * b).relu().mean(axis=-1)
    assert fusion.fuse(out) == {"region": 1}
    ops = [op[0] for op in out._node.attrs["region"].ops]
    assert ops == ["mul", "relu", "sum", "div"]


def test_training_sum_is_not_absorbed_into_regions():
    # Training tapes keep their sum nodes: the region backward covers only
    # elementwise programs, and training nodes carry no axis metadata.
    rng = np.random.default_rng(21)
    a = Tensor(rng.standard_normal((4, 8)).astype(np.float32), requires_grad=True)
    b = Tensor(rng.standard_normal((4, 8)).astype(np.float32), requires_grad=True)
    out = (a * b).sum(axis=-1)
    fusion.fuse(out)
    assert out._node.op == "sum"


# --------------------------------------------------------------------------- #
# Multi-consumer regions: duplicated cheap producers
# --------------------------------------------------------------------------- #
@requires_eager_data
def test_fanout_producer_is_duplicated_into_one_region():
    # p feeds two eligible elementwise consumers: instead of refusing the
    # whole chain, the pass recomputes p inside the region and routes its
    # gradient through the external accumulation path.
    x = Tensor([1.0, -2.0, 3.0], requires_grad=True)
    y = Tensor([0.5, 4.0, -1.5], requires_grad=True)
    p = x * y
    out = p.relu() + (-p)
    assert fusion.fuse(out) == {"region": 1}
    assert out._node.op == "region"
    # p's node survives (it owes its own VJP), unlike single-consumer
    # members which are bypassed and freed with the region.
    assert p._node.out is not None


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("codegen", [False, True])
def test_duplicated_producer_gradients_bit_identical(backend, codegen):
    from repro.codegen import using_codegen

    def run(fused: bool):
        rng = np.random.default_rng(23)
        with use_backend(backend):
            x = Tensor(
                rng.standard_normal((5, 7)).astype(np.float32), requires_grad=True
            )
            y = Tensor(
                rng.standard_normal((5, 7)).astype(np.float32), requires_grad=True
            )
            with fusion.using_fusion(fused), using_codegen(codegen):
                p = x * y
                loss = (p.relu() * x + (-p) * y).sum()
                loss.backward()
            return loss.data.copy(), x.grad.copy(), y.grad.copy()

    for want, got in zip(run(False), run(True)):
        np.testing.assert_array_equal(want, got)


@pytest.mark.parametrize("backend", BACKENDS)
def test_self_fanout_square_gradients_bit_identical(backend):
    # mul(p, p): both consumer edges are the same node — the duplication
    # bookkeeping must count it as one fan-out of two uses.
    def run(fused: bool):
        rng = np.random.default_rng(29)
        with use_backend(backend):
            x = Tensor(
                rng.standard_normal((6,)).astype(np.float32), requires_grad=True
            )
            y = Tensor(
                rng.standard_normal((6,)).astype(np.float32), requires_grad=True
            )
            with fusion.using_fusion(fused):
                p = x * y
                loss = ((p * p) + x).sum()
                loss.backward()
            return loss.data.copy(), x.grad.copy(), y.grad.copy()

    for want, got in zip(run(False), run(True)):
        np.testing.assert_array_equal(want, got)


def test_three_way_fanout_is_still_refused():
    # Three consumers would need a three-term gradient accumulation whose
    # grouping differs from eager; the pass must leave the graph alone.
    x = Tensor([1.0, -2.0], requires_grad=True)
    y = Tensor([3.0, 0.5], requires_grad=True)
    p = x * y
    out = p.relu() + (-p) + p * y
    stats = fusion.fuse(out)
    assert p._node.out is not None
    out.backward(np.ones(2, dtype=np.float32))
    # Reference grads from the eager formula.
    relu_mask = (p.data > 0).astype(np.float32)
    dp = relu_mask - 1.0 + y.data
    np.testing.assert_array_equal(x.grad, dp * y.data)


# --------------------------------------------------------------------------- #
# Serving sessions over structured regions
# --------------------------------------------------------------------------- #
class _MeanTailModel(nn.Module):
    """Linear+relu trunk with a fused mean-over-features head."""

    def __init__(self, rng):
        super().__init__()
        self.proj = nn.Linear(8, 6, rng=rng)

    def forward(self, x):
        h = self.proj(x).relu()
        return (h * 2.0 + 1.0).mean(axis=-1)


@pytest.mark.parametrize("codegen", [False, True])
def test_session_with_reduction_tail_matches_eager(codegen):
    from repro.autograd import no_grad
    from repro.codegen import using_codegen
    from repro.serve import compile_inference

    rng = np.random.default_rng(33)
    model = _MeanTailModel(np.random.default_rng(7))
    model.eval()
    x = rng.standard_normal((4, 8)).astype(np.float32)
    with no_grad():
        expected = model(x).data
    with fusion.using_fusion(True), using_codegen(codegen):
        session = compile_inference(model, x)
        assert session.fused_counts.get("region", 0) >= 1
        got = session.run(x)
    assert got.tobytes() == expected.tobytes()
    # Replay respecializes per bucket: a second batch reuses the session.
    x2 = rng.standard_normal((4, 8)).astype(np.float32)
    with no_grad():
        expected2 = model(x2).data
    assert session.run(x2).tobytes() == expected2.tobytes()
