"""Optimizer tests: update math against hand-computed references, convergence."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor


def param(values):
    return nn.Parameter(np.asarray(values, dtype=np.float32))


def with_grad(p, grad):
    p.grad = np.asarray(grad, dtype=np.float32)
    return p


# --------------------------------------------------------------------------- #
# SGD
# --------------------------------------------------------------------------- #
def test_sgd_vanilla_update():
    p = with_grad(param([1.0, 2.0]), [0.5, -1.0])
    nn.optim.SGD([p], lr=0.1).step()
    np.testing.assert_allclose(p.data, [0.95, 2.1], rtol=1e-6)


def test_sgd_momentum_matches_reference():
    p = param([0.0])
    opt = nn.optim.SGD([p], lr=0.1, momentum=0.9)
    v, x = 0.0, 0.0
    for g in [1.0, 1.0, -0.5]:
        with_grad(p, [g])
        opt.step()
        v = 0.9 * v + g
        x -= 0.1 * v
        np.testing.assert_allclose(p.data, [x], rtol=1e-6)


def test_sgd_nesterov_matches_reference():
    p = param([0.0])
    opt = nn.optim.SGD([p], lr=0.1, momentum=0.9, nesterov=True)
    v, x = 0.0, 0.0
    for g in [1.0, -2.0]:
        with_grad(p, [g])
        opt.step()
        v = 0.9 * v + g
        x -= 0.1 * (g + 0.9 * v)
        np.testing.assert_allclose(p.data, [x], rtol=1e-6)


def test_sgd_weight_decay_is_l2():
    p = with_grad(param([2.0]), [0.0])
    nn.optim.SGD([p], lr=0.1, weight_decay=0.5).step()
    np.testing.assert_allclose(p.data, [2.0 - 0.1 * 0.5 * 2.0], rtol=1e-6)


def test_sgd_step_does_not_mutate_grad():
    p = with_grad(param([1.0]), [1.0])
    opt = nn.optim.SGD([p], lr=0.1, momentum=0.9, weight_decay=0.1)
    opt.step()
    np.testing.assert_allclose(p.grad, [1.0])


# --------------------------------------------------------------------------- #
# Adam
# --------------------------------------------------------------------------- #
def test_adam_first_step_is_lr_sized():
    # With bias correction the first step is ~lr * sign(g) regardless of g scale.
    for g in (1e-3, 1.0, 1e3):
        p = with_grad(param([0.0]), [g])
        nn.optim.Adam([p], lr=0.01).step()
        np.testing.assert_allclose(p.data, [-0.01], rtol=1e-4)


def test_adam_matches_reference_formulas():
    beta1, beta2, lr, eps = 0.9, 0.999, 0.05, 1e-8
    p = param([1.0, -2.0])
    opt = nn.optim.Adam([p], lr=lr, betas=(beta1, beta2), eps=eps)
    m = np.zeros(2)
    v = np.zeros(2)
    x = np.array([1.0, -2.0])
    rng = np.random.default_rng(0)
    for t in range(1, 6):
        g = rng.standard_normal(2)
        with_grad(p, g)
        opt.step()
        m = beta1 * m + (1 - beta1) * g
        v = beta2 * v + (1 - beta2) * g**2
        mhat = m / (1 - beta1**t)
        vhat = v / (1 - beta2**t)
        x = x - lr * mhat / (np.sqrt(vhat) + eps)
        np.testing.assert_allclose(p.data, x, rtol=1e-5)


def test_adam_weight_decay():
    p = with_grad(param([2.0]), [0.0])
    nn.optim.Adam([p], lr=0.01, weight_decay=0.5).step()
    assert p.data[0] < 2.0  # decay alone produces a step toward zero


# --------------------------------------------------------------------------- #
# Shared optimizer behavior
# --------------------------------------------------------------------------- #
def test_optimizers_skip_parameters_without_grad():
    p1 = with_grad(param([1.0]), [1.0])
    p2 = param([5.0])  # never received a gradient
    for opt in (nn.optim.SGD([p1, p2], lr=0.1), nn.optim.Adam([p1, p2], lr=0.1)):
        opt.step()
        np.testing.assert_allclose(p2.data, [5.0])


def test_optimizer_zero_grad():
    p = with_grad(param([1.0]), [1.0])
    opt = nn.optim.SGD([p], lr=0.1)
    opt.zero_grad()
    assert p.grad is None


def test_optimizer_deduplicates_shared_parameters():
    p = with_grad(param([0.0]), [1.0])
    opt = nn.optim.SGD([p, p], lr=0.1)
    assert len(opt.params) == 1
    opt.step()
    np.testing.assert_allclose(p.data, [-0.1], rtol=1e-6)


def test_optimizer_skips_frozen_parameters():
    trainable = with_grad(param([1.0]), [1.0])
    frozen = Tensor(np.ones(2))  # requires_grad=False: frozen for fine-tuning
    opt = nn.optim.SGD([trainable, frozen], lr=0.1)
    assert opt.params == [trainable]
    opt.step()
    np.testing.assert_allclose(frozen.data, np.ones(2))


def test_optimizer_with_no_trainable_params_warns_and_noops():
    # Fully-frozen fine-tuning/eval pipelines must not crash: the optimizer
    # degrades to a warned no-op (see also the regression tests in
    # tests/test_backend.py).
    frozen = Tensor(np.ones(2))
    with pytest.warns(UserWarning, match="no trainable"):
        opt = nn.optim.SGD([frozen], lr=0.1)
    opt.step()
    opt.zero_grad()
    np.testing.assert_allclose(frozen.data, np.ones(2))
    with pytest.warns(UserWarning, match="no trainable"):
        nn.optim.Adam([], lr=0.1).step()


def test_optimizer_validates_inputs():
    with pytest.raises(TypeError, match="non-Tensor"):
        nn.optim.SGD([np.ones(2)], lr=0.1)
    with pytest.raises(ValueError, match="nesterov"):
        nn.optim.SGD([param([1.0])], lr=0.1, nesterov=True)
    with pytest.raises(ValueError, match="betas"):
        nn.optim.Adam([param([1.0])], lr=0.1, betas=(1.0, 0.999))


# --------------------------------------------------------------------------- #
# Convergence: both optimizers minimise a quadratic through the tape
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "make_opt",
    [
        lambda ps: nn.optim.SGD(ps, lr=0.1, momentum=0.9),
        lambda ps: nn.optim.Adam(ps, lr=0.2),
    ],
    ids=["sgd", "adam"],
)
def test_optimizer_minimizes_quadratic(make_opt):
    target = np.array([3.0, -1.0, 0.5], dtype=np.float32)
    p = param([0.0, 0.0, 0.0])
    opt = make_opt([p])
    for _ in range(200):
        loss = ((p - Tensor(target)) ** 2.0).sum()
        loss.backward()
        opt.step()
        opt.zero_grad()
    np.testing.assert_allclose(p.data, target, atol=0.05)
