"""Op-level profiler: aggregation, activation scoping, hook bit-equality."""

import numpy as np
import pytest

from repro import nn
from repro.obs.profile import (
    Profiler,
    active_profiler,
    disable_profiler,
    enable_profiler,
    using_profiler,
)
from repro.serve import compile_inference


def _mlp(rng):
    model = nn.Sequential(
        nn.Linear(12, 16, rng=rng),
        nn.ReLU(),
        nn.Linear(16, 5, rng=rng),
    )
    model.eval()
    return model


# --------------------------------------------------------------------------- #
# Profiler object
# --------------------------------------------------------------------------- #
def test_record_aggregates_calls_and_time():
    prof = Profiler()
    prof.record("serve:matmul", 0.010)
    prof.record("serve:matmul", 0.030)
    prof.record("serve:relu", 0.001)
    stats = prof.stats()
    assert stats["serve:matmul"]["calls"] == 2
    assert stats["serve:matmul"]["total_ms"] == pytest.approx(40.0)
    assert stats["serve:matmul"]["mean_us"] == pytest.approx(20000.0)
    assert stats["serve:matmul"]["share"] == pytest.approx(40.0 / 41.0)
    assert len(prof) == 2
    prof.reset()
    assert len(prof) == 0


def test_timed_context_manager_records_once():
    prof = Profiler()
    with prof.timed("block"):
        pass
    assert prof.stats()["block"]["calls"] == 1


def test_table_sorts_and_limits():
    prof = Profiler()
    prof.record("small", 0.001)
    prof.record("big", 1.0)
    table = prof.table()
    lines = table.splitlines()
    assert lines[0].split()[:2] == ["op", "calls"]
    assert lines[2].startswith("big")
    assert "small" in table
    assert "small" not in prof.table(limit=1)
    assert prof.table(sort_by="calls")
    with pytest.raises(ValueError, match="unknown sort column"):
        prof.table(sort_by="nope")
    assert Profiler().table() == "(no ops recorded)"


def test_activation_scoping():
    assert active_profiler() is None
    prof = enable_profiler()
    try:
        assert active_profiler() is prof
    finally:
        disable_profiler()
    assert active_profiler() is None
    with using_profiler() as scoped:
        assert active_profiler() is scoped
        with using_profiler() as inner:  # nests, restoring the outer one
            assert active_profiler() is inner
        assert active_profiler() is scoped
    assert active_profiler() is None


# --------------------------------------------------------------------------- #
# Instrumented paths: compiled serving steps and autograd backward
# --------------------------------------------------------------------------- #
def test_session_run_records_serve_ops_and_stays_bit_identical():
    rng = np.random.default_rng(0)
    model = _mlp(rng)
    session = compile_inference(model, np.zeros((8, 12), np.float32))
    data = rng.standard_normal((8, 12)).astype(np.float32)

    baseline = session.run(data).copy()
    with using_profiler() as prof:
        profiled = session.run(data).copy()
    after = session.run(data).copy()

    np.testing.assert_array_equal(baseline, profiled)
    np.testing.assert_array_equal(baseline, after)
    stats = prof.stats()
    assert stats, "profiler recorded nothing"
    assert all(op.startswith("serve:") for op in stats)
    # Every compiled step was timed exactly once per run.
    assert sum(s["calls"] for s in stats.values()) == session.num_steps


def test_backward_records_backward_ops_and_grads_stay_bit_identical():
    rng = np.random.default_rng(1)
    model = nn.Sequential(nn.Linear(12, 16, rng=rng), nn.ReLU(),
                          nn.Linear(16, 5, rng=rng))
    data = rng.standard_normal((8, 12)).astype(np.float32)

    model(data).sum().backward()
    plain = [p.grad.copy() for p in model.parameters()]
    model.zero_grad()

    with using_profiler() as prof:
        model(data).sum().backward()
    profiled = [p.grad.copy() for p in model.parameters()]

    for a, b in zip(plain, profiled):
        np.testing.assert_array_equal(a, b)
    stats = prof.stats()
    assert stats
    assert all(op.startswith("backward:") for op in stats)
    assert "backward:matmul" in stats or "backward:linear" in stats


def test_repro_profile_env_enables_and_reports(tmp_path):
    # REPRO_PROFILE=1 must install a process profiler at import time and
    # print the per-op table at exit — exercised in a subprocess.
    import subprocess
    import sys

    code = (
        "import numpy as np\n"
        "from repro import nn\n"
        "from repro.obs.profile import active_profiler\n"
        "assert active_profiler() is not None\n"
        "m = nn.Sequential(nn.Linear(4, 3, rng=np.random.default_rng(0)))\n"
        "m(np.zeros((2, 4), np.float32)).sum().backward()\n"
    )
    env = {"REPRO_PROFILE": "1", "PYTHONPATH": "src"}
    import os

    env["PATH"] = os.environ.get("PATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True,
        cwd=os.getcwd(), env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert "[REPRO_PROFILE] per-op profile:" in proc.stderr
    assert "backward:" in proc.stderr
