"""Resilient serving: backpressure, deadlines, probes, stop semantics.

Deterministic failure timing comes from :mod:`repro.serve.faults` latency
injection: a known per-serve service time turns "the worker is busy" into a
schedulable event instead of a race.
"""

import threading
import time
from concurrent.futures import CancelledError

import numpy as np
import pytest

from repro import nn
from repro.autograd import no_grad
from repro.serve import (
    BACKPRESSURE_MODES,
    DeadlineExceeded,
    RetryPolicy,
    Server,
    ServerOverloaded,
    SupervisionPolicy,
    inject_faults,
)


def _model(seed=0):
    rng = np.random.default_rng(seed)
    model = nn.Sequential(
        nn.Linear(6, 8, rng=rng), nn.ReLU(), nn.Linear(8, 3, rng=rng)
    )
    model.eval()
    return model


def _req(rng, n=1):
    return rng.standard_normal((n, 6)).astype(np.float32)


def _eager(model, arr):
    with no_grad():
        return model(arr).data


def _server(model, **kwargs):
    kwargs.setdefault("buckets", (1, 2, 4))
    kwargs.setdefault("max_wait", 0.002)
    return Server(model, np.zeros((1, 6), np.float32), **kwargs)


# --------------------------------------------------------------------------- #
# Policy objects
# --------------------------------------------------------------------------- #
def test_retry_policy_delays_and_transience():
    policy = RetryPolicy(max_retries=3, backoff_base=0.01, backoff_cap=0.03)
    assert policy.delay(0) == pytest.approx(0.01)
    assert policy.delay(1) == pytest.approx(0.02)
    assert policy.delay(2) == pytest.approx(0.03)  # capped
    assert policy.delay(10) == pytest.approx(0.03)
    from repro.serve import TransientError

    assert policy.is_transient(TransientError("x"))
    assert not policy.is_transient(ValueError("x"))
    with pytest.raises(ValueError, match="max_retries"):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError, match="backoff"):
        RetryPolicy(backoff_base=-0.1)


def test_supervision_policy_validation_and_backoff():
    policy = SupervisionPolicy(restart_backoff=0.01, restart_backoff_cap=0.04)
    assert policy.restart_delay(1) == pytest.approx(0.01)
    assert policy.restart_delay(2) == pytest.approx(0.02)
    assert policy.restart_delay(5) == pytest.approx(0.04)  # capped
    with pytest.raises(ValueError, match="watchdog_interval"):
        SupervisionPolicy(watchdog_interval=0.0)
    with pytest.raises(ValueError, match="stuck_timeout"):
        SupervisionPolicy(stuck_timeout=-1.0)
    with pytest.raises(ValueError, match="max_restarts"):
        SupervisionPolicy(max_restarts=-1)


def test_server_rejects_bad_resilience_config():
    model = _model()
    with pytest.raises(ValueError, match="queue_limit"):
        _server(model, queue_limit=0)
    with pytest.raises(ValueError, match="overload"):
        _server(model, overload="panic")
    with pytest.raises(ValueError, match="default_timeout"):
        _server(model, default_timeout=0.0)
    assert "panic" not in BACKPRESSURE_MODES


# --------------------------------------------------------------------------- #
# Backpressure
# --------------------------------------------------------------------------- #
def test_reject_mode_raises_and_keeps_depth_bounded():
    rng = np.random.default_rng(1)
    model = _model()
    with _server(model, queue_limit=2, overload="reject") as server:
        with inject_faults(server, latency=0.25):
            first = server.submit(_req(rng))
            time.sleep(0.05)  # first is collected and being served
            queued = [server.submit(_req(rng)) for _ in range(2)]
            with pytest.raises(ServerOverloaded, match="queue is full"):
                server.submit(_req(rng))
            stats = server.stats()
            assert stats["queue_depth"] <= 2
            assert stats["requests_rejected"] == 1
            for future in [first] + queued:
                assert future.result(timeout=5).shape == (1, 3)
    assert server.stats()["requests_rejected"] == 1


def test_shed_oldest_cancels_stalest_and_keeps_depth_bounded():
    rng = np.random.default_rng(2)
    model = _model()
    with _server(model, queue_limit=2, overload="shed_oldest") as server:
        with inject_faults(server, latency=0.25):
            first = server.submit(_req(rng))
            time.sleep(0.05)
            q1 = server.submit(_req(rng))
            q2 = server.submit(_req(rng))
            q3 = server.submit(_req(rng))  # sheds q1, the stalest
            assert server.stats()["queue_depth"] <= 2
            assert q1.cancelled()
            with pytest.raises(CancelledError):
                q1.result(timeout=1)
            for future in (first, q2, q3):
                assert future.result(timeout=5).shape == (1, 3)
            stats = server.stats()
            assert stats["requests_shed"] == 1
            assert stats["requests_rejected"] == 0


def test_block_mode_waits_for_space():
    rng = np.random.default_rng(3)
    model = _model()
    with _server(model, queue_limit=1, overload="block") as server:
        with inject_faults(server, latency=0.15):
            first = server.submit(_req(rng))
            time.sleep(0.05)
            queued = server.submit(_req(rng))  # fills the queue
            results = {}

            def blocked_submit():
                results["future"] = server.submit(_req(rng))

            thread = threading.Thread(target=blocked_submit)
            thread.start()
            thread.join(timeout=0.02)
            assert thread.is_alive()  # blocked: no space yet
            assert server.stats()["queue_depth"] <= 1
            thread.join(timeout=5)
            assert not thread.is_alive()
            for future in (first, queued, results["future"]):
                assert future.result(timeout=5).shape == (1, 3)


def test_block_mode_honors_deadline_synchronously():
    rng = np.random.default_rng(4)
    model = _model()
    with _server(model, queue_limit=1, overload="block") as server:
        with inject_faults(server, latency=0.3):
            first = server.submit(_req(rng))
            time.sleep(0.05)
            queued = server.submit(_req(rng))
            start = time.monotonic()
            with pytest.raises(DeadlineExceeded, match="queue space"):
                server.submit(_req(rng), timeout=0.05)
            assert 0.04 <= time.monotonic() - start < 0.25
            assert server.stats()["requests_expired"] == 1
            for future in (first, queued):
                assert future.result(timeout=5).shape == (1, 3)


# --------------------------------------------------------------------------- #
# Deadlines
# --------------------------------------------------------------------------- #
def test_queued_request_expires_with_deadline_exceeded():
    rng = np.random.default_rng(5)
    model = _model()
    supervision = SupervisionPolicy(watchdog_interval=0.01)
    with _server(model, supervision=supervision) as server:
        with inject_faults(server, latency=0.3):
            first = server.submit(_req(rng))
            time.sleep(0.05)
            doomed = server.submit(_req(rng), timeout=0.05)
            with pytest.raises(DeadlineExceeded, match="expired"):
                doomed.result(timeout=5)
            assert first.result(timeout=5).shape == (1, 3)
        stats = server.stats()
    assert stats["requests_expired"] == 1
    assert stats["requests_completed"] == 1


def test_server_default_timeout_applies_without_explicit_timeout():
    rng = np.random.default_rng(6)
    model = _model()
    with _server(model, default_timeout=0.05) as server:
        with inject_faults(server, latency=0.3):
            first = server.submit(_req(rng))
            time.sleep(0.05)
            doomed = server.submit(_req(rng))  # inherits default_timeout
            with pytest.raises(DeadlineExceeded):
                doomed.result(timeout=5)
            assert first.result(timeout=5).shape == (1, 3)
    assert server.stats()["requests_expired"] == 1


def test_submit_rejects_nonpositive_timeout():
    model = _model()
    with _server(model) as server:
        with pytest.raises(ValueError, match="timeout"):
            server.submit(np.zeros((1, 6), np.float32), timeout=0.0)


def test_unexpired_requests_are_served_normally_with_deadlines():
    rng = np.random.default_rng(7)
    model = _model()
    with _server(model, default_timeout=5.0) as server:
        data = _req(rng, 3)
        out = server.submit(data, timeout=5.0).result(timeout=5)
        assert out.shape == (3, 3)
    assert server.stats()["requests_expired"] == 0


# --------------------------------------------------------------------------- #
# Probes and stop semantics
# --------------------------------------------------------------------------- #
def test_health_and_ready_probes_across_lifecycle():
    model = _model()
    server = _server(model, workers=2)
    assert not server.ready()
    health = server.health()
    assert not health["started"] and health["workers_alive"] == 0
    server.start()
    assert server.ready()
    health = server.health()
    assert health["ready"] and health["workers_alive"] == 2
    assert health["workers_configured"] == 2
    assert health["worker_crashes"] == 0 and health["worker_restarts"] == 0
    server.stop()
    assert not server.ready()
    assert server.health()["stopping"]


def test_stop_timeout_bounds_shutdown_with_a_wedged_worker():
    # A worker wedged mid-serve must not hang stop(): the timeout expires,
    # stop returns, and the wedged batch still resolves when it finishes.
    rng = np.random.default_rng(8)
    model = _model()
    server = _server(model, supervise=False)
    server.start()
    with inject_faults(server, latency=0.5):
        future = server.submit(_req(rng))
        time.sleep(0.05)  # collected, now sleeping inside serve
        start = time.monotonic()
        server.stop(drain=True, timeout=0.1)
        assert time.monotonic() - start < 0.45
        assert future.result(timeout=5).shape == (1, 3)


def test_stop_drain_with_all_workers_dead_fails_queue_instead_of_hanging():
    # Satellite bugfix: stop(drain=True) after every worker died used to
    # strand the queued futures forever.
    from repro.serve import WorkerKill  # noqa: F401  (documents the path)

    rng = np.random.default_rng(9)
    model = _model()
    server = _server(model, supervise=False)
    server.start()
    with inject_faults(server, kill_on={1}):
        future = server.submit(_req(rng))
        time.sleep(0.1)  # the only worker is dead; the request re-queued
        assert server.health()["workers_alive"] == 0
        start = time.monotonic()
        server.stop(drain=True, timeout=2.0)
        assert time.monotonic() - start < 2.5
    with pytest.raises(RuntimeError, match="unserved"):
        future.result(timeout=1)


def test_stopped_server_still_reports_stats():
    rng = np.random.default_rng(10)
    model = _model()
    with _server(model) as server:
        data = _req(rng, 2)
        np.testing.assert_array_equal(
            server(data), _eager(model, data)
        )
    stats = server.stats()
    assert stats["requests_completed"] == 1
    for key in (
        "latency_ms_p99",
        "requests_rejected",
        "requests_shed",
        "requests_expired",
        "requests_failed",
        "batches_retried",
        "worker_restarts",
        "workers_alive",
    ):
        assert key in stats


def test_tbnet_serve_passes_resilience_knobs_through():
    from repro.models import TBNet, make_synthetic_batch
    from repro.nn.init import manual_seed

    manual_seed(11)
    model = TBNet(width=8)
    with model.serve(
        buckets=(1, 2), queue_limit=8, overload="reject", default_timeout=5.0
    ) as server:
        assert server.ready()
        images, context, _ = make_synthetic_batch(3, rng=np.random.default_rng(12))
        got = server(images.data, context.data)
        # Bucket decomposition (2+1) reassociates BLAS reductions, so the
        # whole request agrees with one eager forward only to tolerance.
        np.testing.assert_allclose(
            got, model.infer(images.data, context.data), rtol=1e-4, atol=1e-5
        )
        assert server.stats()["requests_rejected"] == 0
    manual_seed(13)
    bad = TBNet(width=8)
    with pytest.raises(ValueError, match="overload"):
        bad.serve(buckets=(1,), overload="bogus")
