"""Tests for the finite-difference checking utilities themselves."""

import numpy as np

from repro.autograd import Tensor, check_gradients, numerical_gradient


def test_numerical_gradient_of_quadratic():
    x = np.array([[1.0, -2.0], [0.5, 3.0]])
    grad = numerical_gradient(lambda a: float((a ** 2).sum()), x)
    np.testing.assert_allclose(grad, 2 * x, rtol=1e-7)


def test_numerical_gradient_is_float64_and_nonmutating():
    x = np.array([1.0, 2.0], dtype=np.float32)
    original = x.copy()
    grad = numerical_gradient(lambda a: float((a ** 3).sum()), x)
    assert grad.dtype == np.float64
    np.testing.assert_array_equal(x, original)


def test_check_gradients_passes_on_correct_graph():
    x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True, dtype=np.float64)
    result = check_gradients(lambda a: (a * a).sum(), [x])
    assert result.ok
    assert result.entries[0]["passed"]
    assert bool(result)


def test_check_gradients_detects_wrong_gradient():
    """detach() silently drops half the gradient; the checker must notice."""
    x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True, dtype=np.float64)
    result = check_gradients(lambda a: (a * a.detach()).sum(), [x])
    assert not result.ok


def test_check_gradients_skips_non_grad_inputs():
    x = Tensor(np.array([1.0, 2.0]), requires_grad=True, dtype=np.float64)
    c = Tensor(np.array([3.0, 4.0]), dtype=np.float64)
    result = check_gradients(lambda a, b: (a * b).sum(), [x, c])
    assert result.ok
    assert [e["input"] for e in result.entries] == [0]


def test_check_gradients_seed_grad_weights_the_objective():
    x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True, dtype=np.float64)
    seed = np.array([2.0, 0.0, -1.0])
    result = check_gradients(lambda a: a * a, [x], seed_grad=seed)
    assert result.ok
    np.testing.assert_allclose(x.grad, 2 * x.data * seed)
    with np.testing.assert_raises(ValueError):
        check_gradients(lambda a: a * a, [x], seed_grad=np.ones(5))


def test_check_gradients_restores_input_data():
    data = np.array([1.0, 2.0])
    x = Tensor(data, requires_grad=True, dtype=np.float64)
    before = x.data.copy()
    check_gradients(lambda a: (a ** 2.0).sum(), [x])
    np.testing.assert_array_equal(x.data, before)
