"""Shared test configuration: a per-test hang watchdog.

The serving suite exercises queues, worker threads, and shutdown races; a
regression there can deadlock instead of failing.  CI installs
``pytest-timeout`` and every run passes ``--timeout`` (see ci.yml), but the
tier-1 command must also be hang-proof on bare environments where
``pytest-timeout`` is not installed — so this conftest arms a
``faulthandler``-based watchdog per test: if a single test exceeds
``REPRO_TEST_TIMEOUT`` seconds (default 300), every thread's traceback is
dumped and the process exits non-zero, failing the run in minutes instead
of hanging it for hours.

When ``pytest-timeout`` is importable it owns the job (richer reporting,
per-test markers) and the fallback stays disarmed.
"""

import faulthandler
import os

import pytest

try:
    import pytest_timeout  # noqa: F401

    _HAVE_PYTEST_TIMEOUT = True
except ImportError:
    _HAVE_PYTEST_TIMEOUT = False

_TIMEOUT = float(os.environ.get("REPRO_TEST_TIMEOUT", "300"))


if not _HAVE_PYTEST_TIMEOUT and _TIMEOUT > 0:

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_protocol(item, nextitem):
        # exit=True: a wedged test cannot be un-wedged from a signal-safe
        # handler, so dump every thread's stack and kill the process —
        # the CI job (and the tier-1 gate) then fails fast and loud.
        faulthandler.dump_traceback_later(_TIMEOUT, exit=True)
        try:
            yield
        finally:
            faulthandler.cancel_dump_traceback_later()
