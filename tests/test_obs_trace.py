"""Request tracing: span ring semantics and Chrome trace-event export."""

import json
import time

import pytest

from repro.obs.trace import Tracer


def test_trace_ids_are_unique_and_rising():
    tracer = Tracer()
    ids = [tracer.new_trace() for _ in range(5)]
    assert ids == sorted(ids)
    assert len(set(ids)) == 5
    assert all(i > 0 for i in ids)  # 0 is the "tracing off" sentinel


def test_record_and_filter_by_trace():
    tracer = Tracer()
    a, b = tracer.new_trace(), tracer.new_trace()
    tracer.record(a, "queue_wait", 1.0, 2.0)
    tracer.record(b, "queue_wait", 1.5, 2.5)
    tracer.record(a, "serve", 2.0, 3.0, attempt=0)
    assert len(tracer) == 3
    mine = tracer.spans(a)
    assert [s.name for s in mine] == ["queue_wait", "serve"]
    assert mine[1].args == {"attempt": 0}
    assert mine[0].duration == pytest.approx(1.0)


def test_ring_is_bounded_and_keeps_most_recent():
    tracer = Tracer(capacity=10)
    tid = tracer.new_trace()
    for i in range(25):
        tracer.record(tid, f"s{i}", float(i), float(i) + 0.5)
    assert len(tracer) == 10
    names = [s.name for s in tracer.spans()]
    assert names == [f"s{i}" for i in range(15, 25)]
    with pytest.raises(ValueError, match=">= 1"):
        Tracer(capacity=0)


def test_record_many_matches_record_and_respects_the_ring():
    tracer = Tracer(capacity=4)
    a, b = tracer.new_trace(), tracer.new_trace()
    tracer.record_many([
        (a, "queue_wait", 1.0, 2.0, None),
        (a, "serve", 2.0, 3.0, {"attempt": 0}),
        (b, "queue_wait", 1.5, 2.5, None),
    ])
    spans = tracer.spans(a)
    assert [s.name for s in spans] == ["queue_wait", "serve"]
    assert spans[1].args == {"attempt": 0}
    assert spans[0].args == {}  # None args read back as an empty dict
    assert all(s.thread for s in tracer.spans())
    # A batch larger than the remaining capacity still keeps the newest.
    tracer.record_many([(b, f"s{i}", float(i), float(i) + 1, None)
                        for i in range(6)])
    assert [s.name for s in tracer.spans()] == ["s2", "s3", "s4", "s5"]


def test_span_context_manager_times_the_block():
    tracer = Tracer()
    tid = tracer.new_trace()
    with tracer.span(tid, "work", detail="x"):
        time.sleep(0.002)
    (span,) = tracer.spans(tid)
    assert span.name == "work"
    assert span.args == {"detail": "x"}
    assert span.duration >= 0.002


def test_clear_empties_the_ring():
    tracer = Tracer()
    tracer.record(tracer.new_trace(), "s", 0.0, 1.0)
    tracer.clear()
    assert len(tracer) == 0


def test_chrome_trace_is_valid_trace_event_json():
    tracer = Tracer()
    tid = tracer.new_trace()
    tracer.record(tid, "queue_wait", 10.0, 10.001)
    tracer.record(tid, "serve", 10.001, 10.005, attempt=0)

    doc = json.loads(json.dumps(tracer.chrome_trace()))  # round-trips
    events = doc["traceEvents"]
    assert len(events) == 2
    for event in events:
        # The complete-event shape chrome://tracing / Perfetto expect.
        assert event["ph"] == "X"
        assert set(event) >= {"name", "ph", "ts", "dur", "pid", "tid", "args"}
        assert event["dur"] >= 0
        assert event["args"]["trace_id"] == tid
    assert events[0]["name"] == "queue_wait"
    # Seconds -> microseconds.
    assert events[0]["dur"] == pytest.approx(1000.0)
    assert events[1]["dur"] == pytest.approx(4000.0)
    assert events[1]["args"]["attempt"] == 0
