"""Kernel tests: forward references against naive loops, gradient checks."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.autograd import functional as F

RNG = np.random.default_rng(7)


def t64(shape, requires_grad=True, scale=1.0):
    return Tensor(RNG.standard_normal(shape) * scale, requires_grad=requires_grad, dtype=np.float64)


# --------------------------------------------------------------------------- #
# Naive references (loops are fine here: tests only)
# --------------------------------------------------------------------------- #
def conv2d_ref(x, w, b, stride, padding):
    sh, sw = (stride, stride) if isinstance(stride, int) else stride
    ph, pw = (padding, padding) if isinstance(padding, int) else padding
    n, c, h, wd = x.shape
    o, _, kh, kw = w.shape
    xp = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (wd + 2 * pw - kw) // sw + 1
    out = np.zeros((n, o, oh, ow), dtype=x.dtype)
    for ni in range(n):
        for oi in range(o):
            for yi in range(oh):
                for xi in range(ow):
                    patch = xp[ni, :, yi * sh : yi * sh + kh, xi * sw : xi * sw + kw]
                    out[ni, oi, yi, xi] = (patch * w[oi]).sum()
            if b is not None:
                out[ni, oi] += b[oi]
    return out


def pool_ref(x, k, stride, padding, mode):
    kh, kw = (k, k) if isinstance(k, int) else k
    sh, sw = (kh, kw) if stride is None else ((stride, stride) if isinstance(stride, int) else stride)
    ph, pw = (padding, padding) if isinstance(padding, int) else padding
    fill = -np.inf if mode == "max" else 0.0
    xp = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)), constant_values=fill)
    n, c, h, w = x.shape
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    out = np.zeros((n, c, oh, ow), dtype=x.dtype)
    for ni in range(n):
        for ci in range(c):
            for yi in range(oh):
                for xi in range(ow):
                    window = xp[ni, ci, yi * sh : yi * sh + kh, xi * sw : xi * sw + kw]
                    out[ni, ci, yi, xi] = window.max() if mode == "max" else window.mean()
    return out


# --------------------------------------------------------------------------- #
# im2col / col2im
# --------------------------------------------------------------------------- #
def test_im2col_col2im_are_adjoint():
    """<im2col(x), C> == <x, col2im(C)> for random C (the defining property)."""
    x = RNG.standard_normal((2, 3, 7, 6))
    for kernel, stride, padding in [((3, 3), 1, 0), ((2, 3), (2, 1), (1, 0)), (2, 2, 1)]:
        cols = F.im2col(x, kernel, stride, padding)
        c = RNG.standard_normal(cols.shape)
        lhs = float((cols * c).sum())
        rhs = float((x * F.col2im(c, x.shape, kernel, stride, padding)).sum())
        assert abs(lhs - rhs) < 1e-8 * max(1.0, abs(lhs))


def test_im2col_shape():
    x = RNG.standard_normal((2, 3, 8, 8))
    cols = F.im2col(x, 3, stride=2, padding=1)
    assert cols.shape == (2, 4, 4, 3 * 3 * 3)


# --------------------------------------------------------------------------- #
# conv2d
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "stride,padding", [(1, 0), (1, 1), (2, 0), (2, 1), ((2, 1), (1, 2)), (3, 2)]
)
def test_conv2d_forward_matches_reference(stride, padding):
    x = RNG.standard_normal((2, 3, 8, 9))
    w = RNG.standard_normal((4, 3, 3, 3)) * 0.2
    b = RNG.standard_normal(4) * 0.1
    out = F.conv2d(Tensor(x, dtype=np.float64), Tensor(w, dtype=np.float64),
                   Tensor(b, dtype=np.float64), stride=stride, padding=padding)
    np.testing.assert_allclose(out.data, conv2d_ref(x, w, b, stride, padding), rtol=1e-10, atol=1e-10)


@pytest.mark.parametrize("stride,padding,bias", [(1, 0, True), (2, 1, True), (1, 1, False)])
def test_conv2d_gradients(stride, padding, bias):
    x = t64((2, 3, 6, 6))
    w = t64((4, 3, 3, 3), scale=0.2)
    inputs = [x, w] + ([t64((4,), scale=0.1)] if bias else [])

    def fn(*args):
        return (F.conv2d(*args, stride=stride, padding=padding) ** 2.0).sum()

    result = check_gradients(fn, inputs)
    assert result.ok, result


def test_conv2d_rejects_bad_shapes():
    with pytest.raises(ValueError):
        F.conv2d(Tensor(np.zeros((2, 3, 8, 8))), Tensor(np.zeros((4, 5, 3, 3))))
    with pytest.raises(ValueError):
        F.conv2d(Tensor(np.zeros((2, 3, 8))), Tensor(np.zeros((4, 3, 3, 3))))
    with pytest.raises(ValueError):
        F.conv2d(Tensor(np.zeros((2, 3, 2, 2))), Tensor(np.zeros((4, 3, 3, 3))))


# --------------------------------------------------------------------------- #
# Pooling
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("mode", ["max", "avg"])
@pytest.mark.parametrize("kernel,stride,padding", [(2, None, 0), (3, 2, 0), (2, 1, 0), (3, 2, 1)])
def test_pool_forward_matches_reference(mode, kernel, stride, padding):
    x = RNG.standard_normal((2, 3, 7, 8))
    op = F.max_pool2d if mode == "max" else F.avg_pool2d
    out = op(Tensor(x, dtype=np.float64), kernel, stride=stride, padding=padding)
    np.testing.assert_allclose(out.data, pool_ref(x, kernel, stride, padding, mode), rtol=1e-10, atol=1e-12)


@pytest.mark.parametrize("mode", ["max", "avg"])
@pytest.mark.parametrize("kernel,stride", [(2, None), (3, 2), (2, 1)])
def test_pool_gradients(mode, kernel, stride):
    op = F.max_pool2d if mode == "max" else F.avg_pool2d
    x = t64((2, 2, 6, 6))
    result = check_gradients(lambda t: (op(t, kernel, stride=stride) ** 2.0).sum(), [x])
    assert result.ok, result


def test_pool_rejects_padding_over_half_kernel():
    x = Tensor(np.ones((1, 1, 4, 4)))
    for op in (F.max_pool2d, F.avg_pool2d):
        with pytest.raises(ValueError, match="half the kernel"):
            op(x, 1, padding=1)
        with pytest.raises(ValueError, match="half the kernel"):
            op(x, 2, stride=1, padding=2)


def test_max_pool_overlapping_routes_to_argmax():
    x = np.zeros((1, 1, 3, 3), dtype=np.float32)
    x[0, 0, 1, 1] = 5.0  # the centre wins every overlapping 2x2 window
    t = Tensor(x, requires_grad=True)
    out = F.max_pool2d(t, 2, stride=1)
    out.sum().backward()
    assert t.grad[0, 0, 1, 1] == 4.0  # centre is argmax of all four windows
    assert t.grad.sum() == 4.0


# --------------------------------------------------------------------------- #
# Softmax family
# --------------------------------------------------------------------------- #
def test_softmax_matches_reference_and_is_stable():
    x = RNG.standard_normal((4, 6)) * 3
    s = F.softmax(Tensor(x, dtype=np.float64)).data
    e = np.exp(x - x.max(axis=-1, keepdims=True))
    np.testing.assert_allclose(s, e / e.sum(axis=-1, keepdims=True), rtol=1e-12)
    np.testing.assert_allclose(s.sum(axis=-1), 1.0, rtol=1e-12)
    huge = F.softmax(Tensor(np.array([[1e4, 1e4 + 1.0]]), dtype=np.float64)).data
    assert np.isfinite(huge).all()
    big_neg = F.log_softmax(Tensor(np.array([[-1e4, 0.0]]), dtype=np.float64)).data
    assert np.isfinite(big_neg).all()


def test_log_softmax_is_log_of_softmax():
    x = Tensor(RNG.standard_normal((5, 7)), dtype=np.float64)
    np.testing.assert_allclose(F.log_softmax(x).data, np.log(F.softmax(x).data), rtol=1e-10)


@pytest.mark.parametrize("axis", [-1, 0, 1])
def test_softmax_gradients(axis):
    x = t64((4, 5))
    m = Tensor(RNG.standard_normal((4, 5)), dtype=np.float64)
    assert check_gradients(lambda t: (F.softmax(t, axis=axis) * m).sum(), [x]).ok
    assert check_gradients(lambda t: (F.log_softmax(t, axis=axis) * m).sum(), [x]).ok


# --------------------------------------------------------------------------- #
# Cross-entropy
# --------------------------------------------------------------------------- #
def test_cross_entropy_matches_composed_ops():
    logits = RNG.standard_normal((6, 9))
    targets = RNG.integers(0, 9, 6)
    fused = F.softmax_cross_entropy(Tensor(logits, dtype=np.float64), targets)
    logp = F.log_softmax(Tensor(logits, dtype=np.float64)).data
    expected = -logp[np.arange(6), targets].mean()
    np.testing.assert_allclose(float(fused.data), expected, rtol=1e-12)
    total = F.softmax_cross_entropy(Tensor(logits, dtype=np.float64), targets, reduction="sum")
    np.testing.assert_allclose(float(total.data), expected * 6, rtol=1e-12)
    none = F.softmax_cross_entropy(Tensor(logits, dtype=np.float64), targets, reduction="none")
    np.testing.assert_allclose(none.data, -logp[np.arange(6), targets], rtol=1e-12)


@pytest.mark.parametrize("reduction", ["mean", "sum", "none"])
def test_cross_entropy_gradients(reduction):
    logits = t64((5, 8))
    targets = RNG.integers(0, 8, 5)

    def fn(t):
        out = F.softmax_cross_entropy(t, targets, reduction=reduction)
        return out if reduction != "none" else (out * out).sum()

    result = check_gradients(fn, [logits])
    assert result.ok, result


def test_cross_entropy_validates_inputs():
    with pytest.raises(ValueError):
        F.softmax_cross_entropy(Tensor(np.zeros((4, 3))), np.zeros(5, dtype=np.int64))
    with pytest.raises(ValueError):
        F.softmax_cross_entropy(Tensor(np.zeros((4, 3))), np.zeros(4), reduction="bogus")


def test_cross_entropy_accepts_tensor_targets():
    logits = Tensor(RNG.standard_normal((4, 3)), requires_grad=True)
    targets = Tensor(np.array([0, 1, 2, 1]))
    loss = F.softmax_cross_entropy(logits, targets)
    loss.backward()
    assert logits.grad.shape == (4, 3)
    np.testing.assert_allclose(logits.grad.sum(axis=1), 0.0, atol=1e-6)


# --------------------------------------------------------------------------- #
# Fused linear
# --------------------------------------------------------------------------- #
def test_linear_matches_matmul_add():
    x, w, b = t64((6, 5)), t64((5, 4)), t64((4,))
    np.testing.assert_allclose(F.linear(x, w, b).data, x.data @ w.data + b.data, rtol=1e-12)
    assert check_gradients(lambda x, w, b: (F.linear(x, w, b) ** 2.0).sum(), [x, w, b]).ok
    assert check_gradients(lambda x, w: (F.linear(x, w) ** 2.0).sum(), [x, w]).ok


def test_linear_batched_input():
    x, w, b = t64((2, 6, 5)), t64((5, 4)), t64((4,))
    assert check_gradients(lambda x, w, b: (F.linear(x, w, b) ** 2.0).sum(), [x, w, b]).ok


def test_linear_rejects_1d_input():
    with pytest.raises(ValueError, match="1-D input"):
        F.linear(Tensor(np.ones(5)), Tensor(np.ones((5, 4))))


def test_bias_shape_is_validated():
    # Broadcastable-but-wrong bias shapes would otherwise get grads whose
    # shape mismatches their data.
    with pytest.raises(ValueError, match="bias"):
        F.linear(Tensor(np.ones((2, 5))), Tensor(np.ones((5, 4))), Tensor(np.ones((1, 4))))
    with pytest.raises(ValueError, match="bias"):
        F.conv2d(Tensor(np.ones((1, 2, 5, 5))), Tensor(np.ones((3, 2, 3, 3))), Tensor(np.ones((1, 3))))


# --------------------------------------------------------------------------- #
# bias=None end-to-end (regression: no-bias path must build a 2-parent node)
# --------------------------------------------------------------------------- #
def test_linear_no_bias_gradients():
    x, w = t64((6, 5)), t64((5, 4))
    out = F.linear(x, w, None)
    np.testing.assert_allclose(out.data, x.data @ w.data, rtol=1e-12)
    assert len(out._prev) == 2
    assert check_gradients(lambda x, w: F.linear(x, w, None), [x, w]).ok


def test_conv2d_no_bias_gradients():
    x, w = t64((2, 3, 5, 5)), t64((4, 3, 3, 3), scale=0.5)
    assert check_gradients(lambda x, w: F.conv2d(x, w, None, padding=1), [x, w]).ok


# --------------------------------------------------------------------------- #
# batch_norm
# --------------------------------------------------------------------------- #
def batch_norm_ref(x, w, b, mean, var, eps):
    bshape = (1, x.shape[1]) + (1,) * (x.ndim - 2)
    out = (x - mean.reshape(bshape)) / np.sqrt(var.reshape(bshape) + eps)
    if w is not None:
        out = out * w.reshape(bshape)
    if b is not None:
        out = out + b.reshape(bshape)
    return out


def test_batch_norm_train_forward_matches_reference():
    x = t64((4, 3, 5, 5))
    w, b = t64((3,)), t64((3,))
    axes = (0, 2, 3)
    expected = batch_norm_ref(
        x.data, w.data, b.data, x.data.mean(axis=axes), x.data.var(axis=axes), 1e-5
    )
    np.testing.assert_allclose(F.batch_norm(x, w, b, training=True).data, expected, rtol=1e-10)


def test_batch_norm_eval_uses_running_stats():
    x = t64((4, 3, 5, 5))
    rm = RNG.standard_normal(3)
    rv = RNG.random(3) + 0.5
    out = F.batch_norm(x, None, None, rm, rv, training=False)
    np.testing.assert_allclose(out.data, batch_norm_ref(x.data, None, None, rm, rv, 1e-5), rtol=1e-10)


@pytest.mark.parametrize("shape", [(4, 3, 5, 5), (8, 6)])
@pytest.mark.parametrize("affine", [True, False])
def test_batch_norm_train_gradients(shape, affine):
    x = t64(shape)
    if affine:
        w, b = t64((shape[1],)), t64((shape[1],))
        assert check_gradients(lambda x, w, b: F.batch_norm(x, w, b, training=True), [x, w, b]).ok
    else:
        assert check_gradients(lambda x: F.batch_norm(x, training=True), [x]).ok


def test_batch_norm_eval_gradients():
    x, w, b = t64((4, 3, 4, 4)), t64((3,)), t64((3,))
    rm = RNG.standard_normal(3)
    rv = RNG.random(3) + 0.5
    assert check_gradients(
        lambda x, w, b: F.batch_norm(x, w, b, rm, rv, training=False), [x, w, b]
    ).ok


def test_batch_norm_running_stats_ema():
    rng = np.random.default_rng(3)
    x = rng.standard_normal((16, 3, 4, 4))
    rm, rv = np.zeros(3), np.ones(3)
    F.batch_norm(Tensor(x, dtype=np.float64), running_mean=rm, running_var=rv, training=True, momentum=0.1)
    m = x.size // 3
    np.testing.assert_allclose(rm, 0.1 * x.mean(axis=(0, 2, 3)), rtol=1e-6)
    np.testing.assert_allclose(rv, 0.9 + 0.1 * x.var(axis=(0, 2, 3)) * m / (m - 1), rtol=1e-6)


def test_batch_norm_eval_never_touches_running_stats():
    x = t64((4, 3, 4, 4))
    rm, rv = np.zeros(3), np.ones(3)
    F.batch_norm(x, running_mean=rm, running_var=rv, training=False)
    assert np.array_equal(rm, np.zeros(3)) and np.array_equal(rv, np.ones(3))


def test_batch_norm_validates_shapes():
    with pytest.raises(ValueError, match="weight"):
        F.batch_norm(Tensor(np.ones((2, 3))), Tensor(np.ones(4)))
    with pytest.raises(ValueError, match=r"\(N, C"):
        F.batch_norm(Tensor(np.ones(5)))


# --------------------------------------------------------------------------- #
# dropout
# --------------------------------------------------------------------------- #
def test_dropout_train_gradients():
    x = t64((6, 7))
    # Recreate the generator inside fn so every evaluation sees the same mask.
    assert check_gradients(
        lambda x: F.dropout(x, p=0.4, training=True, rng=np.random.default_rng(42)), [x]
    ).ok


def test_dropout_inverted_scaling():
    x = Tensor(np.ones((1000, 10)))
    out = F.dropout(x, p=0.3, training=True, rng=np.random.default_rng(0))
    kept = out.data != 0
    np.testing.assert_allclose(out.data[kept], 1.0 / 0.7, rtol=1e-6)
    assert abs(kept.mean() - 0.7) < 0.03  # keep rate ~ 1-p


def test_dropout_eval_and_p0_are_identity():
    x = t64((4, 5))
    assert F.dropout(x, p=0.5, training=False) is x
    assert F.dropout(x, p=0.0, training=True) is x


def test_dropout_p1_zeroes_everything():
    x = t64((4, 5))
    out = F.dropout(x, p=1.0, training=True)
    assert np.array_equal(out.data, np.zeros_like(x.data))
    out.sum().backward()
    assert np.array_equal(x.grad, np.zeros_like(x.data))


def test_dropout_validates_p():
    with pytest.raises(ValueError, match="probability"):
        F.dropout(Tensor(np.ones(3)), p=1.5)


# --------------------------------------------------------------------------- #
# Training-loop smoke: kernels + engine converge together
# --------------------------------------------------------------------------- #
def test_small_convnet_training_step_reduces_loss():
    rng = np.random.default_rng(0)
    x_np = rng.standard_normal((8, 1, 8, 8)).astype(np.float32)
    y_np = rng.integers(0, 3, 8)
    w1 = Tensor(rng.standard_normal((4, 1, 3, 3)).astype(np.float32) * 0.3, requires_grad=True)
    b1 = Tensor(np.zeros(4, dtype=np.float32), requires_grad=True)
    w2 = Tensor(rng.standard_normal((4 * 4 * 4, 3)).astype(np.float32) * 0.1, requires_grad=True)
    params = [w1, b1, w2]

    def loss_value():
        h = F.conv2d(Tensor(x_np), w1, b1, padding=1).relu()
        h = F.max_pool2d(h, 2)
        return F.softmax_cross_entropy(F.linear(h.flatten(), w2), y_np)

    first = None
    for _ in range(30):
        loss = loss_value()
        loss.backward()
        if first is None:
            first = float(loss.data)
        for p in params:
            p.data -= 0.1 * p.grad
            p.zero_grad()
    assert float(loss.data) < first * 0.7
