"""Serving tests: compiled replay fidelity, rejection rules, micro-batching."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, functional as F, no_grad
from repro.backend import use_backend
from repro.models import TBNet, make_synthetic_batch
from repro.nn.init import manual_seed
from repro.serve import InferenceSession, compile_inference, serve_batches

BACKENDS = ("numpy", "fused")


def _mlp(rng):
    return nn.Sequential(
        nn.Linear(12, 16, rng=rng),
        nn.BatchNorm1d(16),
        nn.ReLU(),
        nn.Dropout(0.5, rng=rng),
        nn.Linear(16, 5, rng=rng),
    )


def _warm_stats(model, rng):
    """A couple of training steps so running statistics are non-trivial."""
    for _ in range(3):
        x = rng.standard_normal((32, 12)).astype(np.float32)
        model(x).sum().backward()
        model.zero_grad()


# --------------------------------------------------------------------------- #
# Replay fidelity
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("fuse", [False, True])
def test_session_is_bit_equal_to_eager_no_grad(backend, fuse):
    rng = np.random.default_rng(0)
    with use_backend(backend):
        model = _mlp(rng)
        _warm_stats(model, rng)
        model.eval()
        example = rng.standard_normal((8, 12)).astype(np.float32)
        session = compile_inference(model, example, fuse=fuse)
        for _ in range(3):  # buffer reuse must not corrupt later calls
            batch = rng.standard_normal((8, 12)).astype(np.float32)
            with no_grad():
                expected = model(batch).data
            np.testing.assert_array_equal(session.run(batch), expected)


@pytest.mark.parametrize("batch", [1, 3, 16])
def test_tbnet_session_is_bit_equal_across_batch_sizes(batch):
    # Batch 1 is the shape that exposed a BLAS operand-layout mismatch in
    # the conv emitter (C-contiguous weight copy vs tensordot's F view).
    manual_seed(21)
    model = TBNet(width=8)
    session = model.compile_serving(batch_size=batch)
    images, context, _ = make_synthetic_batch(batch, rng=np.random.default_rng(batch))
    np.testing.assert_array_equal(
        session.run(images, context), model.infer(images, context)
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_tbnet_session_is_bit_equal_to_eager(backend):
    with use_backend(backend):
        manual_seed(3)
        model = TBNet(width=8)
        opt = nn.optim.Adam(model.parameters(), lr=1e-3)
        images, context, targets = make_synthetic_batch(16, rng=np.random.default_rng(1))
        for _ in range(2):  # move running stats off their init values
            model.train_step(opt, images, context, targets)
        model.eval()
        session = compile_inference(model, (images, context))
        assert session.fused_counts  # the two-branch trace has fusable chains
        expected = model.infer(images, context)
        np.testing.assert_array_equal(session.run(images, context), expected)
        # Fresh inputs through the same reused buffers.
        images2, context2, _ = make_synthetic_batch(16, rng=np.random.default_rng(9))
        np.testing.assert_array_equal(
            session.run(images2, context2), model.infer(images2, context2)
        )


class _ScaleShiftRelu(nn.Module):
    """An elementwise tail the fusion pass extracts as one region."""

    def __init__(self, rng):
        super().__init__()
        self.lin = nn.Linear(12, 8, rng=rng)
        self.scale = nn.Parameter(Tensor(np.full((8,), 1.5, np.float32)))
        self.shift = nn.Parameter(Tensor(np.full((8,), -0.25, np.float32)))

    def forward(self, x):
        h = self.lin(x)
        return (h * self.scale + self.shift).relu()


@pytest.mark.parametrize("backend", BACKENDS)
def test_session_emits_region_kernel_and_stays_bit_equal(backend):
    rng = np.random.default_rng(9)
    with use_backend(backend):
        model = _ScaleShiftRelu(rng).eval()
        x = rng.standard_normal((8, 12)).astype(np.float32)
        session = compile_inference(model, x)
        assert session.fused_counts.get("region") == 1
        assert session.op_counts.get("region") == 1
        for _ in range(3):
            batch = rng.standard_normal((8, 12)).astype(np.float32)
            with no_grad():
                expected = model(batch).data
            np.testing.assert_array_equal(session.run(batch), expected)


def test_parameters_are_bound_by_reference():
    rng = np.random.default_rng(4)
    model = nn.Sequential(nn.Linear(6, 3, rng=rng))
    model.eval()
    x = rng.standard_normal((4, 6)).astype(np.float32)
    session = compile_inference(model, x)
    before = session.run(x).copy()
    model[0].weight.data += 1.0  # in-place fine-tune; no recompile
    after = session.run(x)
    with no_grad():
        np.testing.assert_array_equal(after, model(x).data)
    assert not np.array_equal(before, after)


def test_batch_norm_statistics_are_frozen_at_compile():
    # The trace snapshots eval batch-norm statistics; later in-place updates
    # of the module's running buffers (more fine-tuning) must not leak into
    # a compiled session — mean and inv_std must stay a consistent pair
    # until recompile.
    rng = np.random.default_rng(16)
    model = nn.Sequential(nn.Linear(4, 4, rng=rng), nn.BatchNorm1d(4))
    _warm = rng.standard_normal((16, 4)).astype(np.float32)
    model(_warm).sum().backward()
    model.zero_grad()
    model.eval()
    x = rng.standard_normal((8, 4)).astype(np.float32)
    session = compile_inference(model, x)
    frozen = session.run(x).copy()
    model[1].running_mean += 100.0  # in-place stat mutation after compile
    np.testing.assert_array_equal(session.run(x), frozen)
    # Recompiling picks the new statistics up.
    recompiled = compile_inference(model, x)
    with no_grad():
        np.testing.assert_array_equal(recompiled.run(x), model(x).data)


def test_region_sessions_compile_per_trace_shapes():
    # The fusion plan cache is keyed on tape *structure*, not shapes, so a
    # second compile at a new batch size key-matches the first trace's plan
    # — whose recorded RegionIR carries the first trace's shapes.  The
    # emitter must respecialize to the live trace before compiling
    # (regression: every run() of the second session raised a region input
    # shape mismatch).
    class Scale(nn.Module):
        def __init__(self):
            super().__init__()
            self.w = Tensor(np.full((8,), 2.0, np.float32), requires_grad=True)

        def forward(self, x):
            return (x * self.w + x).relu()

    model = Scale()
    model.eval()

    def batch(n):
        return np.arange(n * 8, dtype=np.float32).reshape(n, 8) - 16.0

    sessions = [(n, compile_inference(model, batch(n))) for n in (8, 4, 1, 8)]
    for n, session in sessions:
        x = batch(n)
        expected = np.maximum(x * 2.0 + x, 0.0)
        assert session.run(x).tobytes() == expected.tobytes()


def test_output_buffer_is_reused_across_calls():
    rng = np.random.default_rng(5)
    model = nn.Sequential(nn.Linear(4, 2, rng=rng), nn.ReLU())
    model.eval()
    x = rng.standard_normal((3, 4)).astype(np.float32)
    session = compile_inference(model, x)
    first = session.run(x)
    second = session.run(rng.standard_normal((3, 4)).astype(np.float32))
    assert first is second  # same buffer: copy it to keep it


def test_compile_accepts_tensor_and_array_examples():
    rng = np.random.default_rng(6)
    model = nn.Sequential(nn.Linear(4, 2, rng=rng))
    model.eval()
    x = rng.standard_normal((2, 4)).astype(np.float32)
    np.testing.assert_array_equal(
        compile_inference(model, Tensor(x)).run(x),
        compile_inference(model, x).run(Tensor(x)),
    )


def test_tbnet_compile_serving_roundtrip():
    manual_seed(8)
    model = TBNet(width=8)
    session = model.compile_serving(batch_size=4)
    assert isinstance(session, InferenceSession)
    assert not model.training  # compile_serving switches to eval
    images, context, _ = make_synthetic_batch(4, rng=np.random.default_rng(2))
    np.testing.assert_array_equal(
        session.run(images, context), model.infer(images, context)
    )


# --------------------------------------------------------------------------- #
# Rejection rules
# --------------------------------------------------------------------------- #
def test_loss_session_binds_new_labels():
    # A compiled trace containing softmax_cross_entropy must score the
    # labels passed to run(), not the example batch's labels.
    class LossModel(nn.Module):
        def __init__(self, rng):
            super().__init__()
            self.linear = nn.Linear(6, 4, rng=rng)

        def forward(self, x, labels):
            return F.softmax_cross_entropy(self.linear(x), labels, reduction="none")

    rng = np.random.default_rng(15)
    model = LossModel(rng)
    model.eval()
    x = rng.standard_normal((5, 6)).astype(np.float32)
    labels = Tensor(np.zeros(5, dtype=np.int64), dtype=np.int64)
    session = compile_inference(model, (x, labels))

    new_labels = np.array([3, 1, 2, 0, 1], dtype=np.int64)
    got = session.run(x, new_labels)
    with no_grad():
        expected = model(x, Tensor(new_labels, dtype=np.int64)).data
    np.testing.assert_array_equal(got, expected)
    assert not np.array_equal(got, session.run(x, labels))  # labels matter


def test_train_mode_model_is_rejected():
    model = _mlp(np.random.default_rng(0))
    x = np.zeros((4, 12), dtype=np.float32)
    with pytest.raises(ValueError, match="eval mode"):
        compile_inference(model, x)
    model.eval()
    model[1].train()  # one stray submodule is enough
    with pytest.raises(ValueError, match="train mode"):
        compile_inference(model, x)


def test_train_mode_functional_nodes_are_rejected():
    class SneakyDropout(nn.Module):
        def forward(self, x):
            return F.dropout(x, p=0.5, training=True)  # ignores module mode

    model = SneakyDropout()
    model.eval()
    with pytest.raises(ValueError, match="dropout"):
        compile_inference(model, np.zeros((4, 3), dtype=np.float32))

    class SneakyBatchNorm(nn.Module):
        def forward(self, x):
            return F.batch_norm(x, training=True)

    model = SneakyBatchNorm()
    model.eval()
    with pytest.raises(ValueError, match="train-mode batch_norm"):
        compile_inference(model, np.zeros((4, 3), dtype=np.float32))


def test_shape_and_arity_mismatches_raise():
    rng = np.random.default_rng(7)
    model = nn.Sequential(nn.Linear(6, 2, rng=rng))
    model.eval()
    session = compile_inference(model, rng.standard_normal((8, 6)).astype(np.float32))
    with pytest.raises(ValueError, match="compiled for"):
        session.run(np.zeros((4, 6), dtype=np.float32))  # wrong batch
    with pytest.raises(ValueError, match="compiled for"):
        session.run(np.zeros((8, 5), dtype=np.float32))  # wrong features
    with pytest.raises(ValueError, match="input"):
        session.run()  # wrong arity


def test_non_module_model_is_rejected():
    with pytest.raises(TypeError, match="Module"):
        compile_inference(lambda x: x, np.zeros((1, 2), dtype=np.float32))


# --------------------------------------------------------------------------- #
# Micro-batching
# --------------------------------------------------------------------------- #
def test_serve_batches_chunks_and_pads():
    manual_seed(11)
    model = TBNet(width=8)
    model.eval()
    images, context, _ = make_synthetic_batch(8, rng=np.random.default_rng(3))
    session = compile_inference(model, (images, context))

    n = 21  # 2 full chunks of 8 + a partial chunk of 5
    big_i, big_c, _ = make_synthetic_batch(n, rng=np.random.default_rng(4))
    out = serve_batches(session, (big_i, big_c))
    assert out.shape == (n, model.num_classes)

    for start in (0, 8):
        chunk = session.run(
            big_i.data[start : start + 8], big_c.data[start : start + 8]
        )
        np.testing.assert_array_equal(out[start : start + 8], chunk)
    # The odd-sized tail is served by the eager forward of those 5 samples.
    np.testing.assert_array_equal(
        out[16:], model.infer(big_i.data[16:], big_c.data[16:])
    )


def test_serve_batches_partial_chunk_is_exact_for_cross_sample_traces():
    # Eval batch-norm *without* running statistics normalizes with the
    # micro-batch's own statistics: a zero-padded replay of the final
    # partial chunk would corrupt the real rows, so that chunk must run
    # through the model's eager forward instead.
    rng = np.random.default_rng(12)
    model = nn.Sequential(
        nn.Linear(4, 4, rng=rng), nn.BatchNorm1d(4, track_running_stats=False)
    )
    model.eval()
    example = rng.standard_normal((4, 4)).astype(np.float32)
    session = compile_inference(model, example)
    assert session.has_batch_statistics
    data = rng.standard_normal((6, 4)).astype(np.float32)
    out = serve_batches(session, data)
    np.testing.assert_array_equal(out[:4], session.run(data[:4]))
    with no_grad():
        tail = model(data[4:]).data  # stats over exactly the 2 real rows
    np.testing.assert_array_equal(out[4:], tail)


def test_serve_batches_eager_tail_rejects_retrained_models():
    rng = np.random.default_rng(14)
    model = nn.Sequential(nn.Linear(4, 2, rng=rng))
    model.eval()
    session = compile_inference(model, rng.standard_normal((4, 4)).astype(np.float32))
    model.train()  # user flipped the model back after compiling
    with pytest.raises(RuntimeError, match="train mode"):
        serve_batches(session, rng.standard_normal((5, 4)).astype(np.float32))
    # Whole chunks never touch the eager path and keep working.
    assert serve_batches(session, rng.standard_normal((4, 4)).astype(np.float32)).shape == (4, 2)


def test_serve_batches_refuses_reduced_outputs():
    class MeanHead(nn.Module):
        def forward(self, x):
            return Tensor._wrap(x).sum(axis=0)  # couples the whole batch

    model = MeanHead()
    model.eval()
    session = compile_inference(model, np.zeros((4, 3), dtype=np.float32))
    with pytest.raises(ValueError, match="per-sample"):
        serve_batches(session, np.zeros((8, 3), dtype=np.float32))


def test_non_builtin_backend_replays_through_its_own_methods():
    from repro.backend import set_backend
    from repro.backend.numpy_backend import NumpyBackend

    class ShiftedLinear(NumpyBackend):
        """A third-party backend whose linear adds 1 — the session must
        dispatch through it, not through the raw-numpy fast path."""
        name = "shifted"

        def linear(self, x, w, b):
            out = np.matmul(x, w) + 1.0
            if b is not None:
                out += b
            return out

    rng = np.random.default_rng(13)
    model = nn.Sequential(nn.Linear(5, 3, rng=rng), nn.ReLU())
    model.eval()
    x = rng.standard_normal((4, 5)).astype(np.float32)
    previous = set_backend("numpy")
    try:
        set_backend(ShiftedLinear())
        session = compile_inference(model, x, fuse=False)
        with no_grad():
            expected = model(x).data
        np.testing.assert_array_equal(session.run(x), expected)
        set_backend("numpy")
        plain = compile_inference(model, x, fuse=False).run(x)
        assert not np.array_equal(plain, expected)  # the override mattered
    finally:
        set_backend(previous)


def test_serve_batches_validates_inputs():
    rng = np.random.default_rng(9)
    model = nn.Sequential(nn.Linear(4, 2, rng=rng))
    model.eval()
    session = compile_inference(model, rng.standard_normal((8, 4)).astype(np.float32))
    out = serve_batches(session, rng.standard_normal((3, 4)).astype(np.float32))
    assert out.shape == (3, 2)  # single partial chunk works
    assert serve_batches(session, np.zeros((0, 4), dtype=np.float32)).shape == (0, 2)
    with pytest.raises(ValueError, match="per-sample shape"):
        serve_batches(session, np.zeros((5, 3), dtype=np.float32))
    with pytest.raises(ValueError, match="out has shape"):
        serve_batches(
            session,
            np.zeros((5, 4), dtype=np.float32),
            out=np.zeros((4, 2), dtype=np.float32),
        )
    with pytest.raises(ValueError, match="out has dtype"):
        serve_batches(
            session,
            np.zeros((5, 4), dtype=np.float32),
            out=np.zeros((5, 2), dtype=np.int64),  # would silently truncate
        )


def test_detach_in_the_forward_is_replayed_not_frozen():
    # detach() stops gradients, not data flow: a captured trace records it
    # as an identity node, so serving recomputes the detached branch from
    # each new batch instead of freezing the example activations.
    class DetachMix(nn.Module):
        def __init__(self, rng):
            super().__init__()
            self.lin = nn.Linear(8, 3, rng=rng)

        def forward(self, x):
            h = self.lin(x)
            return h + h.detach()

    rng = np.random.default_rng(19)
    model = DetachMix(rng)
    model.eval()
    session = compile_inference(model, rng.standard_normal((3, 8)).astype(np.float32))
    new = rng.standard_normal((3, 8)).astype(np.float32)
    with no_grad():
        expected = model(new).data
    np.testing.assert_array_equal(session.run(new), expected)


def test_compile_rejects_rewrapped_activations():
    # Re-wrapping intermediate data in a fresh Tensor escapes the tape; the
    # compiler must refuse rather than silently freeze the example batch.
    class Rewrap(nn.Module):
        def __init__(self, rng):
            super().__init__()
            self.lin = nn.Linear(4, 4, rng=rng)

        def forward(self, x):
            h = self.lin(x)
            return Tensor._wrap(x) + Tensor(h.data)  # escapes the trace

    model = Rewrap(np.random.default_rng(20))
    model.eval()
    with pytest.raises(ValueError, match="aliasing a batch-dependent"):
        compile_inference(model, np.zeros((2, 4), dtype=np.float32))


def test_compile_rejects_rewrapped_inputs():
    class RewrapInput(nn.Module):
        def __init__(self, rng):
            super().__init__()
            self.lin = nn.Linear(4, 2, rng=rng)

        def forward(self, x):
            return self.lin(Tensor(x.data))  # freezes the example input

    model = RewrapInput(np.random.default_rng(21))
    model.eval()
    with pytest.raises(ValueError, match="batch-dependent"):
        compile_inference(model, np.zeros((2, 4), dtype=np.float32))


def test_compile_rejects_constant_labels():
    frozen = np.array([0, 1, 0], dtype=np.int64)

    class LossWithBakedLabels(nn.Module):
        def __init__(self, rng):
            super().__init__()
            self.lin = nn.Linear(4, 2, rng=rng)

        def forward(self, x):
            # Plain-array labels become a trace constant: every replay would
            # silently score these, so compile must refuse.
            return F.softmax_cross_entropy(self.lin(x), frozen, reduction="none")

    model = LossWithBakedLabels(np.random.default_rng(22))
    model.eval()
    with pytest.raises(ValueError, match="targets are a constant"):
        compile_inference(model, np.zeros((3, 4), dtype=np.float32))


def test_compile_rejects_array_indexed_gathers():
    # An ndarray getitem index is frozen into the trace, and whether it was
    # computed from the batch is undecidable (argsort results don't alias
    # their source) — compile refuses instead of silently replaying the
    # example batch's gather pattern.
    class SortByFirst(nn.Module):
        def forward(self, x):
            x = Tensor._wrap(x)
            return x[np.argsort(x.data[:, 0])]

    model = SortByFirst()
    model.eval()
    with pytest.raises(ValueError, match="ndarray index"):
        compile_inference(model, np.zeros((4, 3), dtype=np.float32))

    class StaticSlice(nn.Module):
        def forward(self, x):
            return Tensor._wrap(x)[:, 1:3]  # static slices stay compilable

    model = StaticSlice()
    model.eval()
    x = np.random.default_rng(23).standard_normal((4, 5)).astype(np.float32)
    np.testing.assert_array_equal(
        compile_inference(model, x).run(x), x[:, 1:3]
    )


def test_compile_rejects_ops_without_an_evaluator():
    from repro.autograd.tensor import Tensor as T

    class CustomOp(nn.Module):
        def forward(self, x):
            x = T._wrap(x)
            # A custom op recorded straight onto the tape with no registered
            # forward evaluator: compile must fail fast, not run() later.
            return T._make(
                x.data * 2.0, (x,), "my_custom_double", lambda out: (lambda: None)
            )

    model = CustomOp()
    model.eval()
    with pytest.raises(ValueError, match="my_custom_double"):
        compile_inference(model, np.zeros((2, 3), dtype=np.float32))


# --------------------------------------------------------------------------- #
# Dtype contract
# --------------------------------------------------------------------------- #
def test_run_rejects_dtype_mismatched_inputs():
    # A silent cast abandoned the pre-allocated buffers' bit-equality
    # contract; dtype is part of the compiled signature, like shape.
    rng = np.random.default_rng(24)
    model = nn.Sequential(nn.Linear(4, 2, rng=rng))
    model.eval()
    session = compile_inference(model, rng.standard_normal((4, 4)).astype(np.float32))
    with pytest.raises(ValueError, match="dtype"):
        session.run(rng.standard_normal((4, 4)))  # float64 into f32 session
    # The float64-compiled direction: a float32 batch must be rejected too.
    session64 = compile_inference(
        model, Tensor(rng.standard_normal((4, 4)), dtype=np.float64)
    )
    assert session64.input_dtypes == [np.dtype(np.float64)]
    with pytest.raises(ValueError, match="dtype"):
        session64.run(rng.standard_normal((4, 4)).astype(np.float32))
    out = session64.run(rng.standard_normal((4, 4)))
    assert out.dtype == np.float64


def test_serve_batches_rejects_dtype_mismatched_inputs():
    rng = np.random.default_rng(25)
    model = nn.Sequential(nn.Linear(4, 2, rng=rng))
    model.eval()
    session = compile_inference(model, rng.standard_normal((8, 4)).astype(np.float32))
    with pytest.raises(ValueError, match="dtype"):
        serve_batches(session, rng.standard_normal((5, 4)))  # f64 stream
    with pytest.raises(ValueError, match="dtype"):
        serve_batches(session, rng.standard_normal((8, 4)))  # full chunk too


def test_compile_preserves_ndarray_example_dtype():
    # A float64 ndarray example used to be folded to the Tensor float32
    # default, silently compiling a session of the wrong dtype.
    rng = np.random.default_rng(26)
    model = nn.Sequential(nn.Linear(4, 3, rng=rng))
    model.eval()
    example = rng.standard_normal((2, 4))  # float64 ndarray
    session = compile_inference(model, example)
    assert session.input_dtypes == [np.dtype(np.float64)]
    assert session.output_dtype == np.float64
    batch = rng.standard_normal((2, 4))
    with no_grad():
        expected = model(Tensor(batch, dtype=np.float64)).data
    np.testing.assert_array_equal(session.run(batch), expected)


def test_serve_batches_zero_sample_stream_is_pinned():
    # An empty stream yields an empty (0, ...) result of the output dtype
    # without touching the session or the eager path — pinned behavior,
    # not an accident of the chunk loop.
    rng = np.random.default_rng(27)
    model = nn.Sequential(nn.Linear(4, 2, rng=rng))
    model.eval()
    session = compile_inference(model, rng.standard_normal((8, 4)).astype(np.float32))
    model.train()  # would make any eager-tail touch raise
    out = serve_batches(session, np.zeros((0, 4), dtype=np.float32))
    assert out.shape == (0, 2)
    assert out.dtype == session.output_dtype
    model.eval()
