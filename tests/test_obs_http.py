"""The observability HTTP edge: /metrics, /health, /ready, /traces.json."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.http import METRICS_CONTENT_TYPE, ObsHTTPServer
from repro.obs.metrics import Registry
from repro.obs.trace import Tracer


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read().decode()


@pytest.fixture()
def edge():
    registry = Registry()
    registry.counter("edge_requests_total", "Requests.").inc(5)
    tracer = Tracer()
    tracer.record(tracer.new_trace(), "serve", 1.0, 2.0)
    state = {"ready": True}
    server = ObsHTTPServer(
        registry=registry,
        tracer=tracer,
        health_fn=lambda: {"alive": True, "workers": 2},
        ready_fn=lambda: state["ready"],
    )
    server.state = state
    with server:
        yield server


def test_metrics_route_serves_prometheus_text(edge):
    status, ctype, body = _get(edge.url + "/metrics")
    assert status == 200
    assert ctype == METRICS_CONTENT_TYPE
    assert "# TYPE edge_requests_total counter" in body
    assert "edge_requests_total 5" in body
    assert body.endswith("\n")


def test_health_route_serves_probe_json(edge):
    status, ctype, body = _get(edge.url + "/health")
    assert status == 200
    assert ctype.startswith("application/json")
    assert json.loads(body) == {"alive": True, "workers": 2}


def test_ready_route_flips_to_503(edge):
    status, _, body = _get(edge.url + "/ready")
    assert status == 200 and json.loads(body) == {"ready": True}
    edge.state["ready"] = False
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(edge.url + "/ready")
    assert excinfo.value.code == 503
    assert json.loads(excinfo.value.read().decode()) == {"ready": False}


def test_traces_route_serves_chrome_trace_json(edge):
    status, _, body = _get(edge.url + "/traces.json")
    assert status == 200
    doc = json.loads(body)
    assert len(doc["traceEvents"]) == 1
    assert doc["traceEvents"][0]["ph"] == "X"


def test_unknown_route_404s_with_route_list(edge):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(edge.url + "/nope")
    assert excinfo.value.code == 404
    payload = json.loads(excinfo.value.read().decode())
    assert "/metrics" in payload["routes"]


def test_missing_tracer_404s():
    with ObsHTTPServer(registry=Registry()) as edge:
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(edge.url + "/traces.json")
        assert excinfo.value.code == 404


def test_broken_probe_is_a_500_not_a_crash():
    def broken():
        raise RuntimeError("probe exploded")

    with ObsHTTPServer(registry=Registry(), health_fn=broken) as edge:
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(edge.url + "/health")
        assert excinfo.value.code == 500
        assert "probe exploded" in excinfo.value.read().decode()
        # The edge survived; other routes still answer.
        status, _, _ = _get(edge.url + "/metrics")
        assert status == 200


def test_stop_is_idempotent_and_releases_the_port():
    edge = ObsHTTPServer(registry=Registry()).start()
    port = edge.port
    assert port > 0
    edge.stop()
    edge.stop()  # idempotent
    with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
        _get(f"http://127.0.0.1:{port}/metrics")
