"""Backend registry, cross-backend equivalence, and bugfix regression tests.

The equivalence tests are the contract the registry exists for: every kernel
(forward *and* backward) and every optimizer update must produce the same
numbers under the ``fused`` backend as under the ``numpy`` reference, to
tolerances tight enough that the only admissible differences are last-ulp
reassociation effects.
"""

import subprocess
import sys
import warnings

import numpy as np
import pytest

from repro import backend, nn
from repro.autograd import Tensor, functional as F
from repro.backend import (
    FusedNumpyBackend,
    NumpyBackend,
    available_backends,
    get_backend,
    register_backend,
    set_backend,
    use_backend,
)

RTOL, ATOL = 1e-5, 1e-6


@pytest.fixture(autouse=True)
def _restore_active_backend():
    previous = get_backend()
    yield
    set_backend(previous)


# --------------------------------------------------------------------------- #
# Registry mechanics
# --------------------------------------------------------------------------- #
def test_builtin_backends_are_registered():
    names = available_backends()
    assert "numpy" in names and "fused" in names


def test_set_backend_by_name_and_instance():
    fused = set_backend("fused")
    assert isinstance(fused, FusedNumpyBackend)
    assert get_backend() is fused
    ref = NumpyBackend()
    assert set_backend(ref) is ref
    assert get_backend() is ref


def test_set_backend_unknown_name_raises():
    with pytest.raises(KeyError, match="unknown backend"):
        set_backend("tpu")


def test_use_backend_restores_previous():
    set_backend("numpy")
    with use_backend("fused") as active:
        assert active.name == "fused"
        assert get_backend() is active
    assert get_backend().name == "numpy"


def test_use_backend_restores_on_exception():
    set_backend("numpy")
    with pytest.raises(RuntimeError, match="boom"):
        with use_backend("fused"):
            assert get_backend().name == "fused"
            raise RuntimeError("boom")
    assert get_backend().name == "numpy"


def test_use_backend_nests():
    set_backend("numpy")
    with use_backend("fused"):
        with use_backend("numpy"):
            assert get_backend().name == "numpy"
        assert get_backend().name == "fused"
    assert get_backend().name == "numpy"


def test_register_backend_rejects_duplicates_and_accepts_overwrite():
    class Custom(NumpyBackend):
        name = "custom-test-backend"

    first = register_backend(Custom())
    try:
        with pytest.raises(ValueError, match="already registered"):
            register_backend(Custom())
        second = register_backend(Custom(), overwrite=True)
        assert set_backend("custom-test-backend") is second is not first
        # A registered subclass runs the full kernel stack.
        out = F.linear(Tensor(np.ones((2, 3), dtype=np.float32)),
                       Tensor(np.ones((3, 4), dtype=np.float32)))
        np.testing.assert_allclose(out.data, 3.0)
    finally:
        backend.registry._REGISTRY.pop("custom-test-backend", None)


def test_repro_backend_env_var_selects_default():
    import os
    from pathlib import Path

    root = Path(__file__).resolve().parent.parent
    code = "import repro.backend as b; print(b.get_backend().name)"

    def run(value):
        env = dict(os.environ, PYTHONPATH=str(root / "src"), REPRO_BACKEND=value)
        return subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, env=env
        )

    for name in ("numpy", "fused"):
        proc = run(name)
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == name
    proc = run("nope")
    assert proc.returncode != 0 and "REPRO_BACKEND" in proc.stderr
    # Lazy resolution: a third-party backend registered after import is
    # selectable through the env var (import itself must not validate).
    plugin = (
        "import repro.backend as b\n"
        "class My(b.NumpyBackend):\n"
        "    name = 'myaccel'\n"
        "b.register_backend(My())\n"
        "print(b.get_backend().name)\n"
    )
    env = dict(os.environ, PYTHONPATH=str(root / "src"), REPRO_BACKEND="myaccel")
    proc = subprocess.run(
        [sys.executable, "-c", plugin], capture_output=True, text=True, env=env
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "myaccel"


# --------------------------------------------------------------------------- #
# Cross-backend equivalence: kernels
# --------------------------------------------------------------------------- #
def run_on_backends(build, n_inputs, shapes, seed=0, grad_dtype=np.float32):
    """Run ``build(*tensors) -> Tensor`` under each backend; return results.

    Inputs are identical float32 arrays; backward is seeded with ones.
    Returns ``{backend_name: (out_data, [input_grads])}``.
    """
    rng = np.random.default_rng(seed)
    arrays = [rng.standard_normal(s).astype(np.float32) for s in shapes[:n_inputs]]
    results = {}
    for name in ("numpy", "fused"):
        with use_backend(name):
            tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
            out = build(*tensors)
            seed_grad = None if out.data.size == 1 else np.ones_like(out.data)
            out.backward(seed_grad)
            results[name] = (out.data.copy(), [t.grad.copy() for t in tensors])
    return results


def assert_equivalent(results):
    ref_out, ref_grads = results["numpy"]
    fused_out, fused_grads = results["fused"]
    np.testing.assert_allclose(fused_out, ref_out, rtol=RTOL, atol=ATOL)
    assert len(ref_grads) == len(fused_grads)
    for rg, fg in zip(ref_grads, fused_grads):
        np.testing.assert_allclose(fg, rg, rtol=RTOL, atol=ATOL)


KERNEL_CASES = {
    "linear": (lambda x, w, b: F.linear(x, w, b), 3, [(8, 5), (5, 7), (7,)]),
    "linear_no_bias": (lambda x, w: F.linear(x, w), 2, [(8, 5), (5, 7)]),
    "conv2d": (
        lambda x, w, b: F.conv2d(x, w, b, stride=2, padding=1),
        3,
        [(2, 3, 9, 9), (4, 3, 3, 3), (4,)],
    ),
    "max_pool2d": (lambda x: F.max_pool2d(x, 2), 1, [(2, 3, 8, 8)]),
    "avg_pool2d": (lambda x: F.avg_pool2d(x, 3, stride=2, padding=1), 1, [(2, 3, 9, 9)]),
    "softmax": (lambda x: F.softmax(x), 1, [(6, 10)]),
    "log_softmax": (lambda x: F.log_softmax(x), 1, [(6, 10)]),
    "xent_mean": (
        lambda x: F.softmax_cross_entropy(x, np.arange(6) % 4),
        1,
        [(6, 4)],
    ),
    "xent_sum": (
        lambda x: F.softmax_cross_entropy(x, np.arange(6) % 4, reduction="sum"),
        1,
        [(6, 4)],
    ),
    "xent_none": (
        lambda x: F.softmax_cross_entropy(x, np.arange(6) % 4, reduction="none"),
        1,
        [(6, 4)],
    ),
    "batch_norm_train": (
        lambda x, w, b: F.batch_norm(x, w, b, training=True),
        3,
        [(6, 4), (4,), (4,)],
    ),
    "batch_norm_train_2d": (
        lambda x: F.batch_norm(x, training=True),
        1,
        [(3, 4, 5, 5)],
    ),
    "sigmoid": (lambda x: x.sigmoid(), 1, [(7, 9)]),
    "tanh": (lambda x: x.tanh(), 1, [(7, 9)]),
    "exp_log_chain": (lambda x: ((x * x + 1.0).log().exp()).sum(), 1, [(5, 6)]),
    "matmul": (lambda a, b: (a @ b).sum(), 2, [(6, 4), (4, 3)]),
    "div_pow": (lambda a, b: (a / (b * b + 1.0) + a ** 3.0).sum(), 2, [(5, 5), (5, 5)]),
    "reductions": (lambda x: (x.max(axis=1) + x.mean(axis=0) + x.sum(axis=(0, 1))), 1, [(6, 6)]),
}


@pytest.mark.parametrize("case", sorted(KERNEL_CASES), ids=sorted(KERNEL_CASES))
def test_kernel_equivalence_across_backends(case):
    build, n_inputs, shapes = KERNEL_CASES[case]
    assert_equivalent(run_on_backends(build, n_inputs, shapes))


def test_batch_norm_eval_equivalence_and_running_stats():
    rng = np.random.default_rng(3)
    x = rng.standard_normal((8, 5)).astype(np.float32)
    results = {}
    for name in ("numpy", "fused"):
        rm = np.zeros(5, dtype=np.float32)
        rv = np.ones(5, dtype=np.float32)
        with use_backend(name):
            t = Tensor(x.copy(), requires_grad=True)
            # Training pass updates the running stats in place ...
            F.batch_norm(t, running_mean=rm, running_var=rv, training=True)
            # ... eval pass consumes them.
            out = F.batch_norm(t, running_mean=rm, running_var=rv, training=False)
            out.backward(np.ones_like(out.data))
            results[name] = (out.data.copy(), rm.copy(), rv.copy(), t.grad.copy())
    for ref, fused in zip(results["numpy"], results["fused"]):
        np.testing.assert_allclose(fused, ref, rtol=RTOL, atol=ATOL)


def test_dropout_equivalence_with_shared_seed():
    x = np.random.default_rng(4).standard_normal((16, 16)).astype(np.float32)
    results = {}
    for name in ("numpy", "fused"):
        with use_backend(name):
            t = Tensor(x.copy(), requires_grad=True)
            out = F.dropout(t, p=0.4, training=True, rng=np.random.default_rng(99))
            out.backward(np.ones_like(out.data))
            results[name] = (out.data.copy(), t.grad.copy())
    np.testing.assert_array_equal(results["fused"][0], results["numpy"][0])
    np.testing.assert_array_equal(results["fused"][1], results["numpy"][1])


# --------------------------------------------------------------------------- #
# Cross-backend equivalence: optimizers and a whole training run
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "make_opt",
    [
        lambda ps: nn.optim.SGD(ps, lr=0.05),
        lambda ps: nn.optim.SGD(ps, lr=0.05, momentum=0.9, weight_decay=0.01),
        lambda ps: nn.optim.SGD(ps, lr=0.05, momentum=0.9, nesterov=True),
        lambda ps: nn.optim.SGD(ps, lr=0.05, momentum=0.9, weight_decay=0.01, nesterov=True),
        lambda ps: nn.optim.Adam(ps, lr=0.01),
        lambda ps: nn.optim.Adam(ps, lr=0.01, weight_decay=0.01),
    ],
    ids=["sgd", "sgd_mom_wd", "sgd_nesterov", "sgd_nesterov_wd", "adam", "adam_wd"],
)
def test_optimizer_equivalence_across_backends(make_opt):
    rng = np.random.default_rng(7)
    init = rng.standard_normal((4, 3)).astype(np.float32)
    grads = [rng.standard_normal((4, 3)).astype(np.float32) for _ in range(5)]
    finals = {}
    for name in ("numpy", "fused"):
        with use_backend(name):
            p = nn.Parameter(init.copy())
            opt = make_opt([p])
            for g in grads:
                p.grad = g.copy()
                opt.step()
            finals[name] = p.data.copy()
    np.testing.assert_allclose(finals["fused"], finals["numpy"], rtol=RTOL, atol=ATOL)


def test_optimizer_step_never_mutates_grad_on_either_backend():
    for name in ("numpy", "fused"):
        with use_backend(name):
            p = nn.Parameter(np.ones(3, dtype=np.float32))
            g = np.full(3, 0.5, dtype=np.float32)
            p.grad = g
            nn.optim.SGD([p], lr=0.1, momentum=0.9, weight_decay=0.1, nesterov=True).step()
            np.testing.assert_array_equal(g, np.full(3, 0.5, dtype=np.float32))
            p2 = nn.Parameter(np.ones(3, dtype=np.float32))
            p2.grad = g
            nn.optim.Adam([p2], lr=0.1, weight_decay=0.1).step()
            np.testing.assert_array_equal(g, np.full(3, 0.5, dtype=np.float32))


def test_full_training_run_equivalence():
    """A small MLP trained for several steps lands on the same weights."""
    x = np.random.default_rng(11).standard_normal((32, 12)).astype(np.float32)
    y = np.random.default_rng(12).integers(0, 5, 32)
    finals, losses = {}, {}
    for name in ("numpy", "fused"):
        with use_backend(name):
            rng = np.random.default_rng(123)
            model = nn.Sequential(
                nn.Linear(12, 16, rng=rng), nn.BatchNorm1d(16), nn.ReLU(),
                nn.Linear(16, 5, rng=rng),
            )
            opt = nn.optim.Adam(model.parameters(), lr=1e-2)
            trace = []
            for _ in range(10):
                loss = F.softmax_cross_entropy(model(Tensor(x)), y)
                loss.backward()
                opt.step()
                opt.zero_grad()
                trace.append(loss.item())
            finals[name] = {k: v.copy() for k, v in model.state_dict().items()}
            losses[name] = trace
    np.testing.assert_allclose(losses["fused"], losses["numpy"], rtol=1e-4)
    for key in finals["numpy"]:
        np.testing.assert_allclose(
            finals["fused"][key], finals["numpy"][key], rtol=1e-4, atol=1e-5,
            err_msg=f"state_dict entry {key} diverged across backends",
        )


# --------------------------------------------------------------------------- #
# Bugfix regressions
# --------------------------------------------------------------------------- #
def test_dropout_default_rng_is_seeded_by_manual_seed():
    x = Tensor(np.ones((64, 64), dtype=np.float32))
    nn.init.manual_seed(2024)
    a = F.dropout(x, p=0.5, training=True)
    nn.init.manual_seed(2024)
    b = F.dropout(x, p=0.5, training=True)
    np.testing.assert_array_equal(a.data, b.data)
    assert (a.data == 0).any() and (a.data != 0).any()  # a real mask was drawn


def test_dropout_layer_default_rng_is_seeded_by_manual_seed():
    x = np.ones((64, 64), dtype=np.float32)
    layer = nn.Dropout(0.5)
    nn.init.manual_seed(7)
    a = layer(x)
    nn.init.manual_seed(7)
    b = layer(x)
    np.testing.assert_array_equal(a.data, b.data)


def test_dropout_draws_advance_the_global_stream():
    # Two draws without reseeding must differ: the fix must not freeze the mask.
    nn.init.manual_seed(5)
    x = Tensor(np.ones((64, 64), dtype=np.float32))
    a = F.dropout(x, p=0.5, training=True)
    b = F.dropout(x, p=0.5, training=True)
    assert not np.array_equal(a.data, b.data)


def test_synthetic_batch_is_deterministic_under_manual_seed():
    from repro.models import make_synthetic_batch

    nn.init.manual_seed(0)
    a = make_synthetic_batch(4)
    nn.init.manual_seed(0)
    b = make_synthetic_batch(4)
    np.testing.assert_array_equal(a[0].data, b[0].data)
    np.testing.assert_array_equal(a[1].data, b[1].data)
    np.testing.assert_array_equal(a[2], b[2])


def test_batch_norm_single_value_per_channel_raises_in_training():
    x = Tensor(np.random.default_rng(0).standard_normal((1, 4)).astype(np.float32))
    rm, rv = np.zeros(4, dtype=np.float32), np.ones(4, dtype=np.float32)
    with pytest.raises(ValueError, match="more than 1 value per channel"):
        F.batch_norm(x, running_mean=rm, running_var=rv, training=True)
    # The running statistics must be untouched (the old code silently folded
    # the degenerate zero batch variance into running_var, dragging it
    # toward 0 and corrupting later eval passes).
    np.testing.assert_array_equal(rm, np.zeros(4))
    np.testing.assert_array_equal(rv, np.ones(4))
    # Even without running stats the degenerate batch is rejected ...
    with pytest.raises(ValueError, match="more than 1 value per channel"):
        F.batch_norm(x, training=True)
    # ... but eval mode with batch 1 is fine.
    out = F.batch_norm(x, running_mean=rm, running_var=rv, training=False)
    assert np.isfinite(out.data).all()


def test_batch_norm_layer_single_sample_raises_in_train_but_not_eval():
    layer = nn.BatchNorm1d(3)
    x = np.ones((1, 3), dtype=np.float32)
    with pytest.raises(ValueError, match="more than 1 value per channel"):
        layer(x)
    layer.eval()
    out = layer(x)
    assert np.isfinite(out.data).all()
    # A single image still trains fine in 2d when H*W > 1.
    layer2 = nn.BatchNorm2d(3)
    assert np.isfinite(layer2(np.ones((1, 3, 4, 4), dtype=np.float32)).data).all()


def test_fully_frozen_optimizer_warns_and_noops():
    model = nn.Linear(4, 2)
    for p in model.parameters():
        p.requires_grad = False
    before = {k: v.copy() for k, v in model.state_dict().items()}
    with pytest.warns(UserWarning, match="no trainable"):
        opt = nn.optim.Adam(model.parameters(), lr=0.1)
    opt.step()
    opt.zero_grad()
    for key, value in model.state_dict().items():
        np.testing.assert_array_equal(value, before[key])


def test_softmax_cross_entropy_rejects_out_of_range_labels():
    logits = Tensor(np.zeros((3, 4), dtype=np.float32), requires_grad=True)
    with pytest.raises(ValueError, match=r"\[0, 4\)"):
        F.softmax_cross_entropy(logits, np.array([0, -1, 2]))
    with pytest.raises(ValueError, match=r"\[0, 4\)"):
        F.softmax_cross_entropy(logits, np.array([0, 4, 2]))
    # Boundary labels stay valid.
    loss = F.softmax_cross_entropy(logits, np.array([0, 3, 2]))
    assert np.isfinite(float(loss.data))
    # An empty batch is rejected for the (undefined) mean reduction instead
    # of producing nan / 0-division, but stays valid for sum/none shards.
    empty = Tensor(np.zeros((0, 4), dtype=np.float32), requires_grad=True)
    with pytest.raises(ValueError, match="empty batch"):
        F.softmax_cross_entropy(empty, np.zeros((0,), dtype=np.int64))
    loss = F.softmax_cross_entropy(empty, np.zeros((0,), dtype=np.int64), reduction="sum")
    assert float(loss.data) == 0.0
    loss.backward()
    assert empty.grad.shape == (0, 4)


def test_backward_uses_the_backend_captured_at_trace_time():
    # Forward under fused, backward after switching away: the closure must
    # keep using the backend that produced the forward buffers.
    x = Tensor(np.random.default_rng(1).standard_normal((4, 6)).astype(np.float32),
               requires_grad=True)
    with use_backend("fused"):
        out = F.softmax_cross_entropy(x, np.arange(4) % 6)
    set_backend("numpy")
    out.backward()
    with use_backend("numpy"):
        x2 = Tensor(x.data.copy(), requires_grad=True)
        F.softmax_cross_entropy(x2, np.arange(4) % 6).backward()
    np.testing.assert_allclose(x.grad, x2.grad, rtol=RTOL, atol=ATOL)
