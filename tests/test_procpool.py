"""Process-sharded serving: shared-memory arenas, worker processes,
cross-process resilience, asyncio front door.

The contract under test is the PR 6 thread-mode contract transplanted onto
real OS processes: bit-identical results (determinism propagated under
``fork`` and ``spawn``), kill → respawn (including SIGKILL from outside),
crash-loop retirement, deadline expiry across the ring, bounded ``stop()``
— plus the process-specific guarantees: zero-copy rings (nothing pickled
on the hot path), versioned hot weight swaps, and **no leaked /dev/shm
segment** no matter how a worker dies.
"""

import asyncio
import os
import signal
import time

import numpy as np
import pytest

from repro import nn
from repro.autograd import no_grad
from repro.autograd.fusion import enable_fusion
from repro.backend.registry import get_rng_state, manual_seed
from repro.codegen.jit import enable_codegen
from repro.models import TBNet
from repro.serve import (
    AsyncServer,
    DeadlineExceeded,
    ParamArena,
    ProcServer,
    RequestRing,
    Server,
    SupervisionPolicy,
    inject_faults,
)

HAVE_DEV_SHM = os.path.isdir("/dev/shm")

needs_dev_shm = pytest.mark.skipif(
    not HAVE_DEV_SHM, reason="segment-leak assertions list /dev/shm"
)


def _segments():
    return {f for f in os.listdir("/dev/shm") if f.startswith("psm_")}


def _model(seed=0):
    rng = np.random.default_rng(seed)
    model = nn.Sequential(
        nn.Linear(6, 8, rng=rng), nn.ReLU(), nn.Linear(8, 3, rng=rng)
    )
    model.eval()
    return model


def _req(rng, n=1):
    return rng.standard_normal((n, 6)).astype(np.float32)


def _eager(model, arr):
    with no_grad():
        return model(arr).data


_FAST = SupervisionPolicy(
    watchdog_interval=0.01, restart_backoff=0.001, restart_backoff_cap=0.01
)


def _server(model, **kwargs):
    kwargs.setdefault("buckets", (1, 2, 4))
    kwargs.setdefault("max_wait", 0.002)
    kwargs.setdefault("supervision", _FAST)
    return ProcServer(model, np.zeros((1, 6), np.float32), **kwargs)


# --------------------------------------------------------------------------- #
# Arena + ring primitives
# --------------------------------------------------------------------------- #
def test_arena_publish_attach_and_hot_swap_roundtrip():
    rng = np.random.default_rng(0)
    state = {
        "w": rng.standard_normal((4, 3)).astype(np.float32),
        "b": rng.standard_normal(3).astype(np.float64),
    }
    arena = ParamArena.create(state)
    try:
        assert arena.version == 1 and arena.active_bank == 0
        attached = ParamArena.attach(arena.spec())
        try:
            views = attached.views()
            for key in state:
                np.testing.assert_array_equal(views[key], state[key])
                assert views[key].dtype == state[key].dtype
            # Hot swap: new bytes land in the other bank, version bumps,
            # fresh views see them; the old views still alias the old bank.
            new_state = {k: v + 1 for k, v in state.items()}
            assert arena.publish(new_state) == 2
            assert attached.read_header() == (2, 1)
            for key in state:
                np.testing.assert_array_equal(
                    attached.views()[key], new_state[key]
                )
                np.testing.assert_array_equal(views[key], state[key])
        finally:
            attached.close()
    finally:
        arena.destroy()


def test_arena_publish_rejects_mismatched_state():
    arena = ParamArena.create({"w": np.zeros((2, 2), np.float32)})
    try:
        with pytest.raises(ValueError, match="missing arena keys"):
            arena.publish({})
        with pytest.raises(ValueError, match="fixed at create"):
            arena.publish({"w": np.zeros((3, 2), np.float32)})
        assert arena.version == 1  # failed publishes never tear the bank
    finally:
        arena.destroy()


def test_request_ring_slot_views_roundtrip():
    ring = RequestRing.create(
        [((6,), np.dtype(np.float32)), ((2,), np.dtype(np.float64))],
        ((3,), np.dtype(np.float32)),
        capacity=4, slots=2,
    )
    try:
        attached = RequestRing.attach(ring.spec())
        try:
            rng = np.random.default_rng(1)
            a = rng.standard_normal((3, 6)).astype(np.float32)
            b = rng.standard_normal((3, 2))
            for view, arr in zip(ring.input_views(1, 3), (a, b)):
                view[...] = arr
            got = attached.input_views(1, 3)
            np.testing.assert_array_equal(got[0], a)
            np.testing.assert_array_equal(got[1], b)
            attached.output_view(1, 3)[...] = 7.0
            assert np.all(ring.output_view(1, 3) == 7.0)
            with pytest.raises(ValueError, match="n must be in"):
                ring.input_views(0, 5)
        finally:
            attached.close()
    finally:
        ring.destroy()


# --------------------------------------------------------------------------- #
# Determinism: bit-identical to thread mode, env/RNG propagation
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_process_mode_is_bit_identical_to_thread_mode(start_method):
    rng = np.random.default_rng(3)
    manual_seed(3)
    model = TBNet(width=4, image_size=8, context_dim=8, rng=rng)
    model.eval()
    sizes = [1, 3, 5]
    reqs = [
        (rng.standard_normal((n, 3, 8, 8)).astype(np.float32),
         rng.standard_normal((n, 8)).astype(np.float32))
        for n in sizes
    ]
    example = (reqs[0][0][:1], reqs[0][1][:1])
    with Server(model, example, buckets=(1, 2)) as threaded:
        # Serial submits: one request per dispatch, so the bucket
        # decomposition (and therefore the numerics) is deterministic.
        expected = [threaded.submit(*r).result(timeout=30) for r in reqs]
    with ProcServer(model, example, buckets=(1, 2), workers=1,
                    start_method=start_method,
                    model_factory=model.spawn_factory()) as proc:
        got = [proc.submit(*r).result(timeout=120) for r in reqs]
    for want, have in zip(expected, got):
        assert want.tobytes() == have.tobytes()


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_env_and_rng_state_propagate_into_workers(start_method):
    model = _model()
    manual_seed(20240607)
    expected_rng = np.random.default_rng()
    expected_rng.bit_generator.state = get_rng_state()
    expected_draw = float(expected_rng.standard_normal())
    enable_fusion(True)
    enable_codegen(False)
    try:
        with _server(model, workers=1, start_method=start_method,
                     buckets=(1, 2)) as server:
            server.submit(_req(np.random.default_rng(0))).result(timeout=60)
            (probe,) = server.probe_workers(rng_draw=True)
    finally:
        enable_fusion(None)
        enable_codegen(None)
    assert probe["pid"] != os.getpid()
    assert probe["backend"] == server._base_spec["backend"]
    assert probe["fusion"] is True
    assert probe["codegen"] is False
    assert probe["rng_draw"] == expected_draw


# --------------------------------------------------------------------------- #
# Serving behavior parity
# --------------------------------------------------------------------------- #
def test_coalesced_traffic_matches_eager_and_routes_buckets():
    rng = np.random.default_rng(5)
    model = _model()
    with _server(model, workers=2) as server:
        batches = [_req(rng, n) for n in (1, 2, 3, 4, 1, 2)]
        futures = [server.submit(b) for b in batches]
        for batch, future in zip(batches, futures):
            np.testing.assert_array_equal(
                future.result(timeout=30), _eager(model, batch)
            )
        stats = server.stats()
        assert stats["mode"] == "process"
        assert sum(stats["bucket_calls"].values()) >= 1
        assert stats["requests_completed"] == len(batches)


def test_zero_sample_and_validation_errors_stay_synchronous():
    model = _model()
    with _server(model, workers=1) as server:
        out = server.submit(np.zeros((0, 6), np.float32)).result(timeout=5)
        assert out.shape == (0, 3)
        with pytest.raises(ValueError, match="dtype"):
            server.submit(np.zeros((2, 6), np.float64))
        with pytest.raises(ValueError, match="per-sample shape"):
            server.submit(np.zeros((2, 5), np.float32))


def test_oversized_request_takes_pipe_fallback():
    rng = np.random.default_rng(6)
    model = _model()
    with _server(model, workers=1, buckets=(1, 2)) as server:
        big = _req(rng, 9)  # ring capacity is max bucket = 2
        np.testing.assert_array_equal(
            server.submit(big).result(timeout=30), _eager(model, big)
        )
        stats = server.stats()
        assert stats["pipe_fallbacks"] == 1.0


def test_proc_server_rejects_train_mode_models():
    model = _model()
    model.train()
    with pytest.raises(ValueError, match="eval-mode"):
        ProcServer(model, np.zeros((1, 6), np.float32), buckets=(1, 2))


def test_stats_and_health_gain_process_keys_and_keep_old_ones():
    model = _model()
    with _server(model, workers=2) as server:
        server.submit(_req(np.random.default_rng(0), 2)).result(timeout=30)
        stats = server.stats()
        for key in ("queue_depth", "requests_completed", "latency_ms_p99",
                    "worker_restarts", "bucket_calls"):  # PR 5/6 keys intact
            assert key in stats
        assert stats["mode"] == "process"
        assert stats["start_method"] in ("fork", "spawn", "forkserver")
        assert stats["arena_version"] == 1.0
        workers = stats["workers"]
        assert len(workers) == 2
        for worker in workers:
            assert worker["alive"] and worker["pid"] > 0
            assert worker["process_restarts"] == 0
        health = server.health()
        assert health["ready"] is True and health["workers_alive"] == 2
        assert health["mode"] == "process"
        assert health["processes_alive"] == 2
        assert len(health["worker_pids"]) == 2
        assert health["arena_version"] == 1


def test_tbnet_serve_workers_mode_process():
    rng = np.random.default_rng(11)
    model = TBNet(width=4, image_size=8, context_dim=8, rng=rng)
    images = rng.standard_normal((3, 3, 8, 8)).astype(np.float32)
    context = rng.standard_normal((3, 8)).astype(np.float32)
    with model.serve(buckets=(1, 2), workers=1,
                     workers_mode="process") as server:
        assert server.mode == "process"
        out = server.submit(images, context).result(timeout=60)
        with no_grad():
            np.testing.assert_array_equal(
                out, model(images, context).data
            )
    with pytest.raises(ValueError, match="workers_mode"):
        model.serve(workers_mode="gpu")


# --------------------------------------------------------------------------- #
# Hot weight swap
# --------------------------------------------------------------------------- #
def test_publish_weights_hot_swaps_without_restarting_workers():
    rng = np.random.default_rng(12)
    model = _model(seed=12)
    data = _req(rng, 3)
    with _server(model, workers=1) as server:
        before = server.submit(data).result(timeout=30)
        pid = server.stats()["workers"][0]["pid"]
        for _name, param in model.named_parameters():
            param.data *= 1.25
        assert server.publish_weights() == 2
        after = server.submit(data).result(timeout=30)
        stats = server.stats()
        assert stats["workers"][0]["pid"] == pid  # same process, new weights
        assert stats["workers"][0]["arena_version"] == 2
    assert not np.array_equal(before, after)
    np.testing.assert_array_equal(after, _eager(model, data))


def test_publishing_changed_buffers_recompiles_folded_sessions():
    rng = np.random.default_rng(13)
    manual_seed(13)
    model = TBNet(width=4, image_size=8, context_dim=8, rng=rng)
    # Give the batch-norm running stats non-trivial values, then eval.
    model.train()
    images = rng.standard_normal((8, 3, 8, 8)).astype(np.float32)
    context = rng.standard_normal((8, 8)).astype(np.float32)
    with no_grad():
        model(images, context)
    model.eval()
    example = (images[:1], context[:1])
    with ProcServer(model, example, buckets=(1, 2), workers=1) as server:
        before = server.submit(images[:3], context[:3]).result(timeout=60)
        # Shift a BN running mean: folded compiled constants go stale.
        for name, module in model.named_modules():
            if "running_mean" in module._buffers:
                module._buffers["running_mean"] = (
                    module._buffers["running_mean"] + 0.5
                )
                break
        server.publish_weights()
        after = server.submit(images[:3], context[:3]).result(timeout=60)
        with no_grad():
            expected = model(images[:3], context[:3]).data
    assert not np.array_equal(before, after)
    assert after.tobytes() == expected.tobytes()


# --------------------------------------------------------------------------- #
# Resilience: the PR 6 contract against real processes
# --------------------------------------------------------------------------- #
def test_injected_kill_takes_down_the_process_and_respawns():
    rng = np.random.default_rng(14)
    model = _model()
    with _server(model, workers=1) as server:
        first_pid = server.stats()["workers"][0]["pid"]
        with inject_faults(server, kill_on={1}) as chaos:
            data = _req(rng)
            np.testing.assert_array_equal(
                server.submit(data).result(timeout=30), _eager(model, data)
            )
        health = server.health()
        assert health["worker_crashes"] >= 1
        assert server.ready()
        # The injected WorkerKill SIGKILLed the real OS process.
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            workers = server.stats()["workers"]
            if workers[0]["alive"] and workers[0]["pid"] != first_pid:
                break
            time.sleep(0.02)
        workers = server.stats()["workers"]
        assert workers[0]["alive"] and workers[0]["pid"] != first_pid
    assert chaos.killed == 1


def test_external_sigkill_mid_batch_request_is_still_served():
    rng = np.random.default_rng(15)
    model = _model()
    before = _segments() if HAVE_DEV_SHM else None
    with _server(model, workers=1, worker_latency=0.4) as server:
        data = _req(rng, 2)
        future = server.submit(data)
        time.sleep(0.15)  # batch is in flight inside the worker process
        pid = server.stats()["workers"][0]["pid"]
        os.kill(pid, signal.SIGKILL)
        # Death detected -> WorkerKill -> requeue -> respawn -> served.
        np.testing.assert_array_equal(
            future.result(timeout=60), _eager(model, data)
        )
        assert server.stats()["workers"][0]["pid"] != pid
    if before is not None:
        assert _segments() - before == set()


def test_idle_process_death_is_noticed_and_respawned_by_the_watchdog():
    model = _model()
    with _server(model, workers=1) as server:
        pid = server.stats()["workers"][0]["pid"]
        os.kill(pid, signal.SIGKILL)
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            worker = server.stats()["workers"][0]
            if worker["alive"] and worker["pid"] != pid:
                break
            time.sleep(0.02)
        worker = server.stats()["workers"][0]
        assert worker["alive"] and worker["pid"] != pid
        assert server.stats()["process_restarts"] >= 1.0
        data = _req(np.random.default_rng(0), 2)
        np.testing.assert_array_equal(
            server.submit(data).result(timeout=30), _eager(model, data)
        )


def test_crash_loop_retires_the_slot_and_fails_the_queue():
    rng = np.random.default_rng(16)
    model = _model()
    supervision = SupervisionPolicy(
        watchdog_interval=0.005, max_restarts=2,
        restart_backoff=0.001, restart_backoff_cap=0.002,
    )
    with _server(model, workers=1, supervision=supervision) as server:
        with inject_faults(server, kill_on=set(range(1, 50))):
            future = server.submit(_req(rng))
            with pytest.raises(RuntimeError, match="all workers are dead"):
                future.result(timeout=30)
            assert not server.ready()
            with pytest.raises(RuntimeError, match="Server failed"):
                server.submit(_req(rng))
        assert server.health()["processes_alive"] == 0


def test_deadline_expiry_propagates_across_the_ring():
    rng = np.random.default_rng(17)
    model = _model()
    with _server(model, workers=1, worker_latency=0.3) as server:
        future = server.submit(_req(rng), timeout=0.05)
        with pytest.raises(DeadlineExceeded):
            future.result(timeout=30)
        assert server.ready()  # the worker survived refusing expired work


def test_stuck_process_worker_is_killed_and_replaced():
    rng = np.random.default_rng(18)
    model = _model()
    supervision = SupervisionPolicy(watchdog_interval=0.01, stuck_timeout=0.08)
    with _server(model, workers=1, supervision=supervision) as server:
        # Warm up: consume the spawn handshake so the injected latency is
        # the only thing holding the wedged batch (startup is exempt from
        # stuck detection — it is bounded by spawn_timeout instead).
        server.submit(_req(rng)).result(timeout=60)
        with inject_faults(server, latency=0.5):
            wedged_data = _req(rng)
            wedged = server.submit(wedged_data)
            time.sleep(0.2)  # > stuck_timeout: slot replaced, process killed
            health = server.health()
            assert health["workers_stuck"] == 1
            assert health["workers_alive"] >= 1
            # Replacement pool is unwrapped: new traffic flows immediately.
            data = _req(rng, 2)
            start = time.monotonic()
            np.testing.assert_array_equal(
                server.submit(data).result(timeout=30), _eager(model, data)
            )
            assert time.monotonic() - start < 5.0
            # The wedged batch was requeued when its process was killed and
            # is served by the replacement worker (thread mode can only
            # hope the stuck thread finishes; process mode can actually
            # reclaim the work).
            np.testing.assert_array_equal(
                wedged.result(timeout=30), _eager(model, wedged_data)
            )


def test_stop_is_bounded_with_a_wedged_worker_and_fails_the_stragglers():
    rng = np.random.default_rng(19)
    model = _model()
    before = _segments() if HAVE_DEV_SHM else None
    server = _server(model, workers=1, worker_latency=2.0,
                     supervision=SupervisionPolicy(watchdog_interval=0.01,
                                                   stuck_timeout=None))
    server.start()
    in_flight = server.submit(_req(rng))
    queued = server.submit(_req(rng))
    time.sleep(0.1)
    start = time.monotonic()
    server.stop(drain=True, timeout=0.5)
    assert time.monotonic() - start < 10.0
    with pytest.raises(RuntimeError):
        queued.result(timeout=10)
    with pytest.raises(RuntimeError):
        in_flight.result(timeout=10)
    if before is not None:
        assert _segments() - before == set()


# --------------------------------------------------------------------------- #
# Shared-memory hygiene
# --------------------------------------------------------------------------- #
@needs_dev_shm
def test_no_segment_leak_after_clean_stop():
    before = _segments()
    model = _model()
    with _server(model, workers=2) as server:
        server.submit(_req(np.random.default_rng(0), 3)).result(timeout=30)
        assert _segments() - before != set()  # arena + rings exist while live
    assert _segments() - before == set()


@needs_dev_shm
def test_no_segment_leak_after_worker_crash():
    before = _segments()
    model = _model()
    with _server(model, workers=1) as server:
        with inject_faults(server, kill_on={1}):
            data = _req(np.random.default_rng(1))
            server.submit(data).result(timeout=30)
    assert _segments() - before == set()


@needs_dev_shm
def test_no_segment_leak_without_explicit_stop():
    import gc

    before = _segments()
    server = _server(_model(), workers=1)
    server.start()
    server.submit(_req(np.random.default_rng(2))).result(timeout=30)
    finalizer = server._finalizer
    del server
    gc.collect()
    finalizer()  # what interpreter exit would run
    assert _segments() - before == set()


# --------------------------------------------------------------------------- #
# Asyncio front door
# --------------------------------------------------------------------------- #
def test_async_server_gathers_many_inflight_requests():
    rng = np.random.default_rng(21)
    model = _model()
    batches = [_req(rng, 1 + i % 3) for i in range(40)]

    async def run(server):
        aserver = AsyncServer(server)
        results = await asyncio.gather(
            *(aserver.submit(b) for b in batches)
        )
        stats = await aserver.stats()
        return results, stats

    with _server(model, workers=2) as server:
        results, stats = asyncio.run(run(server))
    assert stats["requests_completed"] <= len(batches)
    # After a draining stop, every request has been counted.
    assert server.stats()["requests_completed"] == len(batches)
    for batch, result in zip(batches, results):
        np.testing.assert_array_equal(result, _eager(model, batch))


def test_async_server_context_manager_and_block_mode_executor():
    rng = np.random.default_rng(22)
    model = _model()
    batches = [_req(rng) for _ in range(12)]

    async def run():
        server = _server(model, workers=1, queue_limit=2, overload="block")
        async with AsyncServer(server) as aserver:
            assert aserver._blocking_submit  # submit goes via executor
            results = await asyncio.gather(
                *(aserver.submit(b) for b in batches)
            )
            health = await aserver.health()
            assert health["ready"] is True
        assert not server.ready()  # stopped on exit
        return results

    results = asyncio.run(run())
    for batch, result in zip(batches, results):
        np.testing.assert_array_equal(result, _eager(model, batch))


def test_async_server_propagates_deadline_errors():
    model = _model()

    async def run(server):
        aserver = AsyncServer(server)
        with pytest.raises(DeadlineExceeded):
            await aserver.submit(_req(np.random.default_rng(3)), timeout=0.05)

    with _server(model, workers=1, worker_latency=0.3) as server:
        asyncio.run(run(server))


# --------------------------------------------------------------------------- #
# Structured regions across process boundaries
# --------------------------------------------------------------------------- #
class _ReduceTailModel(nn.Module):
    """Linear+relu trunk with a fused mean-over-features head: its serving
    trace carries a reduction-tail region, so worker processes exercise the
    structured (multi-stage) kernels end to end.  Module-level so ``spawn``
    workers can unpickle the factory."""

    def __init__(self, seed: int = 7):
        super().__init__()
        self.proj = nn.Linear(6, 8, rng=np.random.default_rng(seed))

    def forward(self, x):
        h = self.proj(x).relu()
        return (h * 0.5 + 0.25).mean(axis=-1, keepdims=True)


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_reduction_tail_model_bit_identical_across_processes(start_method):
    import functools

    model = _ReduceTailModel()
    model.eval()
    rng = np.random.default_rng(5)
    reqs = [_req(rng, n) for n in (1, 3, 2)]
    expected = [_eager(model, r) for r in reqs]
    with ProcServer(model, np.zeros((1, 6), np.float32), buckets=(1, 2),
                    workers=1, start_method=start_method, supervision=_FAST,
                    model_factory=functools.partial(_ReduceTailModel)) as proc:
        got = [proc.submit(r).result(timeout=120) for r in reqs]
    for want, have in zip(expected, got):
        assert want.tobytes() == have.tobytes()


def test_worker_codegen_stats_fold_into_parent_metrics():
    # The ready handshake carries the worker's codegen_stats() snapshot;
    # the parent folds it into the mode="process" labelled cache counters.
    from repro.codegen.jit import have_compiler
    from repro.obs.metrics import get_registry

    if not (have_compiler() and os.environ.get("REPRO_CODEGEN", "1") != "0"):
        pytest.skip("worker compiles no native kernels in this environment")
    model = _ReduceTailModel()
    model.eval()
    with ProcServer(model, np.zeros((1, 6), np.float32), buckets=(1, 2),
                    workers=1, supervision=_FAST) as proc:
        proc.submit(_req(np.random.default_rng(1))).result(timeout=120)
    text = get_registry().render()
    assert ('repro_codegen_cache_hit_total{mode="process"}' in text
            or 'repro_codegen_cache_miss_total{mode="process"}' in text)
