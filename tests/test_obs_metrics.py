"""Metrics core: counters/gauges/histograms, registry semantics, exposition."""

import math
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    NULL_REGISTRY,
    Histogram,
    Registry,
    get_registry,
)


# --------------------------------------------------------------------------- #
# Counter / Gauge basics
# --------------------------------------------------------------------------- #
def test_counter_counts_and_refuses_negative():
    c = Registry().counter("c_total")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError, match="only go up"):
        c.inc(-1)


def test_gauge_set_inc_dec_and_callback():
    g = Registry().gauge("g")
    g.set(10)
    g.inc(5)
    g.dec(2)
    assert g.value == 13.0
    g.set_function(lambda: 42.0)
    assert g.value == 42.0  # callback wins over the stored value


# --------------------------------------------------------------------------- #
# Histogram
# --------------------------------------------------------------------------- #
def test_histogram_buckets_are_cumulative():
    h = Histogram(buckets=(1.0, 10.0, 100.0))
    for v in (0.5, 0.9, 5.0, 50.0, 5000.0):
        h.observe(v)
    assert h.buckets() == {1.0: 2, 10.0: 3, 100.0: 4, math.inf: 5}
    assert h.count == 5
    assert h.sum == pytest.approx(5056.4)


def test_histogram_edge_lands_in_its_le_bucket():
    # Prometheus buckets are `le` (<=): an observation exactly on an edge
    # counts in that edge's bucket.
    h = Histogram(buckets=(1.0, 10.0))
    h.observe(1.0)
    assert h.buckets()[1.0] == 1


def test_histogram_quantile_interpolates_and_saturates():
    h = Histogram(buckets=(1.0, 2.0, 4.0))
    for _ in range(100):
        h.observe(1.5)
    q = h.quantile(0.5)
    assert 1.0 <= q <= 2.0
    # +Inf-bucket mass saturates at the last finite edge.
    h2 = Histogram(buckets=(1.0, 2.0))
    for _ in range(10):
        h2.observe(1e9)
    assert h2.quantile(0.99) == 2.0
    assert Histogram().quantile(0.5) == 0.0  # empty
    with pytest.raises(ValueError, match=r"\[0, 1\]"):
        h.quantile(1.5)


def test_histogram_observe_many_matches_repeated_observe():
    batched, looped = Histogram(buckets=(1.0, 10.0)), Histogram(buckets=(1.0, 10.0))
    values = (0.5, 1.0, 5.0, 50.0)
    batched.observe_many(values)
    batched.observe_many((2.0,))  # singleton fast path
    for v in values + (2.0,):
        looped.observe(v)
    assert batched.buckets() == looped.buckets()
    assert batched.count == looped.count == 5
    assert batched.sum == pytest.approx(looped.sum)
    batched.observe_many(())  # empty batch is a no-op
    assert batched.count == 5


def test_histogram_rejects_bad_buckets():
    with pytest.raises(ValueError, match="at least one bucket"):
        Histogram(buckets=())
    with pytest.raises(ValueError, match="duplicate"):
        Histogram(buckets=(1.0, 1.0))


def test_default_latency_buckets_are_log_spaced_and_sorted():
    assert DEFAULT_LATENCY_BUCKETS_MS == tuple(sorted(DEFAULT_LATENCY_BUCKETS_MS))
    assert DEFAULT_LATENCY_BUCKETS_MS[0] == 0.1
    assert DEFAULT_LATENCY_BUCKETS_MS[-1] == 10000.0
    # ~1-2-5 spacing: every step grows by at most 2.5x.
    ratios = [
        b / a
        for a, b in zip(DEFAULT_LATENCY_BUCKETS_MS, DEFAULT_LATENCY_BUCKETS_MS[1:])
    ]
    assert all(1.0 < r <= 2.5 for r in ratios)


# --------------------------------------------------------------------------- #
# Registry semantics
# --------------------------------------------------------------------------- #
def test_registry_get_or_create_is_idempotent():
    reg = Registry()
    a = reg.counter("reqs_total", "help")
    b = reg.counter("reqs_total", "different help is fine")
    assert a is b


def test_registry_rejects_type_and_label_redeclaration():
    reg = Registry()
    reg.counter("m_total")
    with pytest.raises(ValueError, match="already registered"):
        reg.gauge("m_total")
    reg.counter("labeled_total", labelnames=("server",))
    with pytest.raises(ValueError, match="already registered"):
        reg.counter("labeled_total", labelnames=("other",))


def test_registry_validates_names_and_labels():
    reg = Registry()
    with pytest.raises(ValueError, match="invalid metric name"):
        reg.counter("bad-name")
    with pytest.raises(ValueError, match="invalid label name"):
        reg.counter("ok_total", labelnames=("bad-label",))
    with pytest.raises(ValueError, match="invalid label name"):
        reg.counter("ok2_total", labelnames=("__reserved",))


def test_labeled_family_caches_children_and_checks_names():
    reg = Registry()
    fam = reg.counter("calls_total", labelnames=("server", "bucket"))
    c1 = fam.labels(server="srv0", bucket="64")
    c2 = fam.labels(bucket="64", server="srv0")  # order-insensitive
    assert c1 is c2
    c1.inc(3)
    assert fam.labels(server="srv0", bucket="64").value == 3.0
    with pytest.raises(ValueError, match="takes labels"):
        fam.labels(server="srv0")


def test_process_default_registry_is_shared():
    assert get_registry() is get_registry()


# --------------------------------------------------------------------------- #
# Exposition format (golden)
# --------------------------------------------------------------------------- #
def test_render_golden():
    reg = Registry()
    reg.counter("app_requests_total", "Total requests.").inc(3)
    reg.gauge("app_queue_depth", "Queued requests.").set(7)
    fam = reg.counter("app_calls_total", "Calls per bucket.",
                      labelnames=("bucket",))
    fam.labels(bucket="1").inc(2)
    fam.labels(bucket="64").inc()
    h = reg.histogram("app_latency_ms", "Latency.", buckets=(1.0, 10.0))
    h.observe(0.5)
    h.observe(99.0)
    assert reg.render() == (
        "# HELP app_calls_total Calls per bucket.\n"
        "# TYPE app_calls_total counter\n"
        'app_calls_total{bucket="1"} 2\n'
        'app_calls_total{bucket="64"} 1\n'
        "# HELP app_latency_ms Latency.\n"
        "# TYPE app_latency_ms histogram\n"
        'app_latency_ms_bucket{le="1"} 1\n'
        'app_latency_ms_bucket{le="10"} 1\n'
        'app_latency_ms_bucket{le="+Inf"} 2\n'
        "app_latency_ms_sum 99.5\n"
        "app_latency_ms_count 2\n"
        "# HELP app_queue_depth Queued requests.\n"
        "# TYPE app_queue_depth gauge\n"
        "app_queue_depth 7\n"
        "# HELP app_requests_total Total requests.\n"
        "# TYPE app_requests_total counter\n"
        "app_requests_total 3\n"
    )


def test_render_escapes_label_values_and_help():
    reg = Registry()
    reg.counter("esc_total", 'line\nbreak \\ stuff',
                labelnames=("k",)).labels(k='a"b\\c\nd').inc()
    out = reg.render()
    assert '# HELP esc_total line\\nbreak \\\\ stuff' in out
    assert 'esc_total{k="a\\"b\\\\c\\nd"} 1' in out


def test_render_empty_registry_is_empty_string():
    assert Registry().render() == ""


# --------------------------------------------------------------------------- #
# Concurrency
# --------------------------------------------------------------------------- #
def test_concurrent_increments_are_exact_under_scrapes():
    reg = Registry()
    counter = reg.counter("conc_total")
    hist = reg.histogram("conc_ms", buckets=(1.0, 10.0, 100.0))
    fam = reg.counter("conc_labeled_total", labelnames=("t",))
    threads_n, per_thread = 8, 2000
    stop_scraping = threading.Event()
    scrape_errors = []

    def scrape():
        while not stop_scraping.is_set():
            try:
                reg.render()
            except Exception as exc:  # pragma: no cover - the assertion
                scrape_errors.append(exc)
                return

    def work(tid):
        child = fam.labels(t=str(tid % 2))
        for i in range(per_thread):
            counter.inc()
            hist.observe(float(i % 200))
            child.inc()

    scraper = threading.Thread(target=scrape)
    scraper.start()
    workers = [threading.Thread(target=work, args=(t,)) for t in range(threads_n)]
    for t in workers:
        t.start()
    for t in workers:
        t.join()
    stop_scraping.set()
    scraper.join()

    assert not scrape_errors
    total = threads_n * per_thread
    assert counter.value == total
    assert hist.count == total
    assert hist.buckets()[math.inf] == total
    assert sum(c.value for _, c in fam.collect()) == total


# --------------------------------------------------------------------------- #
# Null registry
# --------------------------------------------------------------------------- #
def test_null_registry_swallows_everything():
    c = NULL_REGISTRY.counter("whatever")
    c.inc(100)
    assert c.value == 0.0
    h = NULL_REGISTRY.histogram("h")
    h.observe(5.0)
    assert h.count == 0 and h.quantile(0.5) == 0.0
    g = NULL_REGISTRY.gauge("g", labelnames=("a",)).labels(a="x")
    g.set(9)
    g.set_function(lambda: 3.0)
    assert g.value == 0.0
    assert NULL_REGISTRY.render() == ""
    assert NULL_REGISTRY.get("whatever") is None
