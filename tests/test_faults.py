"""Deterministic fault injection: isolation, retries, supervision.

These are the acceptance scenarios of the resilience layer, each driven by
seeded chaos hooks so the failure schedule is exact: a poisoned request
fails alone while co-batched requests succeed, transient faults are retried
with backoff, a killed worker is respawned by the watchdog, a crash loop
retires the slot and fails the queue loudly, and a stuck worker is replaced
by a fresh one.
"""

import time

import numpy as np
import pytest

from repro import nn
from repro.autograd import no_grad
from repro.serve import (
    FaultInjector,
    PoisonedRequest,
    RetryPolicy,
    Server,
    SessionPool,
    SupervisionPolicy,
    TransientError,
    inject_faults,
)


def _model(seed=0):
    rng = np.random.default_rng(seed)
    model = nn.Sequential(
        nn.Linear(6, 8, rng=rng), nn.ReLU(), nn.Linear(8, 3, rng=rng)
    )
    model.eval()
    return model


def _req(rng, n=1):
    return rng.standard_normal((n, 6)).astype(np.float32)


def _eager(model, arr):
    with no_grad():
        return model(arr).data


def _server(model, **kwargs):
    kwargs.setdefault("buckets", (1, 2, 4))
    kwargs.setdefault("max_wait", 0.002)
    return Server(model, np.zeros((1, 6), np.float32), **kwargs)


# --------------------------------------------------------------------------- #
# The injector itself
# --------------------------------------------------------------------------- #
def test_injector_schedule_is_deterministic_on_a_bare_pool():
    model = _model()
    pool = SessionPool(model, np.zeros((1, 6), np.float32), buckets=(1, 2))
    rng = np.random.default_rng(0)
    data = _req(rng, 2)
    with inject_faults(pool, raise_on={2, 4}) as chaos:
        outcomes = []
        for _ in range(5):
            try:
                pool.serve(data)
                outcomes.append("ok")
            except TransientError:
                outcomes.append("fault")
    assert outcomes == ["ok", "fault", "ok", "fault", "ok"]
    assert chaos.calls == 5 and chaos.raised == 2
    # Uninstalled: the pool serves cleanly again.
    np.testing.assert_array_equal(pool.serve(data), _eager(model, data))


def test_injector_validates_configuration():
    with pytest.raises(ValueError, match="latency"):
        FaultInjector(latency=-0.1)
    with pytest.raises(ValueError, match="1-based"):
        FaultInjector(raise_on={0})
    with pytest.raises(ValueError, match="1-based"):
        FaultInjector(kill_on={-3})


def test_injector_latency_and_custom_fault_class():
    model = _model()
    pool = SessionPool(model, np.zeros((1, 6), np.float32), buckets=(1,))
    data = _req(np.random.default_rng(1))
    with inject_faults(pool, latency=0.05, raise_on={2}, fault=ValueError) as chaos:
        start = time.monotonic()
        pool.serve(data)
        assert time.monotonic() - start >= 0.05
        with pytest.raises(ValueError, match="injected fault"):
            pool.serve(data)
    assert chaos.delayed == 2 and chaos.raised == 1


# --------------------------------------------------------------------------- #
# Batch-failure isolation
# --------------------------------------------------------------------------- #
def test_poisoned_request_fails_alone_while_cobatched_succeed():
    rng = np.random.default_rng(2)
    model = _model()
    with _server(model, workers=1) as server:
        poison = lambda arrays: bool(np.isnan(arrays[0]).any())  # noqa: E731
        with inject_faults(server, latency=0.05, poison=poison) as chaos:
            # Occupy the worker so the next four requests coalesce into one
            # batch (max_batch_size = max bucket = 4).
            warm = server.submit(_req(rng))
            time.sleep(0.02)
            clean = [_req(rng) for _ in range(3)]
            bad = _req(rng)
            bad[0, 0] = np.nan
            futures = [
                server.submit(clean[0]),
                server.submit(clean[1]),
                server.submit(bad),
                server.submit(clean[2]),
            ]
            assert warm.result(timeout=5).shape == (1, 3)
            # The poisoned request fails with the poison fault...
            with pytest.raises(PoisonedRequest):
                futures[2].result(timeout=5)
            # ...and every innocent co-batched request still succeeds,
            # matching its own eager forward.
            for arr, future in zip(
                [clean[0], clean[1], None, clean[2]], futures
            ):
                if arr is None:
                    continue
                np.testing.assert_allclose(
                    future.result(timeout=5), _eager(model, arr),
                    rtol=1e-4, atol=1e-5,
                )
            stats = server.stats()
    assert chaos.poisoned >= 1
    assert stats["requests_failed"] == 1
    assert stats["requests_completed"] == 4
    # Isolation re-served bisected halves (poison is non-transient: no
    # whole-batch retries, straight to bisection).
    assert stats["batches_retried"] >= 2


def test_transient_fault_is_retried_and_succeeds():
    rng = np.random.default_rng(3)
    model = _model()
    retry = RetryPolicy(max_retries=2, backoff_base=0.001)
    with _server(model, retry=retry) as server:
        with inject_faults(server, raise_on={1}) as chaos:
            data = _req(rng)
            np.testing.assert_array_equal(
                server.submit(data).result(timeout=5), _eager(model, data)
            )
        stats = server.stats()
    assert chaos.raised == 1 and chaos.calls == 2
    assert stats["batches_retried"] == 1
    assert stats["requests_failed"] == 0


def test_transient_retries_exhaust_then_fail_the_request():
    rng = np.random.default_rng(4)
    model = _model()
    retry = RetryPolicy(max_retries=1, backoff_base=0.001)
    with _server(model, retry=retry) as server:
        with inject_faults(server, raise_on={1, 2}) as chaos:
            future = server.submit(_req(rng))
            with pytest.raises(TransientError):
                future.result(timeout=5)
        stats = server.stats()
    assert chaos.raised == 2
    assert stats["batches_retried"] == 1  # one retry, then exhausted
    assert stats["requests_failed"] == 1


def test_nontransient_fault_fails_fast_without_retry():
    rng = np.random.default_rng(5)
    model = _model()
    with _server(model) as server:
        with inject_faults(server, raise_on={1}, fault=ValueError) as chaos:
            future = server.submit(_req(rng))
            with pytest.raises(ValueError):
                future.result(timeout=5)
        stats = server.stats()
    assert chaos.calls == 1  # no retry burned on a deterministic failure
    assert stats["batches_retried"] == 0
    assert stats["requests_failed"] == 1


def test_worker_survives_arbitrary_serve_exceptions():
    # The widened worker try (satellite bugfix): an exception anywhere in
    # the serve path fails the affected futures, not the worker thread.
    rng = np.random.default_rng(6)
    model = _model()
    with _server(model) as server:
        with inject_faults(server, raise_on={1}, fault=KeyError):
            future = server.submit(_req(rng))
            with pytest.raises(KeyError):
                future.result(timeout=5)
        # Same worker thread, still serving.
        assert server.health()["worker_restarts"] == 0
        data = _req(rng, 2)
        np.testing.assert_array_equal(
            server.submit(data).result(timeout=5), _eager(model, data)
        )


# --------------------------------------------------------------------------- #
# Worker supervision
# --------------------------------------------------------------------------- #
def test_killed_worker_is_respawned_and_the_request_still_served():
    rng = np.random.default_rng(7)
    model = _model()
    supervision = SupervisionPolicy(
        watchdog_interval=0.01, restart_backoff=0.001, restart_backoff_cap=0.01
    )
    with _server(model, supervision=supervision) as server:
        with inject_faults(server, kill_on={1}) as chaos:
            data = _req(rng)
            # The first serve call kills the worker; the watchdog respawns
            # it and the re-queued request is served on the second call.
            np.testing.assert_array_equal(
                server.submit(data).result(timeout=5), _eager(model, data)
            )
            health = server.health()
            assert health["workers_alive"] == 1
            assert health["worker_crashes"] == 1
            assert health["worker_restarts"] == 1
            assert server.ready()
            # Still serving afterwards.
            follow = _req(rng, 3)
            np.testing.assert_array_equal(
                server.submit(follow).result(timeout=5), _eager(model, follow)
            )
        stats = server.stats()
    assert chaos.killed == 1
    assert stats["worker_restarts"] == 1


def test_crash_loop_retires_the_slot_and_fails_the_queue():
    rng = np.random.default_rng(8)
    model = _model()
    supervision = SupervisionPolicy(
        watchdog_interval=0.005,
        max_restarts=2,
        restart_backoff=0.001,
        restart_backoff_cap=0.002,
    )
    with _server(model, supervision=supervision) as server:
        with inject_faults(server, kill_on=set(range(1, 50))) as chaos:
            future = server.submit(_req(rng))
            with pytest.raises(RuntimeError, match="all workers are dead"):
                future.result(timeout=5)
            assert not server.ready()
            health = server.health()
            assert health["workers_alive"] == 0
            assert health["worker_crashes"] == 3  # initial + 2 respawns
            assert health["worker_restarts"] == 2
            assert health["failed"] is not None
            with pytest.raises(RuntimeError, match="Server failed"):
                server.submit(_req(rng))
    assert chaos.killed == 3


def test_stuck_worker_is_replaced_and_new_requests_flow():
    rng = np.random.default_rng(9)
    model = _model()
    supervision = SupervisionPolicy(
        watchdog_interval=0.01, stuck_timeout=0.05
    )
    with _server(model, supervision=supervision) as server:
        with inject_faults(server, latency=0.4):
            wedged = server.submit(_req(rng))
            time.sleep(0.15)  # > stuck_timeout: the slot has been replaced
            health = server.health()
            assert health["workers_stuck"] == 1
            assert health["worker_restarts"] >= 1
            assert health["workers_alive"] >= 1
            # The replacement pool is fresh (not wrapped by the injector),
            # so a new request is served immediately, well before the
            # wedged 0.4 s batch would finish.
            data = _req(rng, 2)
            start = time.monotonic()
            np.testing.assert_array_equal(
                server.submit(data).result(timeout=5), _eager(model, data)
            )
            assert time.monotonic() - start < 0.3
            # The abandoned worker eventually finishes; its future still
            # resolves exactly once.
            assert wedged.result(timeout=5).shape == (1, 3)
