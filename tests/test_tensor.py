"""Engine tests: per-op gradient checks, broadcasting, graph lifecycle."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, no_grad, is_grad_enabled

RNG = np.random.default_rng(42)


def t64(shape, requires_grad=True, low=None):
    data = RNG.standard_normal(shape)
    if low is not None:
        data = np.abs(data) + low  # keep away from non-differentiable points
    return Tensor(data, requires_grad=requires_grad, dtype=np.float64)


# --------------------------------------------------------------------------- #
# Per-op gradient checks (finite differences, float64)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "name,fn,shapes,low",
    [
        ("add", lambda a, b: (a + b).sum(), [(3, 4), (3, 4)], None),
        ("sub", lambda a, b: (a - b).sum(), [(3, 4), (3, 4)], None),
        ("mul", lambda a, b: (a * b).sum(), [(3, 4), (3, 4)], None),
        ("div", lambda a, b: (a / b).sum(), [(3, 4), (3, 4)], 0.5),
        ("neg", lambda a: (-a).sum(), [(3, 4)], None),
        ("pow", lambda a: (a ** 3.0).sum(), [(3, 4)], 0.3),
        ("matmul", lambda a, b: (a @ b).sum(), [(3, 4), (4, 5)], None),
        ("matmul_vec_mat", lambda a, b: (a @ b).sum(), [(4,), (4, 5)], None),
        ("matmul_mat_vec", lambda a, b: (a @ b).sum(), [(3, 4), (4,)], None),
        ("matmul_vec_vec", lambda a, b: a @ b, [(4,), (4,)], None),
        ("matmul_batched_vec", lambda a, b: (a @ b).sum(), [(2, 3, 4), (4,)], None),
        ("abs", lambda a: a.abs().sum(), [(3, 4)], 0.3),
        ("exp", lambda a: a.exp().sum(), [(3, 4)], None),
        ("log", lambda a: a.log().sum(), [(3, 4)], 0.5),
        ("sqrt", lambda a: a.sqrt().sum(), [(3, 4)], 0.5),
        ("relu", lambda a: a.relu().sum(), [(3, 4)], 0.3),
        ("sigmoid", lambda a: a.sigmoid().sum(), [(3, 4)], None),
        ("tanh", lambda a: a.tanh().sum(), [(3, 4)], None),
        ("sum_all", lambda a: a.sum(), [(3, 4)], None),
        ("sum_axis", lambda a: a.sum(axis=1).sum(), [(3, 4)], None),
        ("sum_keepdims", lambda a: a.sum(axis=0, keepdims=True).sum(), [(3, 4)], None),
        ("mean", lambda a: a.mean(), [(3, 4)], None),
        ("mean_axis", lambda a: a.mean(axis=1).sum(), [(3, 4)], None),
        ("var", lambda a: a.var(axis=1).sum(), [(3, 4)], None),
        ("reshape", lambda a: a.reshape(4, 3).sum(axis=0).sum(), [(3, 4)], None),
        ("transpose", lambda a: a.transpose().sum(axis=1).sum(), [(3, 4)], None),
        ("transpose_neg", lambda a: (a.transpose(0, -1, -2) ** 2.0).sum(), [(2, 3, 4)], None),
        ("transpose_neg_eq", lambda a: (a.transpose(0, -1, -2) * 2.0).max(axis=0).sum(), [(2, 3, 3)], None),
        ("flatten", lambda a: (a.flatten() ** 2.0).sum(), [(3, 4, 2)], None),
        ("getitem", lambda a: (a[1:, ::2] ** 2.0).sum(), [(3, 4)], None),
        ("max_axis", lambda a: a.max(axis=1).sum(), [(3, 4)], None),
        ("max_tuple_axis", lambda a: a.max(axis=(0, 2)).sum(), [(2, 3, 4)], None),
        ("max_neg_axis", lambda a: a.max(axis=-1).sum(), [(3, 4)], None),
        ("clone", lambda a: (a.clone() * a).sum(), [(3, 4)], None),
        ("pad2d", lambda a: (a.pad2d(1) ** 2.0).sum(), [(2, 2, 3, 3)], None),
        ("chain", lambda a, b: ((a @ b).relu().sigmoid() * 3.0).mean(), [(3, 4), (4, 5)], None),
    ],
)
def test_op_gradients(name, fn, shapes, low):
    inputs = [t64(s, low=low) for s in shapes]
    result = check_gradients(fn, inputs)
    assert result.ok, f"{name}: {result}"


@pytest.mark.parametrize(
    "shape_a,shape_b",
    [((4, 5), (5,)), ((4, 1), (1, 5)), ((2, 3, 4), (4,)), ((4, 5), ()), ((1, 5), (4, 1))],
)
def test_broadcast_gradients(shape_a, shape_b):
    a, b = t64(shape_a), t64(shape_b)
    for fn in (
        lambda a, b: (a + b).sum(),
        lambda a, b: (a * b).sum(),
        lambda a, b: ((a + b) * (a * b)).sum(),
    ):
        result = check_gradients(fn, [a, b])
        assert result.ok, f"broadcast {shape_a} vs {shape_b}: {result}"


def test_concatenate_and_stack_gradients():
    a, b = t64((2, 3)), t64((2, 3))
    assert check_gradients(lambda a, b: (Tensor.concatenate([a, b], axis=1) ** 2.0).sum(), [a, b]).ok
    assert check_gradients(lambda a, b: (Tensor.stack([a, b], axis=0) ** 2.0).sum(), [a, b]).ok


# --------------------------------------------------------------------------- #
# Satellite fixes
# --------------------------------------------------------------------------- #
def test_pow_accepts_numpy_scalars():
    x = Tensor(np.array([2.0, 3.0]), requires_grad=True, dtype=np.float64)
    for exponent in (np.float32(2.0), np.float64(2.0), np.int32(2), np.int64(2), 2, 2.0):
        y = (x ** exponent).sum()
        np.testing.assert_allclose(y.data, 13.0, rtol=1e-6)
    with pytest.raises(TypeError):
        x ** "2"


def test_pow_numpy_scalar_gradient():
    x = t64((3, 4), low=0.3)
    assert check_gradients(lambda a: (a ** np.float32(2.0)).sum(), [x]).ok


@pytest.mark.parametrize("axis", [(0, 1), (0, 2), (1, 2), (0, -1), (-2, -1)])
@pytest.mark.parametrize("keepdims", [False, True])
def test_sum_tuple_axes(axis, keepdims):
    x = t64((2, 3, 4))
    out = x.sum(axis=axis, keepdims=keepdims)
    np.testing.assert_allclose(out.data, x.data.sum(axis=axis, keepdims=keepdims))
    assert check_gradients(lambda a: (a.sum(axis=axis, keepdims=keepdims) ** 2.0).sum(), [x]).ok


@pytest.mark.parametrize("axis", [-1, -2, (0, -1)])
def test_mean_negative_axes(axis):
    x = t64((2, 3, 4))
    out = x.mean(axis=axis)
    np.testing.assert_allclose(out.data, x.data.mean(axis=axis), rtol=1e-12)
    assert check_gradients(lambda a: (a.mean(axis=axis) ** 2.0).sum(), [x]).ok


# --------------------------------------------------------------------------- #
# no_grad behaviour
# --------------------------------------------------------------------------- #
def test_no_grad_records_nothing():
    x = Tensor([1.0, 2.0], requires_grad=True)
    assert is_grad_enabled()
    with no_grad():
        assert not is_grad_enabled()
        y = (x * 2.0 + 1.0).sum()
    assert is_grad_enabled()
    assert not y.requires_grad
    assert y._prev == ()
    assert y._backward is None
    with pytest.raises(RuntimeError):
        y.backward()


def test_no_grad_nests():
    with no_grad():
        with no_grad():
            pass
        assert not is_grad_enabled()
    assert is_grad_enabled()


# --------------------------------------------------------------------------- #
# Accumulation semantics
# --------------------------------------------------------------------------- #
def test_repeated_use_accumulates():
    x = Tensor([3.0], requires_grad=True)
    y = (x + x + x).sum()
    y.backward()
    np.testing.assert_allclose(x.grad, [3.0])


def test_grad_buffer_is_owned_and_writable():
    x = Tensor([1.0, 2.0], requires_grad=True)
    y = (x * 1.0).sum()
    y.backward()
    assert x.grad.flags.writeable
    x.grad += 1.0  # in-place update must not touch any other tensor's grad


def test_backward_seed_grad_is_copied():
    x = Tensor([1.0, 2.0, 3.0], requires_grad=True)
    seed = np.ones(3, dtype=np.float32)
    y = x * 2.0
    y.backward(seed)
    x.grad[:] = 0.0
    np.testing.assert_allclose(seed, 1.0)  # caller's array untouched


def test_backward_requires_grad_and_scalar():
    x = Tensor([1.0, 2.0])
    with pytest.raises(RuntimeError):
        x.backward()
    y = Tensor([1.0, 2.0], requires_grad=True)
    with pytest.raises(RuntimeError):
        (y * 2.0).backward()  # non-scalar without explicit seed


# --------------------------------------------------------------------------- #
# Graph freeing / retain_graph
# --------------------------------------------------------------------------- #
def test_backward_frees_graph_by_default():
    x = Tensor([2.0], requires_grad=True)
    y = x * 3.0
    z = (y * y).sum()
    z.backward()
    np.testing.assert_allclose(x.grad, [36.0])
    # Interior nodes dropped their parent links (closures replaced by sentinel).
    assert z._prev == () and y._prev == ()
    # A second backward over the freed graph must fail loudly, not silently
    # produce missing gradients.
    with pytest.raises(RuntimeError, match="already been freed"):
        z.backward()


def test_backward_over_partially_freed_shared_subgraph_raises():
    """Freeing one consumer's graph must not let another silently mis-grad."""
    a = Tensor([2.0], requires_grad=True)
    h = a * a
    z1 = (h * 2.0).sum()
    z2 = (h * 5.0).sum()
    z1.backward(retain_graph=True)
    np.testing.assert_allclose(a.grad, [8.0])
    z2.backward()  # frees h, which z1's cached topo still references
    a.zero_grad()
    with pytest.raises(RuntimeError, match="already been freed"):
        z1.backward(retain_graph=True)


def test_fresh_graph_through_freed_shared_node_raises():
    """A second loss whose toposort reaches a freed node must fail loudly,
    not treat it as a leaf and silently drop upstream gradients."""
    x = Tensor([1.0, 2.0], requires_grad=True)
    y = x * 2.0
    l1 = y.sum()
    l2 = (y * y).sum()
    l1.backward()  # frees y's closure
    with pytest.raises(RuntimeError, match="already been freed"):
        l2.backward()


def test_leaf_backward_is_repeatable():
    x = Tensor([1.0], requires_grad=True)
    x.backward(np.array([2.0], dtype=np.float32))
    x.backward(np.array([3.0], dtype=np.float32))  # leaves never freeze
    np.testing.assert_allclose(x.grad, [3.0])


def test_retain_graph_allows_second_backward():
    x = Tensor([2.0], requires_grad=True)
    z = (x * x).sum()
    z.backward(retain_graph=True)
    np.testing.assert_allclose(x.grad, [4.0])
    z.backward(retain_graph=True)  # reuses the cached topo order
    np.testing.assert_allclose(x.grad, [8.0])
    z.backward()  # final pass frees the graph
    np.testing.assert_allclose(x.grad, [12.0])
    with pytest.raises(RuntimeError, match="already been freed"):
        z.backward()


def test_freed_graph_is_collectable_without_gc():
    """Freeing must break tensor<->closure reference cycles (regression)."""
    import gc
    import weakref

    x = Tensor([1.0], requires_grad=True)
    y = (x * 2.0 + 1.0).sum()
    ref = weakref.ref(y)
    y.backward()
    gc.disable()
    try:
        del y
        assert ref() is None  # refcounting alone reclaimed the graph
    finally:
        gc.enable()


def test_detach_breaks_graph():
    x = Tensor([1.0, 2.0], requires_grad=True)
    d = x.detach()
    assert not d.requires_grad
    assert check_gradients(lambda a: (a * a.detach()).sum(), [t64((3,))]).ok is False


# --------------------------------------------------------------------------- #
# Edge-case hardening
# --------------------------------------------------------------------------- #
def test_concatenate_empty_sequence_raises_clearly():
    with pytest.raises(ValueError, match="at least one tensor"):
        Tensor.concatenate([])
    with pytest.raises(ValueError, match="at least one tensor"):
        Tensor.concatenate((), axis=1)


def test_stack_empty_sequence_raises_clearly():
    with pytest.raises(ValueError, match="at least one tensor"):
        Tensor.stack([])


def test_item_on_non_scalar_reports_the_shape():
    with pytest.raises(ValueError, match=r"\(2, 3\)"):
        Tensor(np.zeros((2, 3))).item()
    with pytest.raises(ValueError, match=r"\(0,\)"):
        Tensor(np.zeros((0,))).item()
    # Single-element tensors of any rank stay valid, like numpy's .item().
    assert Tensor(np.float32(7.0)).item() == 7.0
    assert Tensor([[5.0]]).item() == 5.0


def test_getitem_accepts_tensor_indices():
    # Like torch, x[idx] unwraps an integer Tensor index to its array
    # instead of surfacing numpy's raw IndexError about the wrapper type.
    x = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True, dtype=np.float64)
    idx = Tensor(np.array([2, 0]), dtype=np.int64)
    out = x[idx]
    np.testing.assert_array_equal(out.data, x.data[[2, 0]])
    out.sum().backward()
    expected = np.zeros((3, 4))
    expected[[2, 0]] = 1.0
    np.testing.assert_array_equal(x.grad, expected)


def test_getitem_unwraps_tensor_inside_tuple_index():
    x = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True, dtype=np.float64)
    rows = Tensor(np.array([0, 2]), dtype=np.int64)
    out = x[rows, 1]
    np.testing.assert_array_equal(out.data, x.data[[0, 2], 1])
    out.sum().backward()
    expected = np.zeros((3, 4))
    expected[[0, 2], 1] = 1.0
    np.testing.assert_array_equal(x.grad, expected)


def test_getitem_tensor_index_duplicates_accumulate():
    # The np.add.at scatter path must keep summing duplicate indices after
    # the unwrap, exactly as it does for a plain integer array index.
    x = Tensor(np.arange(4.0), requires_grad=True, dtype=np.float64)
    idx = Tensor(np.array([1, 1, 3]), dtype=np.int64)
    (x[idx] * Tensor(np.array([1.0, 2.0, 5.0]), dtype=np.float64)).sum().backward()
    np.testing.assert_array_equal(x.grad, [0.0, 3.0, 0.0, 5.0])


def test_pow_gradient_at_zero_is_silent_and_matches_torch():
    import warnings

    x = Tensor(np.array([0.0, 4.0, 9.0]), requires_grad=True, dtype=np.float64)
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # any RuntimeWarning fails the test
        (x ** 0.5).sum().backward()
    # d/dx sqrt(x) at 0 is +inf, matching torch; the old path also produced
    # inf but spewed a divide-by-zero RuntimeWarning while doing so.
    assert np.isinf(x.grad[0])
    np.testing.assert_allclose(x.grad[1:], [0.25, 1.0 / 6.0])
