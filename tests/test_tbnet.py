"""TBNet reference-model tests: the PR's acceptance criteria live here."""

import numpy as np

from repro import nn
from repro.autograd import no_grad
from repro.models import TBNet, make_synthetic_batch

import pytest


def small_tbnet(dropout=0.0, seed=0):
    return TBNet(
        in_channels=2,
        image_size=8,
        context_dim=6,
        num_classes=4,
        width=8,
        dropout=dropout,
        rng=np.random.default_rng(seed),
    )


def small_batch(batch=16, seed=1):
    return make_synthetic_batch(
        batch, in_channels=2, image_size=8, context_dim=6, num_classes=4,
        rng=np.random.default_rng(seed),
    )


def test_forward_shapes():
    model = small_tbnet()
    images, context, targets = small_batch()
    logits = model(images, context)
    assert logits.shape == (16, 4)
    assert targets.shape == (16,)


def test_tbnet_trains_five_steps_with_adam_loss_strictly_decreasing():
    """Acceptance criterion: 5 Adam steps on synthetic data, monotone loss."""
    model = small_tbnet(dropout=0.0)
    opt = nn.optim.Adam(model.parameters(), lr=1e-2)
    images, context, targets = small_batch()
    losses = [model.train_step(opt, images, context, targets) for _ in range(5)]
    assert all(b < a for a, b in zip(losses, losses[1:])), losses


def test_tbnet_default_config_also_learns():
    # With dropout active the loss need not be monotone, but must go down.
    model = TBNet(width=8, dropout=0.25, rng=np.random.default_rng(3))
    opt = nn.optim.Adam(model.parameters(), lr=1e-2)
    images, context, targets = make_synthetic_batch(32, rng=np.random.default_rng(4))
    losses = [model.train_step(opt, images, context, targets) for _ in range(10)]
    assert losses[-1] < losses[0] * 0.8, losses


def test_state_dict_round_trips_bit_exactly():
    """Acceptance criterion: checkpoint round trip is bit-exact."""
    model = small_tbnet(seed=5)
    opt = nn.optim.Adam(model.parameters(), lr=1e-2)
    images, context, targets = small_batch(seed=6)
    model.train_step(opt, images, context, targets)  # move off the init point

    state = model.state_dict()
    restored = small_tbnet(seed=777)  # different init, then overwritten
    restored.load_state_dict(state)
    for key, value in restored.state_dict().items():
        assert np.array_equal(value, state[key]), key

    model.eval()
    restored.eval()
    with no_grad():
        a = model(images, context)
        b = restored(images, context)
    assert np.array_equal(a.data, b.data)


def test_train_step_leaves_no_grads_behind():
    model = small_tbnet()
    opt = nn.optim.SGD(model.parameters(), lr=1e-2, momentum=0.9)
    images, context, targets = small_batch()
    model.train_step(opt, images, context, targets)
    assert all(p.grad is None for p in model.parameters())


def test_eval_mode_is_deterministic_and_frozen():
    model = TBNet(width=8, dropout=0.5, rng=np.random.default_rng(8))
    images, context, targets = make_synthetic_batch(8, rng=np.random.default_rng(9))
    model.eval()
    tracked = [np.array(m.running_mean) for m in model.modules() if isinstance(m, nn.BatchNorm2d)]
    with no_grad():
        a = model(images, context)
        b = model(images, context)
    assert np.array_equal(a.data, b.data)  # dropout inactive
    after = [m.running_mean for m in model.modules() if isinstance(m, nn.BatchNorm2d)]
    for before_arr, after_arr in zip(tracked, after):
        assert np.array_equal(before_arr, after_arr)  # stats untouched


def test_rejects_bad_image_size():
    with pytest.raises(ValueError, match="divisible by 4"):
        TBNet(image_size=10)


def test_synthetic_batch_is_class_conditional():
    images, context, targets = make_synthetic_batch(512, rng=np.random.default_rng(10))
    low = images.data[targets == 0].mean()
    high = images.data[targets == 9].mean()
    assert high - low > 0.5  # class signal present in the image branch
