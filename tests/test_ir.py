"""Graph-IR tests: node records, capture, topological order, replay."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F, ir, no_grad
from repro.backend import get_backend


# --------------------------------------------------------------------------- #
# Node records
# --------------------------------------------------------------------------- #
def test_every_op_records_an_explicit_node():
    x = Tensor([[1.0, -2.0], [3.0, 4.0]], requires_grad=True)
    w = Tensor(np.eye(2, dtype=np.float32), requires_grad=True)
    out = F.linear(x, w).relu().sum()
    node = out._node
    assert node is not None
    assert node.op == "sum"
    # Structural attrs (axis/keepdims/shape/...) are recorded only under
    # capture — training backward closes over the values directly, so the
    # per-node dict would be dead weight on the hot path.
    assert node.attrs is None
    relu_node = node.inputs[0]._node
    assert relu_node.op == "relu"
    assert relu_node.attrs["mask"].dtype == bool
    linear_node = relu_node.inputs[0]._node
    assert linear_node.op == "linear"
    assert linear_node.inputs[0] is x and linear_node.inputs[1] is w
    assert linear_node.be is get_backend()
    assert callable(linear_node.backward)


def test_node_views_match_legacy_tape_attributes():
    x = Tensor([1.0, 2.0], requires_grad=True)
    y = x * 2.0
    assert y._op == "mul"
    assert len(y._prev) == 2 and y._prev[0] is x
    assert y._backward is y._node.backward
    leaf = Tensor([1.0])
    assert leaf._op == "" and leaf._prev == () and leaf._backward is None


def test_leaves_have_no_node():
    x = Tensor([1.0, 2.0], requires_grad=True)
    assert x._node is None


def test_freeing_drops_node_state():
    x = Tensor([2.0], requires_grad=True)
    y = (x * 3.0).sum()
    mid = y._node.inputs[0]
    y.backward()
    for node in (y._node, mid._node):
        assert node.inputs == ()
        assert node.attrs is None
        assert node.out is None
    with pytest.raises(RuntimeError, match="already been freed"):
        y._node.backward()


# --------------------------------------------------------------------------- #
# Capture
# --------------------------------------------------------------------------- #
def test_capture_records_creation_order_topologically():
    x = Tensor(np.random.default_rng(0).standard_normal((4, 3)).astype(np.float32))
    w = Tensor(np.random.default_rng(1).standard_normal((3, 2)).astype(np.float32))
    with no_grad(), ir.capture() as graph:
        out = F.linear(x, w).relu().sum()
    assert [n.op for n in graph.nodes] == ["linear", "relu", "sum"]
    # Creation order is a topological order: every node's tensor inputs are
    # either leaves or outputs of strictly earlier nodes.
    produced = set()
    for node in graph.nodes:
        for t in node.inputs:
            assert t._node is None or id(t._node) in produced
        produced.add(id(node))
    assert out._node is graph.nodes[-1]


def test_capture_under_no_grad_records_backwardless_nodes():
    x = Tensor([1.0, -1.0], requires_grad=True)
    with no_grad(), ir.capture() as graph:
        y = (x * 2.0).relu()
    assert len(graph) == 2
    assert all(n.backward is None for n in graph)
    assert not y.requires_grad
    with pytest.raises(RuntimeError):
        y.backward()


def test_capture_restores_previous_graph_on_exit():
    assert ir.current_capture() is None
    with ir.capture() as outer:
        with ir.capture() as inner:
            Tensor([1.0], requires_grad=True) * 2.0
        assert ir.current_capture() is outer
        assert len(inner) == 1 and len(outer) == 0
    assert ir.current_capture() is None


def test_no_capture_no_graph_growth():
    # Outside a capture the only record is the per-tensor node chain.
    x = Tensor([1.0], requires_grad=True)
    y = x * 2.0
    assert ir.current_capture() is None
    assert y._node.op == "mul"


# --------------------------------------------------------------------------- #
# Toposort invariants
# --------------------------------------------------------------------------- #
def _check_topo_invariants(topo, root_node):
    seen = set()
    for node in topo:
        for t in node.inputs:
            pn = t._node
            if pn is not None and pn.backward is not None:
                assert id(pn) in seen, f"{node.op} appeared before its producer {pn.op}"
        seen.add(id(node))
    assert topo[-1] is root_node  # post-order: the root comes last
    assert len(seen) == len(topo)  # no duplicates


def test_toposort_orders_producers_before_consumers():
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((5, 4)).astype(np.float32), requires_grad=True)
    h = (x * 2.0 + 1.0).relu()
    shared = h.sum(axis=0)
    out = (shared * shared).sum() + h.mean()
    topo = ir.toposort(out._node)
    _check_topo_invariants(topo, out._node)


def test_toposort_diamond_visits_shared_node_once():
    a = Tensor([2.0], requires_grad=True)
    h = a * a
    out = (h * 2.0 + h * 3.0).sum()
    topo = ir.toposort(out._node)
    assert sum(1 for n in topo if n is h._node) == 1
    _check_topo_invariants(topo, out._node)


def test_toposort_backward_only_prunes_gradless_branches():
    x = Tensor([1.0, 2.0], requires_grad=True)
    const = Tensor([3.0, 4.0])  # no grad
    with no_grad():
        frozen = const * 2.0  # recorded nowhere: no capture, no grad
    out = (x * frozen).sum()
    topo = ir.toposort(out._node, backward_only=True)
    assert {n.op for n in topo} == {"mul", "sum"}


# --------------------------------------------------------------------------- #
# Forward replay
# --------------------------------------------------------------------------- #
def test_run_forward_replays_trace_bit_exactly():
    rng = np.random.default_rng(3)
    x_np = rng.standard_normal((6, 8)).astype(np.float32)
    w_np = rng.standard_normal((8, 5)).astype(np.float32)
    x, w = Tensor(x_np), Tensor(w_np)
    with no_grad(), ir.capture() as graph:
        out = F.softmax(F.linear(x, w).relu() * 2.0, axis=-1)

    # Replay the captured nodes over fresh arrays through the registry.
    be = get_backend()
    new_x = rng.standard_normal((6, 8)).astype(np.float32)
    values = {id(x): new_x, id(w): w_np}
    for node in graph:
        arrays = tuple(
            values[id(t)] if id(t) in values else t.data for t in node.inputs
        )
        values[id(node.out)] = ir.evaluate_node(node, be, arrays)

    with no_grad():
        expected = F.softmax(F.linear(Tensor(new_x), w).relu() * 2.0, axis=-1)
    np.testing.assert_array_equal(values[id(out)], expected.data)


def test_cross_entropy_replay_binds_new_targets():
    # Targets are a data-dependent input of the node, not a frozen attr:
    # replaying over a new batch must score the new labels.
    rng = np.random.default_rng(8)
    logits = Tensor(rng.standard_normal((5, 4)).astype(np.float32))
    targets = np.array([0, 1, 2, 3, 0])
    with no_grad(), ir.capture() as graph:
        F.softmax_cross_entropy(logits, targets)
    (node,) = graph.nodes
    assert node.inputs[1].data.dtype == np.int64  # labels ride as an input
    new_logits = rng.standard_normal((5, 4)).astype(np.float32)
    new_targets = np.array([3, 2, 1, 0, 1])
    replayed = ir.evaluate_node(node, get_backend(), (new_logits, new_targets))
    with no_grad():
        expected = F.softmax_cross_entropy(Tensor(new_logits), new_targets)
    np.testing.assert_array_equal(replayed, expected.data)
    # Replay keeps the eager kernel's label validation: no silent wrap-around.
    bad = np.array([0, 1, -1, 2, 0])
    with pytest.raises(ValueError, match=r"\[0, 4\)"):
        ir.evaluate_node(node, get_backend(), (new_logits, bad))
    with pytest.raises(ValueError, match=r"\[0, 4\)"):
        ir.evaluate_node(node, get_backend(), (new_logits, np.full(5, 9)))


def test_run_forward_unknown_op_raises():
    with pytest.raises(KeyError, match="no forward evaluator"):
        ir.run_forward(get_backend(), "definitely_not_an_op", (), {})


def test_train_mode_batch_norm_replay_is_refused():
    x = Tensor(np.random.default_rng(0).standard_normal((8, 3)).astype(np.float32))
    with ir.capture() as graph:
        F.batch_norm(x, training=True)
    (node,) = graph.nodes
    with pytest.raises(RuntimeError, match="train-mode batch_norm"):
        ir.evaluate_node(node, get_backend(), (x.data,))
