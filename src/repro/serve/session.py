"""Compiled ``no_grad`` inference: capture a trace once, replay it forever.

:func:`compile_inference` runs one forward pass of an **eval-mode** model
over an example batch inside :func:`repro.autograd.ir.capture` +
``no_grad()``, optionally runs the fusion pass over the captured trace, and
compiles the surviving nodes into a flat list of step closures.  The
returned :class:`InferenceSession` replays that list over new batches with:

- **no tape**: no ``Tensor`` wrapping, no node recording, no module
  dispatch — each step is one bound closure over ndarrays;
- **pre-allocated, reused buffers**: the hot ops (the affine maps, the
  fused ``linear_relu``, elementwise chains, eval batch-norm, relu, concat)
  write into buffers allocated once at compile time via ``out=`` kernels;
  batch-norm's eval statistics are folded to constants at compile;
- **shape checking**: every call validates the incoming arrays against the
  example batch (fixed shapes are what make buffer reuse safe) and rejects
  mismatches with a clear error.

Replay is **bit-identical** to the eager ``no_grad`` forward under the
backend active at compile time: every specialized step runs the exact op
sequence of the eager kernel (in-place where the buffer is owned), and ops
without a specialized emitter fall back to the IR forward evaluators, which
share the kernels' forward cores.

Train-mode state is refused twice: models with any module still in training
mode are rejected up front, and traces containing train-mode nodes (a
dropout mask, a batch-norm that would re-update running statistics) are
rejected after capture — a serving session must be a pure function of its
inputs and the frozen parameters.

Parameters are bound **by reference**: each replay reads the current
``.data`` of the captured parameter tensors, so in-place updates (a
fine-tune step, ``load_state_dict``) show up without recompiling.  Running
statistics of batch-norm layers, by contrast, are folded to constants at
compile — recompile after changing them.

The session's output array is a reused buffer: copy it if you need it to
survive the next :meth:`InferenceSession.run` call.
:func:`serve_batches` does exactly that while chunking an arbitrarily long
request stream through the fixed-batch session; an odd-sized final chunk
runs through the model's eager ``no_grad`` forward (correct for any trace,
including ones whose samples interact through batch statistics).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from numpy.lib.stride_tricks import sliding_window_view

from repro.autograd import fusion, ir
from repro.autograd.tensor import Tensor, no_grad
from repro.backend import get_backend, use_backend
from repro.backend.fused import FusedNumpyBackend
from repro.backend.lazy import LazyBackend, pause_deferral, set_deferral
from repro.backend.numpy_backend import NumpyBackend
from repro.nn.module import Module
from repro.obs.profile import active_profiler

__all__ = ["InferenceSession", "compile_inference", "serve_batches"]

ArrayOrTensor = Union[np.ndarray, Tensor]


def _as_input_tensors(example_batch) -> Tuple[Tensor, ...]:
    """Normalize an example batch (array/Tensor or sequence of them)."""
    if isinstance(example_batch, (list, tuple)):
        items = example_batch
    else:
        items = (example_batch,)
    if not items:
        raise ValueError("compile_inference needs at least one example input")
    out = []
    for item in items:
        if isinstance(item, Tensor):
            out.append(Tensor(item.data, requires_grad=False, dtype=item.data.dtype))
        else:
            # Preserve the example's dtype: a float64 (or integer-label)
            # ndarray example must compile a session of that dtype, not be
            # silently folded to the Tensor float32 default.
            arr = np.asarray(item)
            out.append(Tensor(arr, dtype=arr.dtype))
    return tuple(out)


def _coerce_arrays(batch) -> List[np.ndarray]:
    """One request's inputs as plain arrays: ``Tensor`` → ``.data``, else
    ``np.asarray``.  The single coercion rule shared by every serving entry
    point (``serve_batches``, ``SessionPool.serve``, ``Server.submit``)."""
    items = batch if isinstance(batch, (list, tuple)) else (batch,)
    return [a.data if isinstance(a, Tensor) else np.asarray(a) for a in items]


def _reject_training_nodes(nodes: Sequence[ir.GraphNode]) -> None:
    for node in nodes:
        if node.op == "dropout":
            raise ValueError(
                "the captured trace contains a training-mode dropout node; "
                "inference traces must be captured in eval mode"
            )
        if node.op in ("batch_norm", "batch_norm_relu") and node.attrs["training"]:
            raise ValueError(
                "the captured trace contains a train-mode batch_norm node "
                "(replay would re-update its running statistics); capture in "
                "eval mode"
            )


def _reject_rewrapped_activations(
    graph: ir.Graph, nodes: Sequence[ir.GraphNode], inputs: Tuple[Tensor, ...]
) -> None:
    """Refuse traces whose 'constants' alias traced activations.

    A constant (anything that is neither a session input nor a node output)
    whose storage overlaps any recorded activation means the forward
    re-wrapped intermediate data outside the tape (``Tensor(h.data)``): the
    replay would silently freeze the example batch's values in.  The check
    runs against the *full* capture, not just the output-reachable nodes —
    the escape typically dead-code-eliminates the producer it leaked from.
    """
    bound = {id(t) for t in inputs}
    bound.update(id(node.out) for node in nodes)
    # Everything batch-dependent: the session inputs themselves plus every
    # recorded activation (the full capture — the escape typically
    # dead-code-eliminates the producer it leaked from).  Aliasing is
    # detected by root allocation buffer: numpy views chain ``.base`` back
    # to the owning array, so comparing roots is a linear id-set lookup per
    # edge instead of a quadratic may_share_memory sweep.
    traced = [t.data for t in inputs]
    traced += [node.out.data for node in graph.nodes if node.out is not None]
    traced_roots = {id(_root_buffer(arr)) for arr in traced}
    for node in nodes:
        for t in node.inputs:
            if id(t) in bound:
                continue
            if id(_root_buffer(t.data)) in traced_roots:
                raise ValueError(
                    f"the captured trace feeds op {node.op!r} a constant "
                    "tensor aliasing a batch-dependent array (an input or a "
                    "traced activation) — the forward re-wrapped data "
                    "outside the tape, so a compiled replay would freeze "
                    "the example batch's values; keep intermediate results "
                    "as traced Tensors (detach() is fine: it records an "
                    "identity node)"
                )
        if node.op == "softmax_cross_entropy" and id(node.inputs[1]) not in bound:
            # Frozen labels are almost never what a serving session means:
            # every replay would score the trace-time targets.
            raise ValueError(
                "the captured softmax_cross_entropy node's targets are a "
                "constant of the trace (the forward received plain-array "
                "labels); pass the labels through the example batch as a "
                "Tensor input so each replay binds fresh targets"
            )
        if node.op == "getitem" and _has_array_index(node.attrs["index"]):
            # An ndarray index is frozen into the trace, and whether it was
            # computed from the batch (np.argsort(x.data[...]) and friends)
            # is undecidable here — such an index usually does not even
            # alias the data it came from.  Fail loudly instead of silently
            # replaying the example batch's gather pattern.
            raise ValueError(
                "the captured trace contains a getitem with an ndarray "
                "index, which is frozen at compile time; if it was computed "
                "from the batch the replay would silently reuse the example "
                "batch's indices — express the gather with static slices, "
                "or keep that model on the eager no_grad path"
            )


def _root_buffer(arr: np.ndarray):
    """The array owning ``arr``'s memory (follow the view ``.base`` chain)."""
    while isinstance(arr, np.ndarray) and arr.base is not None:
        arr = arr.base
    return arr


def _has_array_index(index) -> bool:
    items = index if isinstance(index, tuple) else (index,)
    return any(isinstance(item, (np.ndarray, list)) for item in items)


def compile_inference(model: Module, example_batch, fuse: bool = True) -> "InferenceSession":
    """Capture one eval-mode ``no_grad`` trace of ``model`` and compile it.

    Parameters
    ----------
    model:
        An eval-mode :class:`~repro.nn.module.Module`; any submodule still
        in training mode is rejected (call ``model.eval()`` first).
    example_batch:
        One input array/Tensor, or a sequence of them, defining the fixed
        shapes (including the batch dimension) the session serves.
    fuse:
        Run the :mod:`repro.autograd.fusion` pass over the captured trace
        (default), so the executor dispatches fused composites
        (``linear_relu`` and friends) and codegen'd ``region`` kernels
        instead of separate nodes.
    """
    if not isinstance(model, Module):
        raise TypeError(
            f"compile_inference expects a repro.nn Module, got {type(model).__name__}"
        )
    training = [name or "<root>" for name, m in model.named_modules() if m.training]
    if training:
        raise ValueError(
            f"compile_inference requires eval mode, but {training[:5]} "
            f"{'is' if len(training) == 1 else 'are'} in train mode; call "
            "model.eval() first"
        )
    inputs = _as_input_tensors(example_batch)
    # Deferral paused for the capture: under the lazy backend an eager
    # elementwise chain would record LazyArray outputs, which the fusion
    # pass cannot extract regions from and the specialized emitters cannot
    # pre-allocate against.  The captured trace *is* the region plan here,
    # so deferring during it buys nothing.
    with no_grad(), pause_deferral(), ir.capture() as graph:
        output = model(*inputs)
    if not isinstance(output, Tensor):
        raise TypeError(
            f"model forward must return a single Tensor, got {type(output).__name__}"
        )
    nodes = ir.toposort(output._node, backward_only=False) if output._node is not None else []
    _reject_training_nodes(nodes)
    _reject_rewrapped_activations(graph, nodes, inputs)
    missing = sorted({n.op for n in nodes if not ir.has_forward(n.op)})
    if missing:
        # Fail at compile, not at the first run()'s KeyError deep in a step.
        raise ValueError(
            f"the captured trace contains ops with no registered forward "
            f"evaluator: {missing}; register one with "
            "repro.autograd.ir.register_forward"
        )
    fused_counts: Dict[str, int] = {}
    if fuse:
        fused_counts = fusion.fuse(output)
        nodes = ir.toposort(output._node, backward_only=False) if output._node is not None else []
    return InferenceSession(inputs, output, nodes, get_backend(), fused_counts, model=model)


class InferenceSession:
    """A compiled, fixed-shape, buffer-reusing replay of one captured trace.

    Not thread-safe (the steps share pre-allocated buffers); give each
    worker its own session.  Use :func:`compile_inference` to build one.
    """

    def __init__(
        self,
        inputs: Tuple[Tensor, ...],
        output: Tensor,
        nodes: List[ir.GraphNode],
        backend,
        fused_counts: Optional[Dict[str, int]] = None,
        model: Optional[Module] = None,
    ) -> None:
        self._be = backend
        #: Replay must see concrete arrays: a deferring backend would hand
        #: the generic steps LazyArrays (and the caller a lazy output), so
        #: ``run`` pauses deferral for the step loop on such backends.
        self._pause_deferral = isinstance(backend, LazyBackend)
        self._model = model
        self._input_meta = [(t.data.shape, t.data.dtype) for t in inputs]
        self.fused_counts = dict(fused_counts or {})
        self.op_counts: Dict[str, int] = ir.op_counts(nodes)
        #: Per-step op names, aligned with the compiled step list — the
        #: labels the op profiler records each replayed step under.
        self._step_ops = [node.op for node in nodes]
        #: Whether any node computes statistics *across* the batch (eval
        #: batch-norm without running statistics): sample outputs then depend
        #: on the other samples in their micro-batch, so chunk boundaries
        #: affect results for such traces.
        self.has_batch_statistics = any(
            node.op in ("batch_norm", "batch_norm_relu")
            and node.attrs["use_batch_stats"]
            for node in nodes
        )

        # Slot assignment: inputs first, then one slot per node output.
        slot_of: Dict[int, int] = {}
        for i, t in enumerate(inputs):
            slot_of[id(t)] = i
        base = len(inputs)
        for j, node in enumerate(nodes):
            slot_of[id(node.out)] = base + j
        self._values: List[Optional[np.ndarray]] = [None] * (base + len(nodes))

        self._steps = [self._emit(node, slot_of) for node in nodes]

        # For a degenerate trace (the model returned an input or a constant)
        # the getter falls through to the input slot / live tensor read.
        self._get_output = self._getter_for(output, slot_of)
        self.output_shape = output.data.shape
        self.output_dtype = output.data.dtype

        # Sever the example trace: the steps captured everything they need
        # (slots, shapes, pre-allocated buffers, live parameter tensors), so
        # the example activations — node outputs, input links, and the big
        # backward-only saved arrays (relu masks, batch-norm xhat) — would
        # otherwise stay pinned for the session's whole lifetime.
        # (No dropout carve-out needed: train-mode traces — the only ones
        # with dropout nodes — were rejected before construction.)
        for node in nodes:
            node.out = None
            node.inputs = ()
            node.bypassed = None
            if node.attrs:
                node.attrs.pop("xhat", None)
                node.attrs.pop("mask", None)

    # ------------------------------------------------------------------ #
    # Public surface
    # ------------------------------------------------------------------ #
    @property
    def batch_size(self) -> int:
        """Leading dimension of the first example input."""
        shape = self._input_meta[0][0]
        if not shape:
            raise ValueError("session inputs are scalars; there is no batch dimension")
        return shape[0]

    @property
    def input_shapes(self) -> List[Tuple[int, ...]]:
        return [shape for shape, _ in self._input_meta]

    @property
    def input_dtypes(self) -> List[np.dtype]:
        return [dtype for _, dtype in self._input_meta]

    @property
    def num_steps(self) -> int:
        return len(self._steps)

    def run(self, *batch: ArrayOrTensor) -> np.ndarray:
        """Replay the compiled trace over ``batch``; returns the logits array.

        The returned array is a buffer owned by the session and overwritten
        by the next call — copy it to keep it.
        """
        meta = self._input_meta
        if len(batch) != len(meta):
            raise ValueError(
                f"session takes {len(meta)} input(s), got {len(batch)}"
            )
        values = self._values
        for i, item in enumerate(batch):
            arr = item.data if isinstance(item, Tensor) else np.asarray(item)
            shape, dtype = meta[i]
            if arr.shape != shape:
                raise ValueError(
                    f"input {i} has shape {arr.shape}; this session was "
                    f"compiled for {shape} (micro-batch with serve_batches() "
                    "or recompile for the new shape)"
                )
            if arr.dtype != dtype:
                # A silent cast would abandon the pre-allocated buffers'
                # bit-equality contract (f64 in, f32 buffers drops precision;
                # f32 in, f64 buffers scores values the eager forward never
                # saw) — dtype is part of the compiled signature, like shape.
                raise ValueError(
                    f"input {i} has dtype {arr.dtype}; this session was "
                    f"compiled for {dtype} (cast the batch explicitly or "
                    "recompile with an example of the new dtype)"
                )
            values[i] = arr
        prev_defer = set_deferral(False) if self._pause_deferral else None
        try:
            profiler = active_profiler()
            if profiler is None:
                for step in self._steps:
                    step(values)
            else:
                # Timing-only instrumentation: the exact same step closures
                # run in the exact same order, so results stay bit-identical.
                perf = time.perf_counter
                for op, step in zip(self._step_ops, self._steps):
                    start = perf()
                    step(values)
                    profiler.record("serve:" + op, perf() - start)
            result = self._get_output(values)
        finally:
            if prev_defer is not None:
                set_deferral(prev_defer)
        # Drop the slot references (caller inputs, generic-step outputs) so
        # a long-lived session does not pin the last batch between calls;
        # the pre-allocated emitter buffers live in the step closures.
        for i in range(len(values)):
            values[i] = None
        return result

    __call__ = run

    def _run_eager_tail(self, arrays: List[np.ndarray]) -> np.ndarray:
        """Eager ``no_grad`` forward for an odd-sized chunk (serve_batches).

        The compiled replay is pinned to the session's fixed batch shape;
        partial chunks fall back to the captured model itself, which is
        correct for any batch size and any trace (including ones whose
        samples interact, where zero-padding would corrupt results).
        """
        model = self._model
        if model is None:
            raise ValueError(
                "this session was built without a model reference; serve a "
                f"multiple of batch_size={self.batch_size} samples"
            )
        training = [name or "<root>" for name, m in model.named_modules() if m.training]
        if training:
            raise RuntimeError(
                f"the compiled model was switched back to train mode "
                f"({training[:3]}); call model.eval() before serving"
            )
        # Pin the compile-time backend: full chunks replay under it, so the
        # tail must too — one request stream, one set of numerics.  Deferral
        # paused so a lazy backend hands back a concrete output array.
        with use_backend(self._be), no_grad(), pause_deferral():
            out = model(
                *(
                    Tensor(a, dtype=meta[1])
                    for a, meta in zip(arrays, self._input_meta)
                )
            )
        return out.data

    # ------------------------------------------------------------------ #
    # Step compilation
    # ------------------------------------------------------------------ #
    def _getter_for(self, tensor: Tensor, slot_of: Dict[int, int]):
        """A ``values -> ndarray`` reader for one tensor.

        Computed tensors and session inputs read their slot; anything else
        (parameters, buffers, wrapped constants) is read through the live
        tensor so in-place parameter updates are picked up per call.
        """
        slot = slot_of.get(id(tensor))
        if slot is not None:
            return lambda values, _s=slot: values[_s]
        return lambda values, _t=tensor: _t.data

    def _emit(self, node: ir.GraphNode, slot_of: Dict[int, int]):
        """Compile one node into a step closure.

        On the built-in backends, hot ops get specialized in-place emitters
        over pre-allocated buffers (bit-equal to the eager kernels); every
        other op — and *every* op on a non-built-in backend — replays
        through the generic IR evaluator, which dispatches through the
        backend itself.
        """
        op = node.op
        attrs = node.attrs or {}
        out_slot = slot_of[id(node.out)]
        getters = [self._getter_for(t, slot_of) for t in node.inputs]
        example = node.out.data
        be = self._be

        if not _is_builtin_backend(be) and op not in ("reshape", "transpose"):
            # Structural ops are backend-independent by the ArrayBackend
            # contract; everything numerical must go through the backend.
            return self._emit_generic(node, getters, out_slot)

        if op in ("linear", "linear_relu") and node.inputs[0].data.ndim == 2:
            buf = np.empty(example.shape, example.dtype)
            gx, gw = getters[0], getters[1]
            gb = getters[2] if len(getters) == 3 else None
            relu = op == "linear_relu"

            def step(values):
                np.matmul(gx(values), gw(values), out=buf)
                if gb is not None:
                    np.add(buf, gb(values), out=buf)
                if relu:
                    np.maximum(buf, 0.0, out=buf)
                values[out_slot] = buf

            return step

        if op == "relu":
            buf = np.empty(example.shape, example.dtype)
            gx = getters[0]

            def step(values):
                np.maximum(gx(values), 0.0, out=buf)
                values[out_slot] = buf

            return step

        if op in ("add", "mul", "div"):
            ufunc = {"add": np.add, "mul": np.multiply, "div": np.divide}[op]
            buf = np.empty(example.shape, example.dtype)
            ga, gb2 = getters[0], getters[1]

            def step(values, _u=ufunc):
                _u(ga(values), gb2(values), out=buf)
                values[out_slot] = buf

            return step

        if op == "neg":
            buf = np.empty(example.shape, example.dtype)
            gx = getters[0]

            def step(values):
                np.negative(gx(values), out=buf)
                values[out_slot] = buf

            return step

        if op == "add_relu":
            buf = np.empty(example.shape, example.dtype)
            ga, gb2 = getters[0], getters[1]

            def step(values):
                np.add(ga(values), gb2(values), out=buf)
                np.maximum(buf, 0.0, out=buf)
                values[out_slot] = buf

            return step

        if op == "mul_add" and attrs["p_shape"] == example.shape:
            buf = np.empty(example.shape, example.dtype)
            ga, gb2, gc = getters

            def step(values):
                np.multiply(ga(values), gb2(values), out=buf)
                np.add(buf, gc(values), out=buf)
                values[out_slot] = buf

            return step

        if op == "region":
            # One codegen'd kernel for the whole extracted elementwise
            # region (compiled C when available, the bit-equal numpy
            # interpreter otherwise), writing into a pre-allocated buffer.
            # The fusion plan cache is structure-keyed, so the recorded
            # RegionIR may carry the shapes of an earlier, differently-sized
            # trace; respecialize to this trace's live shapes before
            # compiling (mirrors replay's _region_for_arrays).
            region = attrs["region"]
            shapes = [t.data.shape for t in node.inputs]
            if [inp.shape for inp in region.inputs if inp.const is None] != shapes:
                region = region.respecialize(shapes)
            # Bucket kernels are shape-stable by construction (one compiled
            # plan per padded batch size), so ask the backend for a
            # shape-specialized kernel: constant loop bounds and literal
            # strides instead of runtime dims.  Backends whose
            # ``compile_region`` predates the keyword get the positional
            # call (same values, dynamic bounds).
            try:
                kern = be.compile_region(region, specialize=True)
            except TypeError:
                kern = be.compile_region(region)
            buf = np.empty(example.shape, example.dtype)

            def step(values):
                kern([g(values) for g in getters], out=buf)
                values[out_slot] = buf

            return step

        if op in ("batch_norm", "batch_norm_relu") and not attrs["use_batch_stats"]:
            # Eval-mode statistics are constants of the trace: fold the
            # reshapes once; gamma/beta stay late-bound parameter reads.
            bshape = attrs["bshape"]
            mean_r = np.ascontiguousarray(attrs["mean"].reshape(bshape))
            inv_r = np.ascontiguousarray(attrs["inv_std"].reshape(bshape))
            g_gamma = getters[1] if attrs["has_weight"] else None
            g_beta = (
                (getters[2] if attrs["has_weight"] else getters[1])
                if attrs["has_bias"]
                else None
            )
            relu = op == "batch_norm_relu"
            buf = np.empty(example.shape, example.dtype)
            gx = getters[0]

            def step(values):
                np.subtract(gx(values), mean_r, out=buf)
                np.multiply(buf, inv_r, out=buf)
                if g_gamma is not None:
                    np.multiply(buf, g_gamma(values).reshape(bshape), out=buf)
                if g_beta is not None:
                    np.add(buf, g_beta(values).reshape(bshape), out=buf)
                if relu:
                    np.maximum(buf, 0.0, out=buf)
                values[out_slot] = buf

            return step

        if op == "conv2d":
            return self._emit_conv2d(node, attrs, getters, out_slot, example, slot_of)

        if op == "max_pool2d":
            return self._emit_max_pool2d(node, attrs, getters, out_slot, example, slot_of)

        if op == "reshape":
            shape = attrs["shape"]
            gx = getters[0]

            def step(values):
                values[out_slot] = gx(values).reshape(shape)

            return step

        if op == "transpose":
            axes = attrs["axes"]
            gx = getters[0]

            def step(values):
                values[out_slot] = gx(values).transpose(axes)

            return step

        if op == "concat":
            axis = attrs["axis"]
            buf = np.empty(example.shape, example.dtype)

            def step(values):
                np.concatenate([g(values) for g in getters], axis=axis, out=buf)
                values[out_slot] = buf

            return step

        # Everything else (avg-pooling, softmax family, reductions, ...)
        # replays through the registered IR forward evaluator — identical
        # math, allocating its own output.
        return self._emit_generic(node, getters, out_slot)

    def _emit_generic(self, node: ir.GraphNode, getters, out_slot):
        be = self._be

        def step(values):
            values[out_slot] = ir.evaluate_node(
                node, be, tuple(g(values) for g in getters)
            )

        return step

    def _emit_conv2d(self, node, attrs, getters, out_slot, example, slot_of):
        """Conv replay with every workspace pre-allocated.

        Runs the exact arithmetic of the im2col kernel: the patch matrix is
        laid out the way ``np.tensordot`` lays it out internally, the weight
        operand is the same no-copy F-contiguous ``transpose().reshape()``
        view tensordot builds (same BLAS operand layouts → same bits), and
        the contraction is the same 2-D GEMM — but the padded image, the
        patch matrix and the GEMM output live in buffers allocated once at
        compile time.  The strided window view is hoisted out of the call
        too: a session is shape-stable, so the view over the padded buffer
        is a compile-time constant, and for unpadded convs the view over a
        stable upstream buffer is built once and revalidated by identity.
        """
        (sh, sw), (ph, pw) = attrs["stride"], attrs["padding"]
        xd, wd = node.inputs[0].data, node.inputs[1].data
        n, c, h, w = xd.shape
        oc, _, kh, kw = wd.shape
        oh, ow = example.shape[2], example.shape[3]
        gx, gw = getters[0], getters[1]
        gb = getters[2] if len(getters) == 3 else None
        dtype = example.dtype

        # Zero-initialised once: the interior is overwritten every call and
        # the padding border stays zero.
        xp_buf = (
            np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype) if (ph or pw) else None
        )
        patches = np.empty((n, oh, ow, c, kh, kw), dtype)
        patches2d = patches.reshape(n * oh * ow, c * kh * kw)
        gemm_out = np.empty((n * oh * ow, oc), dtype)
        gemm4d = gemm_out.reshape(n, oh, ow, oc)
        buf = np.empty(example.shape, dtype)

        def win_t_of(xp):
            win = sliding_window_view(xp, (kh, kw), axis=(2, 3))[:, :, ::sh, ::sw]
            return win.transpose(0, 2, 3, 1, 4, 5)

        if xp_buf is not None:
            # Padded: the view base is the session-owned padded buffer, so
            # the window view itself is a compile-time constant.
            win_t = win_t_of(xp_buf)

            def step(values):
                xp_buf[:, :, ph : ph + h, pw : pw + w] = gx(values)
                np.copyto(patches, win_t)
                # The F-contiguous no-copy view tensordot itself hands to
                # BLAS; a C-contiguous copy here would change sgemm's
                # summation path (and the result's last bits) at some shapes.
                wmat = gw(values).transpose(1, 2, 3, 0).reshape(c * kh * kw, oc)
                np.matmul(patches2d, wmat, out=gemm_out)
                np.copyto(buf, gemm4d.transpose(0, 3, 1, 2))
                if gb is not None:
                    np.add(buf, gb(values).reshape(1, -1, 1, 1), out=buf)
                values[out_slot] = buf

            return step

        # Unpadded: the view base is whatever array the input getter hands
        # back.  Interior steps write fixed session-owned buffers, so cache
        # the view keyed by the base array's identity — the cached strong
        # reference makes the ``is`` check exact (a live object's id cannot
        # be reused).  Raw session inputs are rebound every call, and
        # caching one would pin the caller's batch between calls, so those
        # keep the per-call view construction.
        in_slot = slot_of.get(id(node.inputs[0]))
        cacheable = not (in_slot is not None and in_slot < len(self._input_meta))
        cache = [None, None]

        def step(values):
            x = gx(values)
            if x is cache[0]:
                win_t = cache[1]
            else:
                win_t = win_t_of(x)
                if cacheable:
                    cache[0], cache[1] = x, win_t
            np.copyto(patches, win_t)
            wmat = gw(values).transpose(1, 2, 3, 0).reshape(c * kh * kw, oc)
            np.matmul(patches2d, wmat, out=gemm_out)
            np.copyto(buf, gemm4d.transpose(0, 3, 1, 2))
            if gb is not None:
                np.add(buf, gb(values).reshape(1, -1, 1, 1), out=buf)
            values[out_slot] = buf

        return step

    def _emit_max_pool2d(self, node, attrs, getters, out_slot, example, slot_of):
        """Max-pool replay with the window matrix and argmax pre-allocated.

        Like conv, the window view is hoisted (compile-time over the padded
        buffer, identity-cached over a stable upstream buffer), and the
        winner gather runs as one flat ``np.take`` over precomputed base
        offsets instead of rebuilding ``take_along_axis`` index grids per
        call — the same elements copied either way, so bits are unchanged.
        """
        (kh, kw), (sh, sw), (ph, pw) = (
            attrs["kernel_size"], attrs["stride"], attrs["padding"]
        )
        xd = node.inputs[0].data
        n, c, h, w = xd.shape
        oh, ow = example.shape[2], example.shape[3]
        gx = getters[0]
        dtype = example.dtype

        if ph or pw:
            # -inf border written once; the interior is refreshed per call.
            xp_buf = np.full((n, c, h + 2 * ph, w + 2 * pw), -np.inf, dtype)
        else:
            xp_buf = None
        flat = np.empty((n, c, oh, ow, kh * kw), dtype)
        flat6d = flat.reshape(n, c, oh, ow, kh, kw)
        flat1d = flat.reshape(-1)
        arg = np.empty((n, c, oh, ow), dtype=np.intp)
        base_idx = (
            np.arange(n * c * oh * ow, dtype=np.intp) * (kh * kw)
        ).reshape(n, c, oh, ow)
        idx = np.empty((n, c, oh, ow), dtype=np.intp)
        buf = np.empty(example.shape, dtype)

        def win_of(xp):
            return sliding_window_view(xp, (kh, kw), axis=(2, 3))[:, :, ::sh, ::sw]

        def gather(win):
            np.copyto(flat6d, win)
            np.argmax(flat, axis=-1, out=arg)
            np.add(base_idx, arg, out=idx)
            np.take(flat1d, idx, out=buf)

        if xp_buf is not None:
            win = win_of(xp_buf)

            def step(values):
                xp_buf[:, :, ph : ph + h, pw : pw + w] = gx(values)
                gather(win)
                values[out_slot] = buf

            return step

        in_slot = slot_of.get(id(node.inputs[0]))
        cacheable = not (in_slot is not None and in_slot < len(self._input_meta))
        cache = [None, None]

        def step(values):
            x = gx(values)
            if x is cache[0]:
                win = cache[1]
            else:
                win = win_of(x)
                if cacheable:
                    cache[0], cache[1] = x, win
            gather(win)
            values[out_slot] = buf

        return step


def _is_builtin_backend(be) -> bool:
    """Whether ``be`` is exactly one of the built-in numpy backends.

    The specialized step emitters rewrite kernels as raw in-place numpy
    chains that are validated bit-equal against :class:`NumpyBackend` and
    :class:`FusedNumpyBackend` — but only against those.
    :class:`LazyBackend` also qualifies: sessions capture and replay with
    deferral paused, where its primitives *are* ``NumpyBackend``'s.  Any
    other backend (a subclass with overridden methods, a third-party
    registration) gets the generic IR evaluators, which dispatch every
    operation through the backend itself.
    """
    return type(be) in (NumpyBackend, FusedNumpyBackend, LazyBackend)


def serve_batches(
    session: InferenceSession,
    batch,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Serve arbitrarily many samples through a fixed-batch session.

    ``batch`` is one array/Tensor or a sequence of them (one per session
    input), each with the same leading sample count ``n`` — any ``n``, not
    just the session's batch size.  Full micro-batches are served as
    zero-copy slices through the compiled replay; an odd-sized *final*
    chunk runs through the compiled model's eager ``no_grad`` forward
    instead (bit-correct for any trace, including ones whose samples
    interact through batch statistics — zero-padding would corrupt those),
    which requires the session to have been built by
    :func:`compile_inference` (it keeps the model reference) with the model
    still in eval mode.  Outputs are copied out of the session's reused
    buffer into one ``(n, ...)`` result array (pass ``out`` to reuse your
    own).

    For production request streams prefer
    :class:`repro.serve.SessionPool`, which decomposes any sample count
    into a set of bucketed compiled sessions (so odd sizes still replay
    compiled code) and demotes this eager fallback to a last resort.
    """
    arrays = _coerce_arrays(batch)
    if len(arrays) != len(session.input_shapes):
        raise ValueError(
            f"session takes {len(session.input_shapes)} input(s), got {len(arrays)}"
        )
    n = arrays[0].shape[0] if arrays[0].ndim else 0
    for i, a in enumerate(arrays):
        if a.ndim == 0 or a.shape[0] != n:
            raise ValueError(
                "serve_batches needs a shared leading sample dimension; "
                f"input 0 has {n} samples, input {i} has shape {a.shape}"
            )
        if a.shape[1:] != session.input_shapes[i][1:]:
            raise ValueError(
                f"input {i} has per-sample shape {a.shape[1:]}, session "
                f"expects {session.input_shapes[i][1:]}"
            )
        if a.dtype != session.input_dtypes[i]:
            raise ValueError(
                f"input {i} has dtype {a.dtype}, session was compiled for "
                f"{session.input_dtypes[i]} (a silent cast would break the "
                "bit-equality contract)"
            )
    size = session.batch_size
    if not session.output_shape or session.output_shape[0] != size:
        raise ValueError(
            "serve_batches needs a per-sample session output of shape "
            f"(batch, ...); this session produces {session.output_shape} for "
            f"batch size {size} (a reduced/scalar output cannot be chunked)"
        )
    result_shape = (n,) + session.output_shape[1:]
    if out is None:
        out = np.empty(result_shape, dtype=session.output_dtype)
    elif out.shape != result_shape:
        raise ValueError(f"out has shape {out.shape}, expected {result_shape}")
    elif out.dtype != session.output_dtype:
        raise ValueError(
            f"out has dtype {out.dtype}, expected {session.output_dtype} "
            "(a mismatched buffer would silently cast the results)"
        )
    if n == 0:
        # Pinned behavior, not an accident of the loop: an empty request
        # stream yields an empty (0, ...) result without touching the
        # session or the eager path.
        return out
    for start in range(0, n, size):
        stop = min(start + size, n)
        if stop - start == size:
            chunk = session.run(*(a[start:stop] for a in arrays))
        else:
            # The final partial micro-batch runs through the model's eager
            # no_grad forward instead of a zero-padded replay: padding would
            # silently corrupt any trace whose samples interact (eval
            # batch-norm on batch statistics, axis-0 reductions, ...), while
            # the eager forward of exactly these samples is correct for
            # every trace shape.
            chunk = session._run_eager_tail([a[start:stop] for a in arrays])
        out[start:stop] = chunk[: stop - start]
    return out
