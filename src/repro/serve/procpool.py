"""Process-sharded serving: multiprocessing workers over shared memory.

:class:`ProcServer` is the :class:`~repro.serve.frontend.Server` with its
worker substrate swapped out: each :class:`~repro.serve.resilience
.WorkerSlot` drives a **worker process** instead of compiling a local
:class:`~repro.serve.frontend.SessionPool`.  Everything above the slot —
request queue, coalescing, backpressure, deadlines, retry/bisection,
watchdog supervision, metrics, spans — is inherited unchanged; the slot's
pool is a :class:`_ProcWorkerProxy` that keeps the ``SessionPool`` serving
surface while shipping batches across process boundaries:

- **Parameters** live in one versioned double-banked
  :class:`~repro.serve.arena.ParamArena`; every worker maps them as
  zero-copy numpy views and rebinds at batch boundaries when
  :meth:`ProcServer.publish_weights` bumps the version (hot weight swap
  without restart or recompile — unless the published *buffers* changed,
  which forces a worker-side recompile because eval batch-norm statistics
  are folded into the compiled session).
- **Requests/results** move through per-worker
  :class:`~repro.serve.arena.RequestRing` slots; only ``(slot, n,
  deadline)`` control tuples cross the ``Pipe``, so no request array is
  pickled on the hot path.  Requests larger than the ring capacity take a
  pickled cold path (counted by
  ``repro_serve_proc_pipe_fallback_total``).
- **Determinism** propagates: the parent's backend selection, fusion and
  codegen toggles, and the seeded global RNG state are applied inside
  every worker under both ``fork`` and ``spawn`` start methods, so
  process-mode results are bit-identical to thread-mode.
- **Resilience** keeps the PR 6 contract: a worker process dying (crash
  *or* SIGKILL) surfaces as :class:`~repro.serve.resilience.WorkerKill`,
  re-queues the in-flight batch and respawns through the existing
  watchdog (crash counting, backoff, crash-loop retirement); injected
  kills from :mod:`repro.serve.faults` take the real OS process down;
  stuck workers are killed before replacement; :meth:`ProcServer.stop`
  is bounded and never leaks a ``/dev/shm`` segment.

Start-method caveats: ``fork`` (the Linux default) inherits the live
model and imports for free; ``spawn`` re-imports everything per worker
and needs a *picklable* model — pass ``model_factory`` (a zero-arg
callable rebuilding the architecture; the arena supplies the weights) or
rely on the model pickling cleanly.  Worker RNG state is captured once
at server construction; respawned workers restart from that snapshot.
"""

from __future__ import annotations

import itertools
import os
import pickle
import threading
import time
import traceback
import weakref
from typing import Dict, List, Optional, Sequence, Tuple

import multiprocessing as mp

import numpy as np

from repro.autograd.fusion import enable_fusion, fusion_enabled
from repro.autograd.tensor import Tensor, no_grad
from repro.backend import get_backend, use_backend
from repro.backend.lazy import pause_deferral
from repro.backend.registry import get_rng_state, set_backend, set_rng_state
from repro.codegen.jit import (
    codegen_enabled,
    codegen_stats,
    enable_codegen,
    ingest_worker_codegen_stats,
)
from repro.nn.module import Module
from repro.serve.arena import ParamArena, RequestRing
from repro.serve.frontend import (
    DEFAULT_BUCKETS,
    Server,
    SessionPool,
    _NULL_COUNTER,
    _normalize_buckets,
)
from repro.serve.resilience import DeadlineExceeded, WorkerKill, WorkerSlot
from repro.serve.session import _as_input_tensors, _coerce_arrays

__all__ = ["ProcServer"]

_START_METHODS = ("fork", "spawn", "forkserver")

#: Environment toggles mirrored into every worker process (spawn loses the
#: parent's interpreter state; fork keeps it, but the explicit programmatic
#: overrides below win either way).
_ENV_KEYS = ("REPRO_BACKEND", "REPRO_FUSION", "REPRO_CODEGEN",
             "REPRO_KERNEL_CACHE")


# ---------------------------------------------------------------------- #
# Worker-process side
# ---------------------------------------------------------------------- #
class _ParamBinder:
    """Rebinds a worker's model tensors onto arena bank views.

    Parameters are swapped by assigning ``param.data`` — compiled sessions
    read parameter arrays through live attribute getters, so a rebind is
    picked up on the next replay without recompiling.  Buffers are swapped
    in the owning module's ``_buffers`` dict; eval batch-norm folds its
    buffers into compiled constants, so :meth:`refresh` reports when
    buffer *bytes* changed and the caller must recompile its pool.
    """

    def __init__(self, model: Module, arena: ParamArena,
                 buffer_keys: Sequence[str]) -> None:
        self._arena = arena
        self._buffer_keys = list(buffer_keys)
        self._params = dict(model.named_parameters())
        self._buffer_owners: Dict[str, Tuple[Module, str]] = {}
        for prefix, module in model.named_modules():
            for bname in module._buffers:
                full = f"{prefix}.{bname}" if prefix else bname
                self._buffer_owners[full] = (module, bname)
        self.version = 0
        self._bank: Optional[int] = None

    def adopt(self) -> None:
        version, bank = self._arena.read_header()
        views = self._arena.views(bank)
        for name, param in self._params.items():
            param.data = views[name]
        for name, (module, bname) in self._buffer_owners.items():
            # Straight into the dict: Module.__setattr__ would copy, and
            # the whole point is aliasing the shared pages.
            module._buffers[bname] = views[name]
        self.version, self._bank = version, bank

    def refresh(self) -> str:
        """Adopt any newer published bank.

        Returns ``"unchanged"``, ``"params"`` (rebound, compiled sessions
        stay valid) or ``"recompile"`` (buffer bytes changed — folded
        batch-norm constants are stale).
        """
        version, bank = self._arena.read_header()
        if version == self.version:
            return "unchanged"
        recompile = False
        if self._buffer_keys:
            if version - self.version == 1 and bank != self._bank:
                old = self._arena.views(self._bank)
                new = self._arena.views(bank)
                recompile = any(
                    old[k].tobytes() != new[k].tobytes()
                    for k in self._buffer_keys
                )
            else:
                # Missed publishes wrapped the banks; the old bytes are
                # gone, so assume the worst.
                recompile = True
        self.adopt()
        return "recompile" if recompile else "params"


def _build_worker_model(payload) -> Module:
    kind, value = payload
    if kind == "live":
        model = value
    elif kind == "factory":
        model = value()
    else:  # "pickle"
        model = pickle.loads(value)
    if not isinstance(model, Module):
        raise TypeError(f"worker model payload produced {type(model).__name__}")
    model.eval()
    return model


def _worker_main(spec: dict, conn) -> None:
    """Worker-process entry point: apply environment, build the pool,
    serve ring slots until told to stop (or the pipe dies)."""
    try:
        for key, value in spec["env"].items():
            os.environ[key] = value
        set_backend(spec["backend"])
        enable_fusion(spec["fusion"])
        enable_codegen(spec["codegen"])
        model = _build_worker_model(spec["model"])
        # After model construction: factory init draws must not perturb
        # the propagated stream.
        set_rng_state(spec["rng_state"])
        arena = ParamArena.attach(spec["arena"])
        ring = RequestRing.attach(spec["ring"])
        binder = _ParamBinder(model, arena, spec["buffer_keys"])
        binder.adopt()
        example = [np.array(a) for a in spec["example"]]

        def build_pool() -> SessionPool:
            return SessionPool(model, example, spec["buckets"],
                               fuse=spec["fuse"])

        pool = build_pool()
        # Pool construction is where this process compiles its bucket
        # kernels, so the codegen counters are settled: snapshot them into
        # the handshake and let the parent fold them into its /metrics
        # (labeled mode="process" — a worker's disk hits are invisible to
        # the parent's in-process counters otherwise).
        conn.send(("ready", os.getpid(), binder.version,
                   pool.has_batch_statistics, codegen_stats()))
    except BaseException:
        try:
            conn.send(("fatal", traceback.format_exc()))
        except Exception:
            pass
        return

    delay = float(spec.get("serve_delay") or 0.0)
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                return  # parent went away
            tag = msg[0]
            if tag == "stop":
                return
            if tag == "probe":
                reply = {
                    "pid": os.getpid(),
                    "backend": get_backend().name,
                    "fusion": fusion_enabled(),
                    "codegen": codegen_enabled(),
                    "env": {k: os.environ.get(k) for k in _ENV_KEYS},
                    "arena_version": binder.version,
                }
                if msg[1]:  # draw one value from the propagated RNG stream
                    from repro.backend.registry import default_rng
                    reply["rng_draw"] = float(default_rng().standard_normal())
                conn.send(("probe_ok", reply))
                continue
            # ("serve", slot, n, remaining) | ("serve_obj", arrays, remaining)
            received_at = time.monotonic()
            remaining = msg[3] if tag == "serve" else msg[2]
            deadline = None if remaining is None else received_at + remaining
            try:
                if binder.refresh() == "recompile":
                    pool = build_pool()
                if delay:
                    time.sleep(delay)
                if deadline is not None and time.monotonic() > deadline:
                    conn.send(("expired", binder.version))
                    continue
                if tag == "serve":
                    _, slot, n, _ = msg
                    views = ring.input_views(slot, n)
                    pool.serve(views, out=ring.output_view(slot, n))
                    conn.send(("ok", binder.version))
                else:
                    result = pool.serve(msg[1])
                    conn.send(("ok_obj", result, binder.version))
            except BaseException as exc:
                try:
                    conn.send(("err", exc, binder.version))
                except Exception:
                    conn.send(("err",
                               RuntimeError(f"{type(exc).__name__}: {exc}"),
                               binder.version))
    finally:
        ring.close()
        arena.close()


# ---------------------------------------------------------------------- #
# Parent side
# ---------------------------------------------------------------------- #
class _ProcWorkerProxy:
    """Parent-side stand-in for a worker process's ``SessionPool``.

    Implements exactly the surface :class:`Server` uses — ``serve`` /
    ``validate`` / ``decompose`` / the shape-and-dtype metadata / the
    routing counters — so coalescing, retries, bisection, fault injection
    and stats all work unchanged.  ``serve`` copies the coalesced batch
    into a ring slot, sends a control tuple, and blocks until the worker
    replies or its process dies (which raises :class:`WorkerKill`, the
    same signal an injected thread kill uses, so the whole supervision
    path downstream is shared).
    """

    def __init__(self, server: "ProcServer", pool_metrics,
                 fuse: bool = True) -> None:
        self._server_ref = weakref.ref(server)
        self.index = next(server._proxy_ids)
        self._ctx = server._ctx
        self._spec = dict(server._base_spec)
        self._spec["fuse"] = bool(fuse)
        self._buckets = server._norm_buckets
        self._per_sample_shapes = [s for s, _ in server._input_specs]
        self._dtypes = [d for _, d in server._input_specs]
        self._out_per_sample, self.output_dtype = server._out_spec
        self.has_batch_statistics = server._has_batch_statistics
        bucket_counters, eager_counter = pool_metrics
        self._m_bucket = {
            b: bucket_counters.get(b, _NULL_COUNTER) for b in self._buckets
        }
        self._m_eager = eager_counter
        self.bucket_calls: Dict[int, int] = {b: 0 for b in self._buckets}
        self.eager_calls = 0
        #: Last arena version the worker reported back.
        self.arena_version: Optional[int] = None
        #: Process respawns for this proxy (crash recovery).
        self.restarts = 0
        #: Idle-crash backoff state for ProcServer._sweep_extra.
        self.proc_crashes = 0
        self.next_respawn_at: Optional[float] = None
        self._ring = RequestRing.create(
            server._input_specs, server._out_spec,
            capacity=server._ring_capacity, slots=server._ring_slots,
        )
        self._spec["ring"] = self._ring.spec()
        self._io_lock = threading.Lock()
        self._deadline_hint: Optional[float] = None
        self._next_slot = 0
        self._destroyed = False
        self._proc = None
        self._conn = None
        self._awaiting_ready = True
        self._start_process()

    # -------------------------- process lifecycle --------------------- #
    def _start_process(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        suffix = f"-r{self.restarts}" if self.restarts else ""
        proc = self._ctx.Process(
            target=_worker_main,
            args=(self._spec, child_conn),
            name=f"repro-serve-proc-{self.index}{suffix}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._proc, self._conn = proc, parent_conn
        self._awaiting_ready = True

    @property
    def pid(self) -> Optional[int]:
        proc = self._proc
        return proc.pid if proc is not None else None

    def process_alive(self) -> bool:
        proc = self._proc
        return proc is not None and proc.is_alive()

    def kill_process(self) -> None:
        """SIGKILL the worker process (fault injection / stuck handling)."""
        proc = self._proc
        if proc is not None and proc.is_alive():
            proc.kill()

    def respawn(self) -> None:
        """Replace a dead worker process (serialized with in-flight I/O)."""
        with self._io_lock:
            if self._destroyed:
                return
            self._close_conn()
            proc = self._proc
            if proc is not None:
                if proc.is_alive():
                    proc.kill()
                proc.join(timeout=5.0)
            self.restarts += 1
            server = self._server_ref()
            if server is not None:
                server._m_proc_respawns.inc()
            self._start_process()

    def ensure_process(self) -> None:
        """Respawn iff the process is dead (idempotent; used by _spawn)."""
        if not self.process_alive():
            self.respawn()

    def _close_conn(self) -> None:
        conn, self._conn = self._conn, None
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop the process and destroy the ring segment (idempotent)."""
        with self._io_lock:
            if self._destroyed:
                return
            self._destroyed = True
            proc, conn = self._proc, self._conn
            if conn is not None:
                try:
                    conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
            if proc is not None:
                proc.join(timeout=max(0.1, timeout))
                if proc.is_alive():
                    proc.kill()
                    proc.join(timeout=1.0)
            self._close_conn()
            self._ring.destroy()

    # --------------------------- pool surface ------------------------- #
    @property
    def buckets(self) -> Tuple[int, ...]:
        return self._buckets

    @property
    def max_bucket(self) -> int:
        return self._buckets[0]

    @property
    def input_dtypes(self) -> List[np.dtype]:
        return list(self._dtypes)

    @property
    def per_sample_shapes(self) -> List[Tuple[int, ...]]:
        return list(self._per_sample_shapes)

    # validate/decompose mirror SessionPool exactly: routing must be
    # byte-for-byte the decision the worker's own pool will make.
    validate = SessionPool.validate
    decompose = SessionPool.decompose

    def set_deadline_hint(self, deadline: Optional[float]) -> None:
        """Latest deadline of the next batch (monotonic), from the server."""
        self._deadline_hint = deadline

    # ------------------------------ serving --------------------------- #
    def serve(self, batch, out: Optional[np.ndarray] = None) -> np.ndarray:
        arrays = _coerce_arrays(batch)
        n = self.validate(arrays)
        result_shape = (n,) + self._out_per_sample
        if out is None:
            out = np.empty(result_shape, dtype=self.output_dtype)
        elif out.shape != result_shape:
            raise ValueError(f"out has shape {out.shape}, expected {result_shape}")
        elif out.dtype != self.output_dtype:
            raise ValueError(
                f"out has dtype {out.dtype}, expected {self.output_dtype}"
            )
        if n == 0:
            return out
        hint, self._deadline_hint = self._deadline_hint, None
        remaining = None if hint is None else hint - time.monotonic()
        with self._io_lock:
            if self._destroyed:
                raise WorkerKill("worker was shut down")
            self._ensure_ready()
            if n <= self._ring.capacity:
                slot = self._next_slot
                self._next_slot = (slot + 1) % self._ring.slots
                for view, arr in zip(self._ring.input_views(slot, n), arrays):
                    view[...] = arr
                self._send(("serve", slot, n, remaining))
                reply = self._recv()
                self._handle_reply_errors(reply)
                out[...] = self._ring.output_view(slot, n)
            else:
                # Oversized request: the cold pickled path.
                server = self._server_ref()
                if server is not None:
                    server._m_pipe_fallback.inc()
                payload = [np.ascontiguousarray(a) for a in arrays]
                self._send(("serve_obj", payload, remaining))
                reply = self._recv()
                self._handle_reply_errors(reply)
                out[...] = reply[1]
        # Recompute the worker's routing decisions parent-side (decompose
        # is deterministic and shared), so bucket counters stay live
        # without extra IPC.
        chunks, remainder = self.decompose(n)
        for bucket in chunks:
            self.bucket_calls[bucket] += 1
            self._m_bucket[bucket].inc()
        if remainder:
            self.eager_calls += 1
            self._m_eager.inc()
        return out

    __call__ = serve

    def _handle_reply_errors(self, reply) -> None:
        tag = reply[0]
        self.arena_version = reply[-1] if isinstance(reply[-1], int) else self.arena_version
        if tag in ("ok", "ok_obj"):
            return
        if tag == "expired":
            raise DeadlineExceeded(
                "every request in the batch expired before the worker "
                "process picked it up"
            )
        if tag == "err":
            raise reply[1]
        raise RuntimeError(f"unexpected worker reply {tag!r}")

    def _ensure_ready(self) -> None:
        """Consume the ("ready", ...) handshake after (re)spawn."""
        if not self._awaiting_ready:
            return
        server = self._server_ref()
        timeout = server._spawn_timeout if server is not None else 120.0
        reply = self._recv(timeout=timeout)
        if reply[0] == "fatal":
            self.kill_process()
            raise RuntimeError(
                f"worker process failed to start:\n{reply[1]}"
            )
        if reply[0] != "ready":
            raise RuntimeError(f"unexpected startup reply {reply[0]!r}")
        _, pid, version, has_bs = reply[:4]
        self.arena_version = version
        self.has_batch_statistics = has_bs
        if len(reply) > 4 and reply[4]:
            # Worker compile/cache counters, snapshotted after its pool
            # build; fold into the parent's labeled mode="process" series.
            ingest_worker_codegen_stats(reply[4])
        self._awaiting_ready = False

    def probe(self, rng_draw: bool = False, timeout: float = 30.0) -> dict:
        """Ask the worker process to report its effective settings
        (backend, fusion/codegen toggles, env, pid; optionally one draw
        from its propagated RNG stream).  Test/debug surface."""
        with self._io_lock:
            self._ensure_ready()
            self._send(("probe", bool(rng_draw)))
            reply = self._recv(timeout=timeout)
        if reply[0] != "probe_ok":
            raise RuntimeError(f"unexpected probe reply {reply[0]!r}")
        return reply[1]

    # ------------------------------- I/O ------------------------------ #
    def _send(self, msg) -> None:
        conn = self._conn
        if conn is None:
            raise WorkerKill("worker pipe is closed")
        try:
            conn.send(msg)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerKill(f"worker pipe broke on send: {exc}") from None

    def _recv(self, timeout: Optional[float] = None):
        """Wait for one reply, polling so a dead process is noticed even
        when it never wrote EOF (SIGKILL mid-write, kernel OOM, ...)."""
        conn, proc = self._conn, self._proc
        deadline = time.monotonic() + timeout if timeout is not None else None
        while True:
            if conn is None:
                raise WorkerKill("worker pipe is closed")
            try:
                if conn.poll(0.05):
                    return conn.recv()
            except (EOFError, OSError):
                raise WorkerKill(
                    f"worker process pid={self.pid} closed its pipe "
                    f"(exitcode={proc.exitcode if proc else None})"
                ) from None
            if proc is not None and not proc.is_alive():
                # Drain one last time: the reply may have been in flight
                # when the process exited.
                try:
                    if conn.poll(0):
                        return conn.recv()
                except (EOFError, OSError):
                    pass
                raise WorkerKill(
                    f"worker process pid={self.pid} died "
                    f"(exitcode={proc.exitcode})"
                )
            if deadline is not None and time.monotonic() > deadline:
                self.kill_process()
                raise WorkerKill(
                    f"worker process pid={self.pid} did not reply within "
                    f"{timeout}s; killed"
                )


def _finalize_shared(arena: ParamArena, proxies: List[_ProcWorkerProxy]) -> None:
    """GC/exit safety net: never leak segments even without stop()."""
    for proxy in list(proxies):
        try:
            proxy.kill_process()
            proxy.shutdown(timeout=0.5)
        except Exception:
            pass
    try:
        arena.destroy()
    except Exception:
        pass


class ProcServer(Server):
    """A :class:`Server` whose workers are OS processes over shared memory.

    Parameters (beyond the inherited :class:`Server` ones)
    -----------------------------------------------------
    start_method:
        ``"fork"`` (Linux default; inherits the live model and imports) or
        ``"spawn"`` (fresh interpreter per worker; needs a picklable model
        or ``model_factory``).  Defaults to ``REPRO_PROC_START_METHOD`` or
        the platform default.
    model_factory:
        Zero-arg picklable callable rebuilding the model *architecture*
        in the worker (weights always come from the arena).  Required
        under ``spawn`` when the model itself does not pickle.
    ring_slots:
        In-flight batch slots per worker ring (default 2: one serving,
        one staging).
    ring_capacity:
        Samples per ring slot; defaults to ``max(max_batch_size,
        largest bucket)``.  Bigger requests take the pickled cold path.
    worker_latency:
        Artificial per-batch delay *inside* the worker process, seconds —
        the cross-process arm of :mod:`repro.serve.faults` (deterministic
        slow-worker injection; also how the tests hold a batch in flight
        to SIGKILL it mid-serve).
    spawn_timeout:
        Seconds to wait for a worker's ready handshake (spawn pays
        interpreter + compile startup) before declaring it dead.

    The parent holds the reference model: mutate its parameters and call
    :meth:`publish_weights` to hot-swap every worker at their next batch
    boundary.
    """

    mode = "process"

    def __init__(
        self,
        model: Module,
        example_batch,
        buckets: Sequence[int] = DEFAULT_BUCKETS,
        *,
        start_method: Optional[str] = None,
        model_factory=None,
        ring_slots: int = 2,
        ring_capacity: Optional[int] = None,
        worker_latency: float = 0.0,
        spawn_timeout: float = 120.0,
        max_batch_size: Optional[int] = None,
        **kwargs,
    ) -> None:
        method = (start_method
                  or os.environ.get("REPRO_PROC_START_METHOD")
                  or mp.get_start_method())
        if method not in _START_METHODS:
            raise ValueError(
                f"start_method must be one of {_START_METHODS}, got {method!r}"
            )
        training = [name or "<root>" for name, m in model.named_modules()
                    if m.training]
        if training:
            raise ValueError(
                f"ProcServer requires an eval-mode model, but {training[:5]} "
                "is in train mode; call model.eval() first"
            )
        if ring_slots < 1:
            raise ValueError(f"ring_slots must be >= 1, got {ring_slots}")
        self._ctx = mp.get_context(method)
        self._start_method = method
        self._norm_buckets = _normalize_buckets(buckets)
        examples = [t.data for t in _as_input_tensors(example_batch)]
        for i, arr in enumerate(examples):
            if arr.ndim == 0 or arr.shape[0] < 1:
                raise ValueError(
                    f"example input {i} needs a leading sample dimension, "
                    f"got shape {arr.shape}"
                )
        self._input_specs = [(a.shape[1:], a.dtype) for a in examples]
        self._out_spec = self._probe_output(model, examples)
        self._has_batch_statistics = False  # refined by the ready handshake
        default_capacity = max(self._norm_buckets[0],
                               int(max_batch_size or 0))
        self._ring_capacity = int(ring_capacity or default_capacity)
        if self._ring_capacity < 1:
            raise ValueError(
                f"ring_capacity must be >= 1, got {self._ring_capacity}"
            )
        self._ring_slots = int(ring_slots)
        self._spawn_timeout = float(spawn_timeout)
        state = model.state_dict()
        self._arena = ParamArena.create(state)
        self._model_ref = model
        self._proxy_ids = itertools.count()
        self._proxies: List[_ProcWorkerProxy] = []
        self._base_spec = {
            "env": {k: os.environ[k] for k in _ENV_KEYS if k in os.environ},
            "backend": get_backend().name,
            "fusion": fusion_enabled(),
            "codegen": codegen_enabled(),
            "rng_state": get_rng_state(),
            "model": self._model_payload(model, model_factory, method),
            "example": [np.ascontiguousarray(a[:1]) for a in examples],
            "buckets": self._norm_buckets,
            "buffer_keys": sorted(name for name, _ in model.named_buffers()),
            "arena": self._arena.spec(),
            "serve_delay": float(worker_latency),
            # "ring" and "fuse" are stamped per proxy.
        }
        self._procs_torn_down = False
        super().__init__(model, example_batch, buckets,
                         max_batch_size=max_batch_size, **kwargs)
        self._finalizer = weakref.finalize(
            self, _finalize_shared, self._arena, self._proxies
        )
        label_kv = {"mode": self.mode, "server": self._server_id}
        self._m_pipe_fallback = self._registry.counter(
            "repro_serve_proc_pipe_fallback_total",
            "Oversized requests served over the pickled pipe cold path.",
            labelnames=("mode", "server")).labels(**label_kv)
        self._m_proc_respawns = self._registry.counter(
            "repro_serve_proc_respawns_total",
            "Worker process respawns after crash or SIGKILL.",
            labelnames=("mode", "server")).labels(**label_kv)
        self._registry.gauge(
            "repro_serve_arena_version",
            "Version of the live parameter arena bank.",
            labelnames=("mode", "server")).labels(**label_kv).set_function(
            lambda: float(self._arena.version))

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _probe_output(model: Module, examples: List[np.ndarray]):
        """One eager no-grad forward of a single sample, to learn the
        per-sample output shape/dtype without compiling parent-side."""
        inputs = [Tensor(np.ascontiguousarray(a[:1]), dtype=a.dtype)
                  for a in examples]
        with use_backend(get_backend()), no_grad(), pause_deferral():
            out = model(*inputs)
        data = out.data
        if data.ndim == 0 or data.shape[0] != 1:
            raise ValueError(
                "ProcServer needs a per-sample model output of shape "
                f"(batch, ...); the probe forward produced {data.shape}"
            )
        return tuple(data.shape[1:]), data.dtype

    @staticmethod
    def _model_payload(model, model_factory, method):
        if model_factory is not None:
            try:
                pickle.dumps(model_factory)
            except Exception as exc:
                raise ValueError(
                    f"model_factory must be picklable for process workers "
                    f"({exc})"
                ) from exc
            return ("factory", model_factory)
        if method == "fork":
            return ("live", model)  # inherited through fork, never pickled
        try:
            return ("pickle", pickle.dumps(model))
        except Exception as exc:
            raise ValueError(
                f"start_method={method!r} needs a picklable model or an "
                f"explicit model_factory; pickling the model failed: {exc}"
            ) from exc

    def _make_pool_factory(self, model, example_batch, buckets, fuse,
                           pool_metrics):
        def factory() -> _ProcWorkerProxy:
            proxy = _ProcWorkerProxy(self, pool_metrics, fuse=fuse)
            self._proxies.append(proxy)
            return proxy
        return factory

    # ------------------------------------------------------------------ #
    # Supervision hooks
    # ------------------------------------------------------------------ #
    def _spawn(self, slot: WorkerSlot) -> None:
        pool = slot.pool
        if isinstance(pool, _ProcWorkerProxy):
            pool.ensure_process()
        super()._spawn(slot)

    def _on_worker_kill(self, slot: WorkerSlot) -> None:
        pool = slot.pool
        if isinstance(pool, _ProcWorkerProxy):
            pool.kill_process()

    def _handle_stuck(self, slot: WorkerSlot) -> None:
        pool = slot.pool
        if isinstance(pool, _ProcWorkerProxy):
            if pool._awaiting_ready:
                # Not stuck — still starting up.  A slot's first serve
                # waits for the spawn handshake (interpreter import +
                # session compile under "spawn"), which is bounded by
                # spawn_timeout, not stuck_timeout; killing here would
                # shoot every replacement before it ever comes up.
                return
            # Kill the wedged process first: that un-sticks the parent
            # thread (its _recv raises WorkerKill) so the slot can
            # actually retire instead of holding its batch forever.
            pool.kill_process()
        super()._handle_stuck(slot)

    def _sweep_extra(self, now: float) -> None:
        """Notice worker processes that died with no traffic to surface it
        (the parent thread idles in _collect) and respawn with backoff."""
        with self._lock:
            slots = list(self._slots)
        for slot in slots:
            pool = slot.pool
            if (slot.retired or not isinstance(pool, _ProcWorkerProxy)
                    or slot.thread is None or not slot.thread.is_alive()
                    or pool.process_alive()):
                continue
            if pool.next_respawn_at is None:
                pool.proc_crashes += 1
                pool.next_respawn_at = now + self._supervision.restart_delay(
                    pool.proc_crashes
                )
            elif now >= pool.next_respawn_at:
                pool.next_respawn_at = None
                pool.respawn()

    # ------------------------------------------------------------------ #
    # Weights
    # ------------------------------------------------------------------ #
    def publish_weights(self, state: Optional[Dict[str, np.ndarray]] = None) -> int:
        """Publish new parameters to every worker (hot swap).

        ``state`` defaults to the parent model's current ``state_dict()``.
        Writes the inactive arena bank and flips it live; each worker
        rebinds at its next batch boundary (recompiling only if buffer
        bytes — folded batch-norm statistics — changed).  Returns the new
        arena version.
        """
        if state is None:
            state = self._model_ref.state_dict()
        return self._arena.publish(state)

    @property
    def arena_version(self) -> int:
        return self._arena.version

    @property
    def start_method(self) -> str:
        return self._start_method

    # ------------------------------------------------------------------ #
    # Lifecycle / introspection
    # ------------------------------------------------------------------ #
    def stop(self, drain: bool = True, timeout: Optional[float] = 30.0) -> None:
        super().stop(drain=drain, timeout=timeout)
        self._teardown_processes()

    def _teardown_processes(self) -> None:
        if self._procs_torn_down:
            return
        self._procs_torn_down = True
        # A worker thread that out-wedged the stop timeout still holds its
        # proxy's I/O lock mid-batch; kill that process so the thread's
        # recv raises WorkerKill (failing the batch — the queue is already
        # drained) instead of shutdown() blocking on the lock for as long
        # as the batch takes.
        for slot in self._slots:
            pool = slot.pool
            if (isinstance(pool, _ProcWorkerProxy) and slot.thread is not None
                    and slot.thread.is_alive()):
                pool.kill_process()
        for proxy in list(self._proxies):
            proxy.shutdown(timeout=2.0)
        self._finalizer()  # destroys the arena; idempotent

    def probe_workers(self, rng_draw: bool = False) -> List[dict]:
        """Settings snapshot from every live worker process (see
        :meth:`_ProcWorkerProxy.probe`); test/debug surface."""
        with self._lock:
            slots = list(self._slots)
        reports = []
        for slot in slots:
            pool = slot.pool
            if isinstance(pool, _ProcWorkerProxy) and not slot.retired \
                    and pool.process_alive():
                reports.append(pool.probe(rng_draw=rng_draw))
        return reports

    def stats(self) -> Dict[str, float]:
        snapshot = super().stats()
        with self._lock:
            slots = list(self._slots)
        workers = []
        for slot in slots:
            pool = slot.pool
            if not isinstance(pool, _ProcWorkerProxy):
                continue
            workers.append({
                "index": slot.index,
                "pid": pool.pid,
                "alive": pool.process_alive(),
                "process_restarts": pool.restarts,
                "arena_version": pool.arena_version,
                "retired": slot.retired,
            })
        snapshot["start_method"] = self._start_method  # type: ignore[assignment]
        snapshot["arena_version"] = float(self._arena.version)
        snapshot["pipe_fallbacks"] = self._m_pipe_fallback.value
        snapshot["process_restarts"] = self._m_proc_respawns.value
        snapshot["workers"] = workers  # type: ignore[assignment]
        return snapshot

    def health(self) -> Dict[str, object]:
        health = super().health()
        with self._lock:
            slots = list(self._slots)
        proxies = [(s, s.pool) for s in slots
                   if isinstance(s.pool, _ProcWorkerProxy)]
        health["start_method"] = self._start_method
        health["arena_version"] = self._arena.version
        health["worker_pids"] = [p.pid for _, p in proxies]
        health["processes_alive"] = sum(
            1 for s, p in proxies if not s.retired and p.process_alive()
        )
        health["process_restarts"] = sum(p.restarts for _, p in proxies)
        return health
