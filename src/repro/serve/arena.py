"""Shared-memory substrate for process-sharded serving.

Two primitives, both over ``multiprocessing.shared_memory``:

- :class:`ParamArena` — a versioned, double-banked parameter store.  The
  parent publishes a model's ``state_dict()`` once; every worker process
  attaches and gets **zero-copy numpy views** over the same physical
  pages.  Hot weight updates write the *inactive* bank, then flip the
  active-bank index and bump the version (in that order), so a reader
  either sees the complete old set or the complete new set — never a
  half-written tensor.  Workers poll the version at batch boundaries and
  rebind their parameter views when it moves.
- :class:`RequestRing` — fixed-slot request/result buffers for one
  worker.  Each slot holds room for one coalesced batch (every model
  input at ring capacity, plus the output); the parent writes request
  rows into a slot and sends only ``(slot, n, deadline)`` over the
  control :class:`~multiprocessing.connection.Connection`, so **no
  request array is ever pickled on the hot path**.  Results come back in
  the same slot's output region.

Segment hygiene is part of the contract: the *parent* creates and unlinks
every segment exactly once (:meth:`ParamArena.destroy` /
:meth:`RequestRing.destroy` are idempotent), while workers attach with
:func:`attach_shm`, which immediately deregisters the segment from their
``resource_tracker`` — otherwise a worker dying (or being SIGKILLed)
would either leak a tracker process or, worse, let the tracker unlink a
segment the parent still serves from.  ``tests/test_procpool.py`` asserts
``/dev/shm`` is clean after stop, crash, and SIGKILL.
"""

from __future__ import annotations

import math
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ParamArena", "RequestRing", "attach_shm"]

#: Bank payloads start on a page boundary; per-tensor offsets are 64-byte
#: aligned so views never straddle a cache line for no reason.
_PAGE = 4096
_ALIGN = 64

#: Header int64 slots: [version, active_bank, bank_count, bank_bytes].
_HEADER_WORDS = 4


def _align(n: int, to: int = _ALIGN) -> int:
    return int(math.ceil(n / to) * to)


def attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker ownership.

    ``SharedMemory(name)`` registers the mapping with the attaching
    process's resource tracker, which (a) may spawn a tracker subprocess
    per worker and (b) *unlinks the segment* when the worker exits before
    the parent does.  Worse, a forked worker shares the parent's tracker,
    so unregister-after-attach would clobber the parent's own
    registration.  Python 3.13 grew ``track=False`` for exactly this;
    older interpreters get it by suppressing ``register`` for the
    duration of the attach — nothing to unregister, nothing clobbered.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class _Segment:
    """Shared create/attach/teardown plumbing for one shm segment."""

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool) -> None:
        self._shm: Optional[shared_memory.SharedMemory] = shm
        self._owner = owner

    @property
    def name(self) -> str:
        assert self._shm is not None
        return self._shm.name

    @property
    def buf(self):
        assert self._shm is not None, "segment already closed"
        return self._shm.buf

    def close(self) -> None:
        """Drop this process's mapping (idempotent; keeps the segment)."""
        shm, self._shm = self._shm, None
        if shm is not None:
            try:
                shm.close()
            except BufferError:
                # A live numpy view still pins the mapping; leave it to
                # process exit rather than crash the teardown path.
                self._shm = shm

    def destroy(self) -> None:
        """Close and, if this process created the segment, unlink it."""
        shm = self._shm
        self.close()
        if self._owner and shm is not None:
            self._owner = False
            try:
                shm.unlink()
            except FileNotFoundError:
                pass


class ParamArena(_Segment):
    """Versioned double-banked shared-memory store for a ``state_dict``.

    Layout (one segment)::

        [int64 header: version, active_bank, banks, bank_bytes]
        [page pad]
        [bank 0: tensor payloads, 64-byte aligned offsets]
        [bank 1: ...]

    Writers are exclusive (the parent server); readers (workers) are
    lock-free.  :meth:`publish` writes the inactive bank completely, then
    stores the bank index and finally the new version, so a reader that
    re-checks the version after reading the bank index (``read_header``)
    can never act on a torn pair.
    """

    def __init__(self, shm, owner: bool, entries, banks: int,
                 bank_bytes: int) -> None:
        super().__init__(shm, owner)
        #: ``name -> (shape, dtype, offset_in_bank)``
        self._entries: Dict[str, Tuple[Tuple[int, ...], np.dtype, int]] = entries
        self._banks = banks
        self._bank_bytes = bank_bytes
        self._cached_version = 0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def create(cls, state: Dict[str, np.ndarray], banks: int = 2) -> "ParamArena":
        """Allocate a fresh arena and publish ``state`` as version 1."""
        if banks < 2:
            raise ValueError(f"ParamArena needs >= 2 banks, got {banks}")
        entries: Dict[str, Tuple[Tuple[int, ...], np.dtype, int]] = {}
        offset = 0
        for name, array in state.items():
            arr = np.asarray(array)
            entries[name] = (arr.shape, arr.dtype, offset)
            offset += _align(max(arr.nbytes, 1))
        bank_bytes = _align(max(offset, 1), _PAGE)
        total = _PAGE + banks * bank_bytes
        shm = shared_memory.SharedMemory(create=True, size=total)
        arena = cls(shm, True, entries, banks, bank_bytes)
        header = arena._header()
        header[0] = 0  # version 0 = nothing published yet
        header[1] = 0
        header[2] = banks
        header[3] = bank_bytes
        arena.publish(state)  # first publish lands in bank 0 as version 1
        return arena

    def spec(self) -> dict:
        """A picklable description a worker passes to :meth:`attach`."""
        return {
            "name": self.name,
            "entries": [
                (key, tuple(shape), dtype.str, offset)
                for key, (shape, dtype, offset) in self._entries.items()
            ],
            "banks": self._banks,
            "bank_bytes": self._bank_bytes,
        }

    @classmethod
    def attach(cls, spec: dict) -> "ParamArena":
        """Attach from a worker process (resource-tracker-friendly)."""
        shm = attach_shm(spec["name"])
        entries = {
            key: (tuple(shape), np.dtype(dtype), offset)
            for key, shape, dtype, offset in spec["entries"]
        }
        return cls(shm, False, entries, spec["banks"], spec["bank_bytes"])

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def _header(self) -> np.ndarray:
        return np.ndarray((_HEADER_WORDS,), dtype=np.int64, buffer=self.buf)

    @property
    def version(self) -> int:
        # Post-teardown introspection (stats() after stop()) still gets
        # the last version this process saw.
        if self._shm is None:
            return self._cached_version
        self._cached_version = int(self._header()[0])
        return self._cached_version

    @property
    def active_bank(self) -> int:
        return int(self._header()[1])

    def read_header(self) -> Tuple[int, int]:
        """A torn-read-safe ``(version, active_bank)`` snapshot."""
        header = self._header()
        while True:
            version = int(header[0])
            bank = int(header[1])
            if int(header[0]) == version:
                return version, bank

    def views(self, bank: Optional[int] = None) -> Dict[str, np.ndarray]:
        """Zero-copy views over one bank (default: the active bank).

        The returned arrays alias shared pages — treat them as read-only
        in workers; writing through them would corrupt every process.
        """
        if bank is None:
            bank = self.active_bank
        if not 0 <= bank < self._banks:
            raise ValueError(f"bank must be in [0, {self._banks}), got {bank}")
        base = _PAGE + bank * self._bank_bytes
        return {
            key: np.ndarray(shape, dtype=dtype, buffer=self.buf,
                            offset=base + offset)
            for key, (shape, dtype, offset) in self._entries.items()
        }

    # ------------------------------------------------------------------ #
    # Publication (parent only)
    # ------------------------------------------------------------------ #
    def publish(self, state: Dict[str, np.ndarray]) -> int:
        """Write ``state`` into the inactive bank and make it live.

        Returns the new version.  Keys and per-tensor shapes/dtypes are
        fixed at :meth:`create`; a mismatch raises before any byte is
        written, so a failed publish never tears the live bank.
        """
        if not self._owner:
            raise RuntimeError("only the creating process may publish")
        missing = set(self._entries) - set(state)
        if missing:
            raise ValueError(f"publish missing arena keys: {sorted(missing)}")
        header = self._header()
        version = int(header[0])
        target = (int(header[1]) + 1) % self._banks if version else 0
        staged: List[Tuple[np.ndarray, np.ndarray]] = []
        views = self.views(target)
        for key, (shape, dtype, _offset) in self._entries.items():
            arr = np.asarray(state[key])
            if tuple(arr.shape) != shape or arr.dtype != dtype:
                raise ValueError(
                    f"arena entry {key!r} is {shape}/{dtype}, publish got "
                    f"{arr.shape}/{arr.dtype} (arena shapes are fixed at "
                    "create())"
                )
            staged.append((views[key], arr))
        for view, arr in staged:
            view[...] = arr
        header[1] = target
        header[0] = version + 1
        return version + 1


class RequestRing(_Segment):
    """Fixed-slot shared-memory request/result buffers for one worker.

    ``slots`` independent slots let one batch be in flight while the next
    is being staged.  Each slot packs, 64-byte aligned::

        [input 0: (capacity, *per_sample_shape) of its dtype]
        [input 1: ...]
        [output:  (capacity, *out_per_sample) of the output dtype]

    The ring carries **data only**; who owns which slot is decided by the
    control-pipe protocol in :mod:`repro.serve.procpool` (one in-flight
    batch per worker, so no atomics are needed here).
    """

    def __init__(self, shm, owner: bool, input_specs, out_spec,
                 capacity: int, slots: int, slot_bytes: int,
                 offsets) -> None:
        super().__init__(shm, owner)
        self._input_specs = input_specs    # [(per_sample_shape, dtype)]
        self._out_spec = out_spec          # (out_per_sample, dtype)
        self.capacity = capacity
        self.slots = slots
        self._slot_bytes = slot_bytes
        self._offsets = offsets            # per-input offsets + output offset

    @classmethod
    def create(
        cls,
        input_specs: Sequence[Tuple[Tuple[int, ...], np.dtype]],
        out_spec: Tuple[Tuple[int, ...], np.dtype],
        capacity: int,
        slots: int = 2,
    ) -> "RequestRing":
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        if slots < 1:
            raise ValueError(f"ring needs >= 1 slot, got {slots}")
        offsets: List[int] = []
        offset = 0
        for shape, dtype in input_specs:
            offsets.append(offset)
            nbytes = capacity * int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
            offset += _align(max(nbytes, 1))
        out_shape, out_dtype = out_spec
        offsets.append(offset)
        out_bytes = capacity * int(np.prod(out_shape, dtype=np.int64)) * np.dtype(out_dtype).itemsize
        offset += _align(max(out_bytes, 1))
        slot_bytes = _align(offset, _PAGE)
        shm = shared_memory.SharedMemory(create=True, size=slots * slot_bytes)
        specs = [(tuple(s), np.dtype(d)) for s, d in input_specs]
        return cls(shm, True, specs, (tuple(out_shape), np.dtype(out_dtype)),
                   capacity, slots, slot_bytes, offsets)

    def spec(self) -> dict:
        return {
            "name": self.name,
            "inputs": [(shape, dtype.str) for shape, dtype in self._input_specs],
            "out": (self._out_spec[0], self._out_spec[1].str),
            "capacity": self.capacity,
            "slots": self.slots,
            "slot_bytes": self._slot_bytes,
            "offsets": list(self._offsets),
        }

    @classmethod
    def attach(cls, spec: dict) -> "RequestRing":
        shm = attach_shm(spec["name"])
        specs = [(tuple(s), np.dtype(d)) for s, d in spec["inputs"]]
        out = (tuple(spec["out"][0]), np.dtype(spec["out"][1]))
        return cls(shm, False, specs, out, spec["capacity"], spec["slots"],
                   spec["slot_bytes"], spec["offsets"])

    def _check(self, slot: int, n: int) -> None:
        if not 0 <= slot < self.slots:
            raise ValueError(f"slot must be in [0, {self.slots}), got {slot}")
        if not 0 <= n <= self.capacity:
            raise ValueError(
                f"n must be in [0, {self.capacity}] for this ring, got {n}"
            )

    def input_views(self, slot: int, n: int) -> List[np.ndarray]:
        """Zero-copy ``(n, ...)`` views over one slot's input regions."""
        self._check(slot, n)
        base = slot * self._slot_bytes
        return [
            np.ndarray((n,) + shape, dtype=dtype, buffer=self.buf,
                       offset=base + self._offsets[i])
            for i, (shape, dtype) in enumerate(self._input_specs)
        ]

    def output_view(self, slot: int, n: int) -> np.ndarray:
        """Zero-copy ``(n, ...)`` view over one slot's output region."""
        self._check(slot, n)
        base = slot * self._slot_bytes
        shape, dtype = self._out_spec
        return np.ndarray((n,) + shape, dtype=dtype, buffer=self.buf,
                          offset=base + self._offsets[-1])
