"""Resilience primitives for the serving front end.

The :class:`~repro.serve.frontend.Server` built in the dynamic-batching PR
was fast but brittle: an unbounded queue, no deadlines, batch-wide failure
blast radius, and worker threads that died silently.  This module holds the
policy objects and failure vocabulary the reworked server is built on:

- **Failure vocabulary** — :class:`ServerOverloaded` (load shed at
  ``submit()``), :class:`DeadlineExceeded` (request expired before service),
  :class:`TransientError` (the marker base class for fault types worth
  retrying), and :class:`WorkerKill` (a ``BaseException`` that simulates a
  hard worker crash; the worker loop deliberately does **not** absorb it, so
  fault injection can exercise the supervision path end to end).
- **Backpressure modes** — :data:`BACKPRESSURE_MODES`: ``"block"`` (the
  submitting thread waits for queue space), ``"reject"`` (raise
  :class:`ServerOverloaded` at the call site), ``"shed_oldest"`` (cancel the
  stalest queued future to admit the new one; staleness-biased shedding
  keeps latest-arrival latency bounded under sustained overload).
- :class:`RetryPolicy` — bounded retries with exponential backoff for
  transient fault classes, used by the batch-failure isolation path (retry
  the whole batch while the fault looks transient, then bisect so only the
  truly poisoned request fails).
- :class:`SupervisionPolicy` + :class:`WorkerSlot` — the watchdog's
  configuration and per-worker bookkeeping: crash counters, restart backoff
  with a cap, stuck detection, and permanent retirement after a crash loop.

Everything here is plain policy/state — the enforcement lives in
:mod:`repro.serve.frontend`; the deterministic chaos hooks that test it live
in :mod:`repro.serve.faults`.

Every enforcement path is observable: the server increments a registry
counter (see :mod:`repro.obs` for the full catalogue) each time one of
these policies fires —

- ``reject`` admission → ``repro_serve_requests_rejected_total``;
- ``shed_oldest`` cancellation → ``repro_serve_requests_shed_total``;
- deadline sweeps (queue-space timeout included) →
  ``repro_serve_requests_expired_total``;
- :class:`RetryPolicy` retries and bisection halves →
  ``repro_serve_batches_retried_total``;
- futures resolved with a batch's exception →
  ``repro_serve_requests_failed_total``;
- watchdog respawns and stuck-worker replacements →
  ``repro_serve_worker_restarts_total``.
"""

from __future__ import annotations

from typing import Optional, Tuple, Type

__all__ = [
    "BACKPRESSURE_MODES",
    "DeadlineExceeded",
    "RetryPolicy",
    "ServerOverloaded",
    "SupervisionPolicy",
    "TransientError",
    "WorkerKill",
    "WorkerSlot",
]

#: Admission-control modes for a bounded request queue (``queue_limit``).
BACKPRESSURE_MODES = ("block", "reject", "shed_oldest")


class ServerOverloaded(RuntimeError):
    """The bounded queue is full and the overload policy refused admission."""


class DeadlineExceeded(TimeoutError):
    """A request's deadline passed before it was served.

    Raised synchronously by a ``block``-mode ``submit()`` that timed out
    waiting for queue space, and set asynchronously on futures whose
    requests expired in the queue (expired requests are swept before
    dispatch, never served).
    """


class TransientError(RuntimeError):
    """Base class for faults worth retrying (the default transient class).

    The batch-failure isolation path retries a whole batch (with backoff)
    while the raised exception is an instance of a
    :attr:`RetryPolicy.transient` class; any other exception skips straight
    to bisection.  Subclass this for injected or infrastructure faults that
    a bounded retry can plausibly outwait.
    """


class WorkerKill(BaseException):
    """Simulated hard crash of a worker thread (fault injection).

    Deliberately a ``BaseException``: the worker loop's widened ``except
    Exception`` safety net must *not* absorb it, so raising it inside
    ``SessionPool.serve`` terminates the worker thread the way a real crash
    would — after re-queuing the requests it held — and exercises the
    watchdog's detect/respawn path.
    """


class RetryPolicy:
    """Bounded exponential-backoff retries for transient batch failures.

    Parameters
    ----------
    max_retries:
        Whole-batch retry attempts before giving up on the batch as-is and
        bisecting it (0 disables retries; bisection still isolates).
    backoff_base:
        Sleep before the first retry, in seconds; attempt ``k`` sleeps
        ``backoff_base * 2**k``.
    backoff_cap:
        Upper bound on any single backoff sleep.
    transient:
        Exception classes eligible for retry.  Anything else — shape
        errors, poisoned payloads — fails fast into bisection, because
        retrying a deterministic failure only burns latency.
    """

    __slots__ = ("max_retries", "backoff_base", "backoff_cap", "transient")

    def __init__(
        self,
        max_retries: int = 2,
        backoff_base: float = 0.005,
        backoff_cap: float = 0.25,
        transient: Tuple[Type[BaseException], ...] = (TransientError,),
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if backoff_base < 0 or backoff_cap < 0:
            raise ValueError(
                f"backoff must be >= 0, got base={backoff_base} cap={backoff_cap}"
            )
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.transient = tuple(transient)

    def is_transient(self, exc: BaseException) -> bool:
        return isinstance(exc, self.transient)

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based), capped."""
        return min(self.backoff_cap, self.backoff_base * (2.0 ** attempt))


class SupervisionPolicy:
    """Watchdog configuration for worker supervision.

    Parameters
    ----------
    watchdog_interval:
        Seconds between watchdog sweeps (crash detection latency).
    stuck_timeout:
        A worker continuously busy on one batch for longer than this is
        declared stuck: its slot is retired (the thread cannot be killed,
        but it is abandoned — if it ever finishes, its futures still
        resolve) and a replacement worker with a freshly compiled pool is
        spawned.  ``None`` disables stuck detection.
    max_restarts:
        Restarts per slot before it is retired for good (crash-loop cap).
    restart_backoff / restart_backoff_cap:
        Exponential respawn delay: crash ``k`` of a slot waits
        ``min(cap, backoff * 2**(k-1))`` before the replacement thread
        starts, so a deterministically crashing model cannot spin the
        supervisor hot.
    """

    __slots__ = (
        "watchdog_interval",
        "stuck_timeout",
        "max_restarts",
        "restart_backoff",
        "restart_backoff_cap",
    )

    def __init__(
        self,
        watchdog_interval: float = 0.02,
        stuck_timeout: Optional[float] = None,
        max_restarts: int = 8,
        restart_backoff: float = 0.01,
        restart_backoff_cap: float = 1.0,
    ) -> None:
        if watchdog_interval <= 0:
            raise ValueError(
                f"watchdog_interval must be > 0, got {watchdog_interval}"
            )
        if stuck_timeout is not None and stuck_timeout <= 0:
            raise ValueError(f"stuck_timeout must be > 0, got {stuck_timeout}")
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
        if restart_backoff < 0 or restart_backoff_cap < 0:
            raise ValueError(
                "restart backoff must be >= 0, got "
                f"base={restart_backoff} cap={restart_backoff_cap}"
            )
        self.watchdog_interval = float(watchdog_interval)
        self.stuck_timeout = None if stuck_timeout is None else float(stuck_timeout)
        self.max_restarts = int(max_restarts)
        self.restart_backoff = float(restart_backoff)
        self.restart_backoff_cap = float(restart_backoff_cap)

    def restart_delay(self, crashes: int) -> float:
        """Respawn backoff after a slot's ``crashes``-th crash (1-based)."""
        return min(
            self.restart_backoff_cap,
            self.restart_backoff * (2.0 ** max(0, crashes - 1)),
        )


class WorkerSlot:
    """Supervision bookkeeping for one worker thread.

    A slot outlives the threads that serve it: when a thread dies the slot
    records the crash and (within the restart budget) hosts the respawned
    replacement.  A *retired* slot is permanently out of service — either
    its crash loop exhausted ``max_restarts`` or it was declared stuck and
    replaced by a brand-new slot.
    """

    __slots__ = (
        "index",
        "pool",
        "thread",
        "crashes",
        "restarts",
        "retired",
        "stuck",
        "busy_since",
        "respawn_at",
    )

    def __init__(self, index: int, pool) -> None:
        self.index = index
        self.pool = pool
        self.thread = None
        self.crashes = 0
        self.restarts = 0
        self.retired = False
        self.stuck = False
        #: monotonic timestamp when the current batch's service started;
        #: ``None`` while the worker is idle (stuck detection only applies
        #: to a worker that is actually serving).
        self.busy_since: Optional[float] = None
        #: pending respawn time (crash detected, backoff running).
        self.respawn_at: Optional[float] = None

    def is_alive(self) -> bool:
        return (
            not self.retired
            and self.thread is not None
            and self.thread.is_alive()
        )
