"""Deterministic fault injection for the serving front end.

Every resilience behavior in :mod:`repro.serve.frontend` — batch-failure
isolation, transient retries, worker respawn, deadline sweeps — exists to
handle failures that healthy tests never produce.  This module manufactures
those failures *deterministically*: a :class:`FaultInjector` wraps
``SessionPool.serve`` on a live server (or a bare pool) with seeded chaos
hooks, so a test can say "the 3rd serve call raises a transient fault, the
5th kills its worker" and assert the exact recovery sequence every run.

Hooks (all composable, all counted):

- **raise-on-nth-call** (``raise_on={3, 7}``): the matching serve calls
  raise ``fault`` (default :class:`~repro.serve.resilience.TransientError`,
  i.e. retryable); call numbering is global across the injector, 1-based.
- **worker-kill** (``kill_on={5}``): the matching calls raise
  :class:`~repro.serve.resilience.WorkerKill`, which escapes the worker's
  exception net and terminates the thread the way a hard crash would — the
  supervision/respawn path, not the isolation path.
- **added latency** (``latency=0.01``, ``latency_jitter=0.005``): every call
  sleeps ``latency`` plus a seeded-uniform jitter draw before serving; use
  it to cap service capacity (overload tests) or trip stuck detection.
- **poisoned payloads** (``poison=lambda arrays: np.isnan(arrays[0]).any()``):
  any batch the predicate flags raises :class:`PoisonedRequest` — a
  *non-transient* fault, so the server bisects instead of retrying and only
  the flagged request's future fails.

Determinism: the only randomness is the jitter draw from one seeded
``Generator``, and call numbering is serialized under the injector's lock —
with a single worker the whole fault schedule is exactly reproducible.
With multiple workers the *schedule* stays fixed (call N faults) while
which worker draws call N depends on thread scheduling; tests that need a
specific worker to die use ``workers=1``.

Usage::

    with inject_faults(server, raise_on={2}, seed=0) as chaos:
        futures = [server.submit(x) for x in batch]
        ...
    assert chaos.calls >= 2 and chaos.raised == 1

Installation wraps the ``serve`` attribute of every pool the server holds
*at install time*; a replacement pool compiled later by the watchdog (stuck
worker) starts clean.  ``uninstall()`` (automatic with the context manager)
restores the original bound methods.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Callable, Iterable, List, Optional, Tuple, Type

import numpy as np

from repro.serve.resilience import TransientError, WorkerKill

__all__ = ["FaultInjector", "PoisonedRequest", "inject_faults"]


class PoisonedRequest(RuntimeError):
    """An injected *non-transient* fault: this payload fails every attempt.

    Not a :class:`~repro.serve.resilience.TransientError`, so the retry
    policy skips straight to bisection — exactly how a request whose
    content deterministically breaks the model should behave.
    """


class FaultInjector:
    """Seeded chaos hooks around ``SessionPool.serve``.

    Parameters
    ----------
    seed:
        Seed of the jitter generator (the injector's only randomness).
    raise_on:
        1-based global serve-call numbers that raise ``fault``.
    fault:
        Exception class for ``raise_on`` calls (default
        :class:`TransientError`, i.e. the retryable kind).
    kill_on:
        1-based call numbers that raise :class:`WorkerKill` instead of
        serving (simulated hard worker crash).
    latency / latency_jitter:
        Fixed + seeded-uniform added service time per call, in seconds.
    poison:
        Optional predicate over the request's array list; a flagged batch
        raises :class:`PoisonedRequest`.

    Counters (thread-safe): :attr:`calls`, :attr:`raised`, :attr:`killed`,
    :attr:`poisoned`, :attr:`delayed`.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        raise_on: Iterable[int] = (),
        fault: Type[BaseException] = TransientError,
        kill_on: Iterable[int] = (),
        latency: float = 0.0,
        latency_jitter: float = 0.0,
        poison: Optional[Callable[[List[np.ndarray]], bool]] = None,
    ) -> None:
        if latency < 0 or latency_jitter < 0:
            raise ValueError(
                f"latency must be >= 0, got {latency} jitter={latency_jitter}"
            )
        self.raise_on = frozenset(int(n) for n in raise_on)
        self.kill_on = frozenset(int(n) for n in kill_on)
        bad = [n for n in self.raise_on | self.kill_on if n < 1]
        if bad:
            raise ValueError(f"call numbers are 1-based, got {sorted(bad)}")
        self.fault = fault
        self.latency = float(latency)
        self.latency_jitter = float(latency_jitter)
        self.poison = poison
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()
        self._targets: List[Tuple[object, Callable]] = []
        self.calls = 0
        self.raised = 0
        self.killed = 0
        self.poisoned = 0
        self.delayed = 0

    # ------------------------------------------------------------------ #
    # Installation
    # ------------------------------------------------------------------ #
    def wrap(self, pool) -> None:
        """Shadow ``pool.serve`` with the chaos hook (instance attribute)."""
        original = pool.serve

        def chaotic_serve(batch, out=None):
            return self._serve(original, batch, out)

        pool.serve = chaotic_serve
        self._targets.append((pool, original))

    def install(self, server) -> "FaultInjector":
        """Wrap every pool the server currently holds; returns self."""
        pools = getattr(server, "pools", None)
        if pools is None:  # a bare SessionPool
            self.wrap(server)
        else:
            for pool in pools:
                self.wrap(pool)
        return self

    def uninstall(self) -> None:
        """Restore the original ``serve`` methods."""
        while self._targets:
            pool, original = self._targets.pop()
            pool.serve = original

    # ------------------------------------------------------------------ #
    # The hook
    # ------------------------------------------------------------------ #
    def _serve(self, original, batch, out):
        with self._lock:
            self.calls += 1
            call = self.calls
            delay = self.latency
            if self.latency_jitter:
                delay += float(self._rng.uniform(0.0, self.latency_jitter))
        if delay > 0:
            with self._lock:
                self.delayed += 1
            time.sleep(delay)
        if call in self.kill_on:
            with self._lock:
                self.killed += 1
            raise WorkerKill(f"fault injection killed the worker at serve call {call}")
        if call in self.raise_on:
            with self._lock:
                self.raised += 1
            raise self.fault(f"injected fault at serve call {call}")
        if self.poison is not None:
            arrays = batch if isinstance(batch, (list, tuple)) else [batch]
            arrays = [a.data if hasattr(a, "data") else np.asarray(a) for a in arrays]
            if self.poison(arrays):
                with self._lock:
                    self.poisoned += 1
                raise PoisonedRequest(
                    f"injected poison tripped at serve call {call} "
                    f"(batch of {arrays[0].shape[0]})"
                )
        return original(batch, out=out)


@contextlib.contextmanager
def inject_faults(server, **kwargs):
    """Context manager: install a :class:`FaultInjector` on ``server``.

    ``server`` may be a :class:`~repro.serve.frontend.Server` or a bare
    :class:`~repro.serve.frontend.SessionPool`.  Yields the injector (for
    its counters); uninstalls on exit.
    """
    injector = FaultInjector(**kwargs)
    injector.install(server)
    try:
        yield injector
    finally:
        injector.uninstall()
