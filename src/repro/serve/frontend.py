"""Dynamic-batching serving front end: bucketed pools, a request queue,
sharded + supervised workers.

:class:`InferenceSession` replays exactly one batch shape; this module turns
that into a front end that serves *any* traffic shape and survives failure:

- :class:`SessionPool` compiles one session per **bucket size** (default
  1/4/16/64) in a single up-front pass over the model and routes any
  incoming sample count through a greedy largest-first decomposition
  (85 → 64+16+4+1), serving each chunk as a zero-copy slice through the
  matching compiled session.  Bucket sessions are shape-stable by
  construction, so each one compiles its fused regions with
  ``compile_region(..., specialize=True)``: per-bucket kernels with the
  batch size baked in as constant loop bounds, cached under shape-keyed
  signatures alongside the dynamic-shape kernels training uses.  The eager odd-chunk fallback that
  :func:`~repro.serve.session.serve_batches` leans on becomes a last
  resort, reached only when the remainder is smaller than every bucket
  (impossible with a size-1 bucket in the pool).
- :class:`Server` is the request-queue front end: clients :meth:`submit
  <Server.submit>` arrays and get :class:`concurrent.futures.Future`\\ s
  back; a batching loop coalesces pending requests up to
  ``max_batch_size`` samples (waiting at most ``max_wait`` seconds once a
  request is in hand), packs them into bucket runs, and scatters **result
  copies** back into the futures — callers own their outputs, the reused
  session buffers never escape.
- **Sharding**: ``workers=N`` runs N batching loops, each holding its own
  :class:`SessionPool` replica.  Replicas are safe because replay touches
  only per-session pre-allocated buffers while parameters stay bound by
  reference to the one shared model (an in-place fine-tune step shows up
  on every worker without recompiling).
- **Backpressure**: ``queue_limit`` bounds the queue; the ``overload``
  policy decides what happens at the limit — ``"block"`` the submitter,
  ``"reject"`` with :class:`~repro.serve.resilience.ServerOverloaded`, or
  ``"shed_oldest"`` (cancel the stalest queued future to admit the new
  request).
- **Deadlines**: ``submit(..., timeout=)`` (or a server-wide
  ``default_timeout``) attaches a deadline; expired requests are swept
  before dispatch — by the collecting worker and by the watchdog — and
  resolve with :class:`~repro.serve.resilience.DeadlineExceeded`.  Client
  ``future.cancel()`` composes: cancelled futures are dropped at dispatch.
- **Failure isolation**: when a coalesced batch raises, transient faults
  (per :class:`~repro.serve.resilience.RetryPolicy`) are retried whole
  with exponential backoff; anything still failing is bisected and the
  halves re-served, so only the truly poisoned request(s) fail while
  innocent co-batched requests succeed.  Exceptions anywhere in the serve
  path — concatenate, scatter, metrics — fail the affected futures, never
  the worker thread.
- **Supervision**: a watchdog thread detects dead worker threads and
  respawns them (crash counters, exponential restart backoff, a crash-loop
  cap that retires the slot), optionally detects *stuck* workers
  (``stuck_timeout``) and replaces them with freshly compiled pools, and
  backs the :meth:`Server.health` / :meth:`Server.ready` probes.  When
  every worker is dead the queue is failed with a clear error instead of
  stranding clients.  :meth:`Server.stop` takes a ``timeout`` and cannot
  hang forever: leftover queued requests are resolved exceptionally.
- **Observability**: every server owns a :class:`repro.obs.metrics.Registry`
  (counters, scrape-time gauges, per-stage latency histograms — the full
  catalogue is in :mod:`repro.obs`) and a :class:`repro.obs.trace.Tracer`
  recording per-request stage spans (``queue_wait → coalesce → serve →
  scatter → resolve``).  :meth:`Server.serve_http` exposes ``/metrics``,
  ``/health``, ``/ready`` and ``/traces.json`` over HTTP;
  :meth:`Server.stats` stays as the in-process snapshot of the same
  numbers — queue depth, batch occupancy, p50/p95/p99 submit-to-result
  latency plus the queue-wait/service breakdown, served throughput, and
  the resilience counters (``requests_rejected`` / ``requests_shed`` /
  ``requests_expired`` / ``requests_failed`` / ``batches_retried`` /
  ``worker_restarts``); the ``serve_queue`` benchmark workload records
  them per backend.

Deterministic chaos hooks for all of the above live in
:mod:`repro.serve.faults`.

Numerics contract: every routed micro-batch is **bit-equal to the eager
``no_grad`` forward of exactly those samples** (the per-session guarantee).
Whole-request results can differ from one full-batch eager forward in the
last ulp, because BLAS kernels reassociate differently across batch sizes —
the same caveat any dynamic batcher inherits.  Chunk boundaries only
*matter* for traces whose samples interact through batch statistics
(:attr:`SessionPool.has_batch_statistics`); route such models with a single
bucket or keep them on the eager path.  Batch bisection preserves request
boundaries, so isolation never changes which samples share a micro-batch
run's bucket decomposition *within* a request.

Dtype is part of the compiled signature: requests must match the example
batch's dtypes exactly (see :meth:`InferenceSession.run`).
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from concurrent.futures import Future

import numpy as np

from repro.nn.module import Module
from repro.obs.metrics import NULL_REGISTRY, Registry
from repro.obs.trace import Tracer
from repro.serve.resilience import (
    BACKPRESSURE_MODES,
    DeadlineExceeded,
    RetryPolicy,
    ServerOverloaded,
    SupervisionPolicy,
    WorkerKill,
    WorkerSlot,
)
from repro.serve.session import (
    InferenceSession,
    _as_input_tensors,
    _coerce_arrays,
    compile_inference,
)

__all__ = ["SessionPool", "Server", "DEFAULT_BUCKETS"]

DEFAULT_BUCKETS = (1, 4, 16, 64)

#: Server-label allocator: every Server's metrics carry server="srvN" so
#: several servers can share one registry without colliding.
_SERVER_IDS = itertools.count()

#: No-op counter handed to pools built without a registry (bare pools).
_NULL_COUNTER = NULL_REGISTRY.counter("null")


class _ServerMetrics:
    """One server's registry children, resolved once at construction.

    The hot path holds the child objects directly (``self.requests_failed
    .inc()``), so per-event cost is one leaf lock — no name lookups.  The
    full catalogue (names, types, labels, units) is documented in
    :mod:`repro.obs`.
    """

    __slots__ = (
        "requests_submitted", "requests_completed", "samples_completed",
        "batches_dispatched", "samples_dispatched", "requests_rejected",
        "requests_shed", "requests_expired", "requests_failed",
        "batches_retried", "worker_restarts", "queue_depth", "workers_alive",
        "batch_occupancy", "request_latency_ms", "queue_wait_ms",
        "service_ms", "bucket_calls", "eager_tail",
    )

    def __init__(self, registry, server_label: str, buckets: Tuple[int, ...],
                 mode: str = "thread") -> None:
        label = ("mode", "server")
        kv = {"mode": mode, "server": server_label}

        def counter(name, help_text):
            return registry.counter(name, help_text, labelnames=label).labels(**kv)

        def histogram(name, help_text):
            return registry.histogram(name, help_text, labelnames=label).labels(**kv)

        self.requests_submitted = counter(
            "repro_serve_requests_submitted_total",
            "Requests accepted by submit().")
        self.requests_completed = counter(
            "repro_serve_requests_completed_total",
            "Requests resolved with a result.")
        self.samples_completed = counter(
            "repro_serve_samples_completed_total",
            "Samples inside completed requests.")
        self.batches_dispatched = counter(
            "repro_serve_batches_dispatched_total",
            "Coalesced batches handed to workers.")
        self.samples_dispatched = counter(
            "repro_serve_samples_dispatched_total",
            "Samples inside dispatched batches (clamped to max_batch_size).")
        self.requests_rejected = counter(
            "repro_serve_requests_rejected_total",
            "reject-mode overload refusals at submit().")
        self.requests_shed = counter(
            "repro_serve_requests_shed_total",
            "shed_oldest cancellations of stale queued requests.")
        self.requests_expired = counter(
            "repro_serve_requests_expired_total",
            "Requests whose deadline passed before service.")
        self.requests_failed = counter(
            "repro_serve_requests_failed_total",
            "Futures resolved with an exception.")
        self.batches_retried = counter(
            "repro_serve_batches_retried_total",
            "Re-serve attempts from transient retries and bisection.")
        self.worker_restarts = counter(
            "repro_serve_worker_restarts_total",
            "Watchdog worker respawns and stuck-worker replacements.")
        self.queue_depth = registry.gauge(
            "repro_serve_queue_depth",
            "Requests currently waiting in the queue.",
            labelnames=label).labels(**kv)
        self.workers_alive = registry.gauge(
            "repro_serve_workers_alive",
            "Live worker threads.",
            labelnames=label).labels(**kv)
        self.batch_occupancy = registry.gauge(
            "repro_serve_batch_occupancy",
            "Mean dispatched samples per batch over max_batch_size.",
            labelnames=label).labels(**kv)
        self.request_latency_ms = histogram(
            "repro_serve_request_latency_ms",
            "Submit-to-result request latency, milliseconds.")
        self.queue_wait_ms = histogram(
            "repro_serve_queue_wait_ms",
            "Submit-to-collection queue wait, milliseconds.")
        self.service_ms = histogram(
            "repro_serve_service_ms",
            "Collection-to-result service time, milliseconds.")
        bucket_family = registry.counter(
            "repro_serve_bucket_calls_total",
            "Compiled runs routed to each session bucket.",
            labelnames=("mode", "server", "bucket"))
        self.bucket_calls = {
            b: bucket_family.labels(mode=mode, server=server_label,
                                    bucket=str(b))
            for b in buckets
        }
        self.eager_tail = counter(
            "repro_serve_eager_tail_total",
            "Eager last-resort serves (remainder smaller than every bucket).")


def _normalize_buckets(buckets: Sequence[int]) -> Tuple[int, ...]:
    """Validate and sort bucket sizes largest-first."""
    cleaned = sorted({int(b) for b in buckets}, reverse=True)
    if not cleaned:
        raise ValueError("SessionPool needs at least one bucket size")
    if cleaned[-1] < 1:
        raise ValueError(f"bucket sizes must be positive, got {sorted(buckets)}")
    return tuple(cleaned)


class SessionPool:
    """One compiled :class:`InferenceSession` per bucket size, plus routing.

    Parameters
    ----------
    model:
        An eval-mode :class:`~repro.nn.module.Module` (same contract as
        :func:`~repro.serve.session.compile_inference`).
    example_batch:
        One array/Tensor or a sequence of them with a leading sample
        dimension; only the per-sample shapes and dtypes matter — each
        bucket's example is built by cycling these samples.
    buckets:
        The batch sizes to compile, default ``(1, 4, 16, 64)``.  Include
        ``1`` so every sample count decomposes exactly; without it,
        remainders smaller than the smallest bucket fall back to the
        model's eager ``no_grad`` forward (counted in :attr:`eager_calls`).
    fuse:
        Run the trace-time fusion pass on each compiled session (default).
    metrics:
        Optional ``(bucket_counters, eager_counter)`` pair of
        :class:`repro.obs.metrics.Counter` children (``{bucket_size:
        counter}`` plus the eager-tail counter).  :class:`Server` passes its
        registry children so every pool replica routes into the same
        ``repro_serve_bucket_calls_total{bucket=...}`` series; bare pools
        default to no-op counters.  The plain :attr:`bucket_calls` /
        :attr:`eager_calls` attributes stay as the per-pool view either way.

    Like the sessions it holds, a pool is **not thread-safe**: give each
    worker its own replica (:class:`Server` does).
    """

    def __init__(
        self,
        model: Module,
        example_batch,
        buckets: Sequence[int] = DEFAULT_BUCKETS,
        fuse: bool = True,
        metrics=None,
    ) -> None:
        self._buckets = _normalize_buckets(buckets)
        if metrics is not None:
            bucket_counters, eager_counter = metrics
            self._m_bucket = {
                b: bucket_counters.get(b, _NULL_COUNTER) for b in self._buckets
            }
            self._m_eager = eager_counter
        else:
            self._m_bucket = {b: _NULL_COUNTER for b in self._buckets}
            self._m_eager = _NULL_COUNTER
        examples = [t.data for t in _as_input_tensors(example_batch)]
        for i, arr in enumerate(examples):
            if arr.ndim == 0 or arr.shape[0] < 1:
                raise ValueError(
                    f"example input {i} needs at least one sample along a "
                    f"leading batch dimension, got shape {arr.shape}"
                )
        if len({a.shape[0] for a in examples}) != 1:
            raise ValueError(
                "example inputs disagree on the sample count: "
                f"{[a.shape[0] for a in examples]}"
            )
        self._per_sample_shapes = [a.shape[1:] for a in examples]
        self._dtypes = [a.dtype for a in examples]

        # One up-front compile pass: every bucket's example cycles the same
        # sample rows (np.resize repeats whole rows because the trailing
        # extents match), so all sessions capture the same trace modulo the
        # batch extent.  Model validation/rejection happens on the first
        # compile and, being deterministic, cannot diverge across buckets.
        self.sessions: Dict[int, InferenceSession] = {}
        for bucket in self._buckets:
            example = tuple(
                np.resize(a, (bucket,) + a.shape[1:]) for a in examples
            )
            session = compile_inference(model, example, fuse=fuse)
            if not session.output_shape or session.output_shape[0] != bucket:
                raise ValueError(
                    "SessionPool needs a per-sample model output of shape "
                    f"(batch, ...); the bucket-{bucket} trace produces "
                    f"{session.output_shape} (a reduced/scalar output cannot "
                    "be bucket-served)"
                )
            self.sessions[bucket] = session
        largest = self.sessions[self._buckets[0]]
        self._out_per_sample = largest.output_shape[1:]
        self.output_dtype = largest.output_dtype
        #: Chunk boundaries change results for traces whose samples interact
        #: through batch statistics; see the module docstring.
        self.has_batch_statistics = any(
            s.has_batch_statistics for s in self.sessions.values()
        )
        #: Routing counters (per-pool, not thread-safe): bucket size ->
        #: number of compiled runs, plus eager last-resort serves.
        self.bucket_calls: Dict[int, int] = {b: 0 for b in self._buckets}
        self.eager_calls = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def buckets(self) -> Tuple[int, ...]:
        """Compiled bucket sizes, largest first."""
        return self._buckets

    @property
    def max_bucket(self) -> int:
        return self._buckets[0]

    @property
    def input_dtypes(self) -> List[np.dtype]:
        return list(self._dtypes)

    @property
    def per_sample_shapes(self) -> List[Tuple[int, ...]]:
        return list(self._per_sample_shapes)

    def decompose(self, n: int) -> Tuple[List[int], int]:
        """Greedy largest-first decomposition of ``n`` into bucket sizes.

        Returns ``(chunks, remainder)``; the remainder is 0 whenever the
        pool has a size-1 bucket, otherwise it is the leftover sample count
        (smaller than every bucket) that must go through the eager path.
        """
        if n < 0:
            raise ValueError(f"sample count must be >= 0, got {n}")
        chunks: List[int] = []
        remaining = n
        for bucket in self._buckets:
            while remaining >= bucket:
                chunks.append(bucket)
                remaining -= bucket
        return chunks, remaining

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def validate(self, arrays: Sequence[np.ndarray]) -> int:
        """Check per-sample shapes/dtypes of one request; return its size."""
        if len(arrays) != len(self._per_sample_shapes):
            raise ValueError(
                f"pool takes {len(self._per_sample_shapes)} input(s), "
                f"got {len(arrays)}"
            )
        n = arrays[0].shape[0] if arrays[0].ndim else 0
        for i, arr in enumerate(arrays):
            if arr.ndim == 0 or arr.shape[0] != n:
                raise ValueError(
                    "inputs need a shared leading sample dimension; input 0 "
                    f"has {n} samples, input {i} has shape {arr.shape}"
                )
            if arr.shape[1:] != self._per_sample_shapes[i]:
                raise ValueError(
                    f"input {i} has per-sample shape {arr.shape[1:]}, pool "
                    f"expects {self._per_sample_shapes[i]}"
                )
            if arr.dtype != self._dtypes[i]:
                raise ValueError(
                    f"input {i} has dtype {arr.dtype}, pool was compiled for "
                    f"{self._dtypes[i]} (a silent cast would break the "
                    "bit-equality contract)"
                )
        return n

    def serve(self, batch, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Serve any number of samples through the bucketed sessions.

        ``batch`` is one array/Tensor or a sequence of them (one per model
        input) sharing a leading sample count ``n``.  The request is routed
        through :meth:`decompose`; each chunk is a zero-copy slice replayed
        by the matching compiled session and copied into the ``(n, ...)``
        result (pass ``out`` to reuse your own buffer).  A remainder smaller
        than every bucket — only possible without a size-1 bucket — is the
        eager last resort.
        """
        arrays = _coerce_arrays(batch)
        n = self.validate(arrays)
        result_shape = (n,) + self._out_per_sample
        if out is None:
            out = np.empty(result_shape, dtype=self.output_dtype)
        elif out.shape != result_shape:
            raise ValueError(f"out has shape {out.shape}, expected {result_shape}")
        elif out.dtype != self.output_dtype:
            raise ValueError(
                f"out has dtype {out.dtype}, expected {self.output_dtype} "
                "(a mismatched buffer would silently cast the results)"
            )
        if n == 0:
            return out
        chunks, remainder = self.decompose(n)
        start = 0
        for bucket in chunks:
            stop = start + bucket
            session = self.sessions[bucket]
            out[start:stop] = session.run(*(a[start:stop] for a in arrays))
            self.bucket_calls[bucket] += 1
            self._m_bucket[bucket].inc()
            start = stop
        if remainder:
            out[start:] = self.sessions[self.max_bucket]._run_eager_tail(
                [a[start:] for a in arrays]
            )
            self.eager_calls += 1
            self._m_eager.inc()
        return out

    __call__ = serve


class _Request:
    __slots__ = ("arrays", "n", "future", "submitted_at", "deadline", "started",
                 "trace_id", "collected_at")

    def __init__(self, arrays, n, future, submitted_at, deadline=None,
                 trace_id=0):
        self.arrays = arrays
        self.n = n
        self.future = future
        self.submitted_at = submitted_at
        #: monotonic time after which the request must not be served.
        self.deadline = deadline
        #: True once the future was moved to RUNNING — a re-queued request
        #: (its worker was killed mid-serve) must not call
        #: ``set_running_or_notify_cancel`` a second time.
        self.started = False
        #: Tracer id (0 when tracing is off).
        self.trace_id = trace_id
        #: monotonic time a collecting worker absorbed this request (the
        #: queue-wait/service boundary); re-set if the request is re-queued
        #: after a worker crash, so stage metrics cover the last attempt.
        self.collected_at: Optional[float] = None


class Server:
    """A resilient dynamic-batching request queue over sharded
    :class:`SessionPool`\\ s.

    Clients call :meth:`submit` with one request's arrays (leading sample
    dimension, any size) and get a :class:`concurrent.futures.Future`
    resolving to an owned copy of that request's outputs.  ``workers``
    batching threads each drain the shared queue: a worker takes the oldest
    pending request, keeps coalescing whole requests until
    ``max_batch_size`` samples are in hand or ``max_wait`` seconds have
    passed, runs the coalesced batch through its private pool replica
    (isolating failures per request), and scatters the results back.

    Use as a context manager, or call :meth:`start`/:meth:`stop`
    explicitly::

        with Server(model, example, workers=2, queue_limit=256,
                    overload="reject", default_timeout=0.5) as server:
            futures = [server.submit(x) for x in requests]
            results = [f.result() for f in futures]

    A server is single-use: once stopped it cannot be restarted.

    Resilience parameters
    ---------------------
    queue_limit:
        Maximum queued requests; ``None`` (default) keeps the historical
        unbounded queue.
    overload:
        What a full queue does to ``submit()``: ``"block"`` (wait for
        space — honoring the request's deadline), ``"reject"`` (raise
        :class:`ServerOverloaded`), or ``"shed_oldest"`` (cancel the
        stalest queued future and admit the new request).
    default_timeout:
        Server-wide deadline (seconds from submit) applied to requests
        submitted without an explicit ``timeout``; ``None`` disables.
    retry:
        :class:`~repro.serve.resilience.RetryPolicy` for transient batch
        failures (default: 2 retries, 5 ms exponential backoff, capped).
    supervise:
        Run the watchdog thread (default).  Without it, worker crashes are
        still isolated per batch but dead threads stay dead.
    supervision:
        :class:`~repro.serve.resilience.SupervisionPolicy` tuning the
        watchdog (sweep interval, stuck timeout, restart backoff/cap).
        Note: replacing a *stuck* worker compiles a fresh pool on the
        watchdog thread; trace capture is process-global, so models whose
        pools lack a size-1 bucket (eager-tail serving) should not rely on
        stuck replacement while traffic is in flight.

    Observability parameters
    ------------------------
    registry:
        The :class:`repro.obs.metrics.Registry` this server's metrics live
        in.  ``None`` (default) creates a private registry per server —
        pass :func:`repro.obs.get_registry` to aggregate several servers
        onto one ``/metrics`` page (series are disambiguated by the
        ``server`` label), or :data:`repro.obs.NULL_REGISTRY` to make every
        metric write a no-op (``stats()`` counters then read 0; only the
        latency/stage percentiles, which come from internal windows, stay
        live).  The exported series are catalogued in :mod:`repro.obs`.
    trace:
        Record per-request stage spans (``queue_wait → coalesce → serve →
        scatter → resolve``) into a bounded ring (default on).  Export them
        with ``server.tracer.chrome_trace()`` or the ``/traces.json`` route
        of :meth:`serve_http`.
    trace_capacity:
        Span ring size (~5 spans per request).
    """

    #: Worker execution mode, stamped on every metric series as the
    #: ``mode`` label and reported by :meth:`stats`/:meth:`health`.
    #: :class:`~repro.serve.procpool.ProcServer` overrides it.
    mode = "thread"

    def __init__(
        self,
        model: Module,
        example_batch,
        buckets: Sequence[int] = DEFAULT_BUCKETS,
        *,
        workers: int = 1,
        max_batch_size: Optional[int] = None,
        max_wait: float = 0.002,
        fuse: bool = True,
        latency_window: int = 4096,
        queue_limit: Optional[int] = None,
        overload: str = "block",
        default_timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        supervise: bool = True,
        supervision: Optional[SupervisionPolicy] = None,
        registry: Optional[Registry] = None,
        trace: bool = True,
        trace_capacity: int = 4096,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        if queue_limit is not None and queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        if overload not in BACKPRESSURE_MODES:
            raise ValueError(
                f"overload must be one of {BACKPRESSURE_MODES}, got {overload!r}"
            )
        if default_timeout is not None and default_timeout <= 0:
            raise ValueError(
                f"default_timeout must be > 0, got {default_timeout}"
            )
        self._server_id = f"srv{next(_SERVER_IDS)}"
        self._registry = registry if registry is not None else Registry()
        self._tracer: Optional[Tracer] = Tracer(trace_capacity) if trace else None
        self._m = _ServerMetrics(
            self._registry, self._server_id, _normalize_buckets(buckets),
            self.mode,
        )
        pool_metrics = (self._m.bucket_calls, self._m.eager_tail)
        self._pool_factory = self._make_pool_factory(
            model, example_batch, buckets, fuse, pool_metrics
        )
        self._slots = [
            WorkerSlot(i, self._pool_factory()) for i in range(workers)
        ]
        self._all_pools: List[SessionPool] = [s.pool for s in self._slots]
        self._max_batch = (
            int(max_batch_size) if max_batch_size is not None
            else self._slots[0].pool.max_bucket
        )
        if self._max_batch < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        self._max_wait = float(max_wait)
        self._queue_limit = queue_limit
        self._overload = overload
        self._default_timeout = default_timeout
        self._retry = retry if retry is not None else RetryPolicy()
        self._supervise = bool(supervise)
        self._supervision = (
            supervision if supervision is not None else SupervisionPolicy()
        )
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._queue: deque = deque()
        self._watchdog: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        self._started = False
        self._stopping = False
        self._drained = False  # stop() finished failing the leftovers
        self._failed: Optional[str] = None  # terminal failure reason
        self._http = None  # ObsHTTPServer once serve_http() is called
        # Counters live in the registry (self._m children are the source of
        # truth; stats() is a snapshot view over them).  The percentile
        # windows stay internal deques: a histogram trades exactness for
        # bounded memory, while the recent-window percentiles stats()
        # promises need the raw samples.
        self._latencies: deque = deque(maxlen=latency_window)
        self._queue_waits: deque = deque(maxlen=latency_window)
        self._service_times: deque = deque(maxlen=latency_window)
        self._first_dispatch_at: Optional[float] = None
        self._last_completion_at: Optional[float] = None
        # Scrape-time gauges: evaluated by the registry at render, so queue
        # churn never writes a gauge.
        self._m.queue_depth.set_function(lambda: float(len(self._queue)))
        self._m.workers_alive.set_function(
            lambda: float(sum(1 for s in list(self._slots) if s.is_alive()))
        )
        self._m.batch_occupancy.set_function(self._occupancy)

    def _make_pool_factory(self, model, example_batch, buckets, fuse,
                           pool_metrics):
        """Build the per-slot pool factory.  Subclasses substituting a
        different worker substrate (process-backed proxies) override this
        single seam; everything else — coalescing, retries, supervision,
        metrics — reuses whatever the factory returns, as long as it keeps
        the :class:`SessionPool` serving surface."""
        return lambda: SessionPool(
            model, example_batch, buckets, fuse=fuse, metrics=pool_metrics
        )

    def _on_worker_kill(self, slot: WorkerSlot) -> None:
        """Hook invoked when a worker loop dies on :class:`WorkerKill`.

        Thread workers have nothing to clean up — the thread *is* the
        worker.  Process-backed servers override this to kill the slot's
        real OS process, so injected kills exercise the whole
        death-detection + respawn path, not just the thread half.
        """

    def _occupancy(self) -> float:
        dispatches = self._m.batches_dispatched.value
        if not dispatches:
            return 0.0
        return self._m.samples_dispatched.value / (dispatches * self._max_batch)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def workers(self) -> int:
        """Configured worker count (live count is in :meth:`health`)."""
        return sum(1 for slot in self._slots if not slot.stuck)

    @property
    def max_batch_size(self) -> int:
        return self._max_batch

    @property
    def registry(self) -> Registry:
        """The metric registry this server's series live in (see
        :mod:`repro.obs` for the catalogue).  Call ``.render()`` for the
        Prometheus text exposition, or expose it via :meth:`serve_http`."""
        return self._registry

    @property
    def tracer(self) -> Optional[Tracer]:
        """The request-span ring (None when built with ``trace=False``).
        ``tracer.chrome_trace()`` exports Chrome trace-event JSON."""
        return self._tracer

    @property
    def pools(self) -> List[SessionPool]:
        """Every pool ever attached to a worker slot (fault-injection and
        stats surface; replacement pools of stuck workers are appended)."""
        with self._lock:
            return list(self._all_pools)

    def _spawn(self, slot: WorkerSlot) -> None:
        suffix = f"-r{slot.restarts}" if slot.restarts else ""
        slot.busy_since = None
        slot.thread = threading.Thread(
            target=self._worker,
            args=(slot,),
            name=f"repro-serve-worker-{slot.index}{suffix}",
            daemon=True,
        )
        slot.thread.start()

    def start(self) -> "Server":
        with self._lock:
            if self._stopping:
                raise RuntimeError("a stopped Server cannot be restarted")
            if self._started:
                return self
            self._started = True
        for slot in self._slots:
            self._spawn(slot)
        if self._supervise:
            self._watchdog = threading.Thread(
                target=self._watch, name="repro-serve-watchdog", daemon=True
            )
            self._watchdog.start()
        return self

    def serve_http(self, host: str = "127.0.0.1", port: int = 0):
        """Start the observability HTTP edge for this server (idempotent).

        Exposes ``/metrics`` (this server's registry), ``/health`` and
        ``/ready`` (the :meth:`health`/:meth:`ready` probes) and
        ``/traces.json`` (the span ring) on a daemon thread; returns the
        running :class:`repro.obs.http.ObsHTTPServer` (read the bound port
        from ``.port``, the base URL from ``.url``).  The edge is shut down
        by :meth:`stop`.
        """
        if self._http is None:
            from repro.obs.http import ObsHTTPServer

            self._http = ObsHTTPServer(
                registry=self._registry,
                tracer=self._tracer,
                health_fn=self.health,
                ready_fn=self.ready,
                host=host,
                port=port,
            ).start()
        return self._http

    def stop(self, drain: bool = True, timeout: Optional[float] = 30.0) -> None:
        """Stop the workers; never hangs past ``timeout``.

        With ``drain=True`` (default) already-submitted requests are served
        before the workers exit; with ``drain=False`` pending futures are
        cancelled.  Whatever is still queued when the workers are gone —
        because they all died, or because ``timeout`` seconds passed — is
        resolved exceptionally with a clear error instead of stranding the
        clients, and blocked ``submit()`` callers are woken.
        """
        http, self._http = self._http, None
        if http is not None:
            http.stop()
        with self._cond:
            already = not self._started or self._stopping
            self._stopping = True
            if not already and not drain:
                while self._queue:
                    self._queue.popleft().future.cancel()
            self._cond.notify_all()
        self._stop_event.set()
        if already:
            return
        if self._watchdog is not None:
            self._watchdog.join(timeout=max(1.0, self._supervision.watchdog_interval * 10))
        deadline = time.monotonic() + timeout if timeout is not None else None
        for slot in self._slots:
            thread = slot.thread
            if thread is None:
                continue
            if deadline is None:
                thread.join()
            else:
                thread.join(max(0.0, deadline - time.monotonic()))
        # Anything still queued has no worker left to serve it (all dead,
        # or stuck past the stop timeout): fail it loudly.
        with self._cond:
            leftovers = list(self._queue)
            self._queue.clear()
            self._cond.notify_all()
        if leftovers:
            exc = RuntimeError(
                f"Server stopped with {len(leftovers)} unserved request(s): "
                "no live worker drained the queue (workers dead, or the "
                f"stop timeout of {timeout}s expired)"
            )
            for request in leftovers:
                self._resolve_exceptionally(request, exc)
        # From here on nobody drains the queue: a worker unwedging *after*
        # stop() (its process was just killed, say) must fail its requests
        # instead of re-queueing them into the void.
        with self._cond:
            self._drained = True

    def __enter__(self) -> "Server":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    # ------------------------------------------------------------------ #
    # Probes
    # ------------------------------------------------------------------ #
    def ready(self) -> bool:
        """True when the server can accept and serve a request right now."""
        with self._lock:
            if not self._started or self._stopping or self._failed:
                return False
        return any(slot.is_alive() for slot in self._slots)

    def health(self) -> Dict[str, object]:
        """Liveness/supervision snapshot (cheap; safe to poll)."""
        alive = sum(1 for slot in self._slots if slot.is_alive())
        with self._lock:
            return {
                "ready": bool(
                    self._started and not self._stopping and not self._failed
                    and alive > 0
                ),
                "mode": self.mode,
                "started": self._started,
                "stopping": self._stopping,
                "failed": self._failed,
                "workers_configured": len(self._slots),
                "workers_alive": alive,
                "workers_stuck": sum(1 for s in self._slots if s.stuck),
                "workers_retired": sum(1 for s in self._slots if s.retired),
                "worker_crashes": sum(s.crashes for s in self._slots),
                "worker_restarts": int(self._m.worker_restarts.value),
                "queue_depth": len(self._queue),
            }

    # ------------------------------------------------------------------ #
    # Client surface
    # ------------------------------------------------------------------ #
    def submit(self, *batch, timeout: Optional[float] = None) -> Future:
        """Enqueue one request; returns a future of its ``(n, ...)`` outputs.

        Shapes and dtypes are validated here, synchronously, so malformed
        requests raise at the call site instead of poisoning a future.  The
        arrays are read at dispatch time — do not mutate them before the
        future resolves.  The resolved array is an owned copy.

        ``timeout`` (seconds, overriding the server ``default_timeout``)
        attaches a deadline: a request still queued when it expires resolves
        with :class:`DeadlineExceeded` instead of being served.  In
        ``block`` overload mode the deadline also bounds the wait for queue
        space (raising :class:`DeadlineExceeded` synchronously).
        """
        if timeout is None:
            timeout = self._default_timeout
        elif timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        pool = self._slots[0].pool
        arrays = _coerce_arrays(batch)
        n = pool.validate(arrays)
        future: Future = Future()
        if n == 0:
            future.set_result(
                np.empty((0,) + pool._out_per_sample, dtype=pool.output_dtype)
            )
            return future
        now = time.monotonic()
        deadline = now + timeout if timeout is not None else None
        trace_id = self._tracer.new_trace() if self._tracer is not None else 0
        request = _Request(arrays, n, future, now, deadline, trace_id=trace_id)
        with self._cond:
            self._check_accepting_locked()
            if self._queue_limit is not None:
                self._admit_locked(request, deadline)
            self._queue.append(request)
            self._cond.notify_all()
        self._m.requests_submitted.inc()
        return future

    def _check_accepting_locked(self) -> None:
        if self._failed:
            raise RuntimeError(f"Server failed: {self._failed}")
        if not self._started or self._stopping:
            raise RuntimeError(
                "Server is not running (start() it, or use it as a "
                "context manager)"
            )

    def _admit_locked(self, request: _Request, deadline: Optional[float]) -> None:
        """Enforce ``queue_limit`` per the overload policy (cond held)."""
        if self._overload == "reject":
            if len(self._queue) >= self._queue_limit:
                self._m.requests_rejected.inc()
                raise ServerOverloaded(
                    f"queue is full ({self._queue_limit} requests); "
                    "retry later or raise queue_limit"
                )
        elif self._overload == "shed_oldest":
            while len(self._queue) >= self._queue_limit:
                stale = self._queue.popleft()
                if stale.future.cancel():
                    self._m.requests_shed.inc()
                # Already cancelled/running futures just drop off the queue.
        else:  # block
            while len(self._queue) >= self._queue_limit:
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self._m.requests_expired.inc()
                        raise DeadlineExceeded(
                            "request timed out waiting for queue space "
                            f"(queue_limit={self._queue_limit})"
                        )
                    self._cond.wait(timeout=remaining)
                else:
                    self._cond.wait()
                self._check_accepting_locked()

    def __call__(self, *batch, timeout: Optional[float] = None) -> np.ndarray:
        """Blocking convenience: submit one request and wait for its result."""
        return self.submit(*batch, timeout=timeout).result()

    def stats(self) -> Dict[str, float]:
        """A snapshot of the serving metrics.

        Counters are read from the server's registry children — the exact
        series ``/metrics`` exports (catalogued in :mod:`repro.obs`) — so
        this stays a zero-dependency in-process view of the same numbers.
        All ``*_ms`` values are milliseconds; all percentile windows share
        ``latency_window`` recent samples.

        - ``queue_depth``: requests currently waiting;
        - ``batch_occupancy``: mean coalesced samples per dispatch divided
          by ``max_batch_size`` (1.0 = every dispatch full; an oversized
          single request counts as one full dispatch);
        - ``latency_ms_p50`` / ``latency_ms_p95`` / ``latency_ms_p99``:
          **submit-to-result** request latency percentiles over the recent
          window — the same quantity the
          ``repro_serve_request_latency_ms`` histogram observes;
        - ``queue_wait_ms_p50/p95/p99``: submit-to-collection wait (time a
          request sat queued before a worker absorbed it;
          ``repro_serve_queue_wait_ms``);
        - ``service_ms_p50/p95/p99``: collection-to-result time (coalesce +
          serve; ``repro_serve_service_ms``), so per request
          ``latency ≈ queue_wait + service``;
        - ``throughput_rps``: completed samples per second between the
          first dispatch and the latest completion;
        - resilience counters: ``requests_rejected`` (reject-mode refusals),
          ``requests_shed`` (shed_oldest cancellations), ``requests_expired``
          (deadline sweeps), ``requests_failed`` (futures resolved with the
          batch's exception), ``batches_retried`` (re-serve attempts from
          transient retries and bisection), ``worker_restarts``;
        - plus raw counters (requests/samples/batches), ``workers_alive``,
          and the pools' bucket routing counts.
        """
        m = self._m
        alive = sum(1 for slot in self._slots if slot.is_alive())
        with self._lock:
            latencies = np.asarray(self._latencies, dtype=np.float64)
            queue_waits = np.asarray(self._queue_waits, dtype=np.float64)
            service_times = np.asarray(self._service_times, dtype=np.float64)
            depth = len(self._queue)
            # Snapshot the pool list under the lock: _handle_stuck appends
            # replacement pools concurrently (also under this lock).
            pools = list(self._all_pools)
            elapsed = (
                self._last_completion_at - self._first_dispatch_at
                if self._first_dispatch_at is not None
                and self._last_completion_at is not None
                else 0.0
            )
        completed_samples = m.samples_completed.value
        throughput = completed_samples / elapsed if elapsed > 0 else 0.0
        snapshot = {
            "mode": self.mode,  # type: ignore[dict-item]
            "queue_depth": float(depth),
            "requests_submitted": m.requests_submitted.value,
            "requests_completed": m.requests_completed.value,
            "samples_completed": completed_samples,
            "batches_dispatched": m.batches_dispatched.value,
            "batch_occupancy": float(self._occupancy()),
            "throughput_rps": float(throughput),
            "requests_rejected": m.requests_rejected.value,
            "requests_shed": m.requests_shed.value,
            "requests_expired": m.requests_expired.value,
            "requests_failed": m.requests_failed.value,
            "batches_retried": m.batches_retried.value,
            "worker_restarts": m.worker_restarts.value,
            "workers_alive": float(alive),
        }
        for pct in (50, 95, 99):
            for key, window in (
                ("latency_ms", latencies),
                ("queue_wait_ms", queue_waits),
                ("service_ms", service_times),
            ):
                snapshot[f"{key}_p{pct}"] = (
                    float(np.percentile(window, pct) * 1e3)
                    if window.size
                    else 0.0
                )
        bucket_calls: Dict[int, int] = {}
        for pool in pools:
            for bucket, count in pool.bucket_calls.items():
                bucket_calls[bucket] = bucket_calls.get(bucket, 0) + count
        snapshot["bucket_calls"] = bucket_calls  # type: ignore[assignment]
        snapshot["eager_tail_serves"] = float(
            sum(pool.eager_calls for pool in pools)
        )
        return snapshot

    # ------------------------------------------------------------------ #
    # Batching loop
    # ------------------------------------------------------------------ #
    def _expire_locked(self, request: _Request, now: float) -> bool:
        """Resolve ``request`` with DeadlineExceeded if it expired (cond
        held); returns True when the request was consumed."""
        if request.deadline is None or now < request.deadline:
            return False
        self._m.requests_expired.inc()
        if self._tracer is not None and request.trace_id:
            self._tracer.record(
                request.trace_id, "expired", request.submitted_at, now,
                queued_s=round(now - request.submitted_at, 6),
            )
        if request.started or request.future.set_running_or_notify_cancel():
            if not request.future.done():
                request.future.set_exception(
                    DeadlineExceeded(
                        "request expired after "
                        f"{now - request.submitted_at:.3f}s in queue "
                        "(swept before dispatch)"
                    )
                )
        return True

    def _resolve_exceptionally(self, request: _Request, exc: BaseException) -> None:
        """Fail a request's future if it can still be failed."""
        if request.future.done():
            return
        if request.started or request.future.set_running_or_notify_cancel():
            if not request.future.done():
                request.future.set_exception(exc)

    def _collect(self, slot: WorkerSlot) -> Optional[List[_Request]]:
        """Take one coalesced batch off the queue (None = shut down).

        Blocks until a request arrives, then keeps absorbing whole pending
        requests while the running total stays within ``max_batch_size``,
        waiting up to ``max_wait`` seconds for stragglers before
        dispatching what it has.  Requests are never split: a request
        larger than ``max_batch_size`` is dispatched alone (the pool
        decomposes it internally).

        Expired requests are swept here (resolved with
        :class:`DeadlineExceeded`, never served) and every collected future
        is moved to RUNNING (``set_running_or_notify_cancel``): futures a
        client already cancelled are dropped, and a cancel arriving after
        collection becomes a no-op instead of an ``InvalidStateError`` when
        the worker scatters results.  Each pop notifies the condition so
        ``block``-mode submitters waiting for queue space wake up.
        """
        with self._cond:
            while True:
                while not self._queue and not self._stopping and not slot.retired:
                    self._cond.wait()
                if slot.retired or not self._queue:
                    return None  # retired, or stopping with a drained queue
                now = time.monotonic()
                first = self._queue.popleft()
                self._cond.notify_all()
                if self._expire_locked(first, now):
                    continue
                if first.started or first.future.set_running_or_notify_cancel():
                    first.started = True
                    first.collected_at = now
                    break  # not cancelled; serve it
            requests = [first]
            total = first.n
            deadline = time.monotonic() + self._max_wait
            while total < self._max_batch:
                if self._queue:
                    now = time.monotonic()
                    if self._expire_locked(self._queue[0], now):
                        self._queue.popleft()
                        self._cond.notify_all()
                        continue
                    if total + self._queue[0].n > self._max_batch:
                        break
                    request = self._queue.popleft()
                    self._cond.notify_all()
                    if not (request.started
                            or request.future.set_running_or_notify_cancel()):
                        continue  # cancelled while queued: drop it
                    request.started = True
                    request.collected_at = now
                    requests.append(request)
                    total += request.n
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or self._stopping:
                        break
                    self._cond.wait(timeout=remaining)
            if self._first_dispatch_at is None:
                self._first_dispatch_at = time.monotonic()
            return requests

    def _requeue(self, requests: List[_Request]) -> None:
        """Put a killed worker's unresolved requests back at the queue head.

        After :meth:`stop` has already failed the leftovers the queue is
        dead — re-queueing would strand the futures forever, so they are
        resolved exceptionally instead.
        """
        pending = [r for r in requests if not r.future.done()]
        if not pending:
            return
        with self._cond:
            drained = self._drained
            if not drained:
                self._queue.extendleft(reversed(pending))
                self._cond.notify_all()
        if drained:
            exc = RuntimeError(
                "worker died holding this request after the server stopped"
            )
            for request in pending:
                self._resolve_exceptionally(request, exc)

    def _worker(self, slot: WorkerSlot) -> None:
        while True:
            requests = self._collect(slot)
            if requests is None:
                return
            total = sum(r.n for r in requests)
            dispatched_at = time.monotonic()
            self._m.batches_dispatched.inc()
            # Clamped so occupancy stays a fraction <= 1.0: an oversized
            # single request (never split) counts as one full dispatch.
            self._m.samples_dispatched.inc(min(total, self._max_batch))
            # Stage boundary: submit -> collected is queue wait, collected ->
            # dispatch is coalescing (waiting for stragglers).  A re-queued
            # request (worker killed mid-serve) is collected again, so these
            # cover its last attempt.
            queue_waits = []
            spans = [] if self._tracer is not None else None
            coalesce_args = {"batch_requests": len(requests),
                             "batch_samples": total}
            for request in requests:
                if request.collected_at is None:
                    continue
                wait = request.collected_at - request.submitted_at
                queue_waits.append(wait)
                if spans is not None and request.trace_id:
                    spans.append((request.trace_id, "queue_wait",
                                  request.submitted_at, request.collected_at,
                                  None))
                    spans.append((request.trace_id, "coalesce",
                                  request.collected_at, dispatched_at,
                                  coalesce_args))
            if queue_waits:
                self._m.queue_wait_ms.observe_many(
                    [w * 1e3 for w in queue_waits])
            if spans:
                self._tracer.record_many(spans)
            with self._lock:
                self._queue_waits.extend(queue_waits)
            slot.busy_since = dispatched_at
            try:
                self._serve_group(slot.pool, requests, first=True)
            except WorkerKill:
                # Simulated hard crash: give the requests back to the queue
                # and die; the watchdog counts the crash and respawns this
                # slot after its restart backoff.  The hook lets process
                # servers take down the slot's real OS process first.
                self._on_worker_kill(slot)
                self._requeue(requests)
                return
            except Exception as exc:
                # Widened safety net (concatenate, scatter, metrics): fail
                # the affected futures, never the worker thread.
                failed = 0
                for request in requests:
                    if not request.future.done():
                        request.future.set_exception(exc)
                        failed += 1
                if failed:
                    self._m.requests_failed.inc(failed)
            finally:
                slot.busy_since = None
            if slot.retired:
                return

    def _serve_group(self, pool: SessionPool, requests: List[_Request],
                     *, first: bool) -> None:
        """Serve one group of requests with retry/backoff and bisection.

        Transient failures (per the retry policy) re-serve the whole group
        with exponential backoff; a group that still fails is split in two
        and each half re-served, recursing until single requests — so one
        poisoned request fails alone while its co-batched neighbours
        succeed.  Every future is resolved exactly once.
        """
        if len(requests) == 1:
            arrays = requests[0].arrays
        else:
            arrays = [
                np.concatenate([r.arrays[i] for r in requests])
                for i in range(len(requests[0].arrays))
            ]
        # Process-backed proxies accept a per-batch deadline hint so the
        # worker process can refuse work that already expired on the wire;
        # plain SessionPools don't have the method (getattr keeps the
        # thread-mode hot path untouched).  FaultInjector only shadows
        # ``.serve``, so the hint survives injection.
        set_hint = getattr(pool, "set_deadline_hint", None)
        if set_hint is not None:
            deadlines = [r.deadline for r in requests]
            # The *latest* deadline: the worker may refuse the batch only
            # when every co-batched request has expired.
            hint = (max(deadlines)
                    if deadlines and all(d is not None for d in deadlines)
                    else None)
        attempt = 0
        while True:
            if not (first and attempt == 0):
                self._m.batches_retried.inc()
            serve_start = time.monotonic()
            try:
                if set_hint is not None:
                    set_hint(hint)
                out = pool.serve(arrays)
                break
            except WorkerKill:
                raise
            except Exception as exc:
                self._record_serve_span(
                    requests, serve_start, time.monotonic(), attempt,
                    error=type(exc).__name__,
                )
                if self._retry.is_transient(exc) and attempt < self._retry.max_retries:
                    time.sleep(self._retry.delay(attempt))
                    attempt += 1
                    continue
                if len(requests) == 1:
                    request = requests[0]
                    if not request.future.done():
                        request.future.set_exception(exc)
                    self._m.requests_failed.inc()
                    return
                mid = len(requests) // 2
                self._serve_group(pool, requests[:mid], first=False)
                self._serve_group(pool, requests[mid:], first=False)
                return
        done_at = time.monotonic()
        self._record_serve_span(requests, serve_start, done_at, attempt)
        if len(requests) == 1:
            # `out` is a fresh per-call array no one else holds; hand it
            # over without the defensive copy.
            if not requests[0].future.done():
                requests[0].future.set_result(out)
        else:
            start = 0
            for request in requests:
                if not request.future.done():
                    request.future.set_result(
                        out[start : start + request.n].copy()
                    )
                start += request.n
        scatter_end = time.monotonic()
        self._m.requests_completed.inc(len(requests))
        self._m.samples_completed.inc(sum(r.n for r in requests))
        # done_at (serve finished) is the latency endpoint, matching the
        # historical stats() definition; the histogram observes the exact
        # same quantity so percentiles and /metrics agree on what
        # "latency" means (submit-to-result).
        latencies = [done_at - r.submitted_at for r in requests]
        services = [done_at - r.collected_at for r in requests
                    if r.collected_at is not None]
        with self._lock:
            self._last_completion_at = done_at
            self._latencies.extend(latencies)
            self._service_times.extend(services)
        self._m.request_latency_ms.observe_many([v * 1e3 for v in latencies])
        if services:
            self._m.service_ms.observe_many([v * 1e3 for v in services])
        if self._tracer is not None:
            resolve_end = time.monotonic()
            spans = []
            for request in requests:
                if not request.trace_id:
                    continue
                spans.append((request.trace_id, "scatter", done_at,
                              scatter_end, {"samples": request.n}))
                spans.append((request.trace_id, "resolve", scatter_end,
                              resolve_end, None))
            if spans:
                self._tracer.record_many(spans)

    def _record_serve_span(self, requests: List[_Request], start: float,
                           end: float, attempt: int,
                           error: Optional[str] = None) -> None:
        """One ``serve`` span per request per attempt, so retries and
        bisection halves show up as repeated serve stages on the trace."""
        if self._tracer is None:
            return
        args = {"attempt": attempt, "group_requests": len(requests)}
        if error is not None:
            args["error"] = error
        spans = [(request.trace_id, "serve", start, end, args)
                 for request in requests if request.trace_id]
        if spans:
            self._tracer.record_many(spans)

    # ------------------------------------------------------------------ #
    # Supervision
    # ------------------------------------------------------------------ #
    def _watch(self) -> None:
        """Watchdog loop: sweep deadlines, respawn dead workers, replace
        stuck ones, and fail the queue when nobody is left to serve it."""
        policy = self._supervision
        while not self._stop_event.wait(policy.watchdog_interval):
            with self._cond:
                if self._stopping:
                    return
                now = time.monotonic()
                if self._queue:
                    kept = deque(
                        r for r in self._queue if not self._expire_locked(r, now)
                    )
                    if len(kept) != len(self._queue):
                        self._queue = kept
                        self._cond.notify_all()
                slots = list(self._slots)
            for slot in slots:
                if slot.retired or slot.thread is None:
                    continue
                if not slot.thread.is_alive():
                    self._handle_dead(slot, now)
                elif (
                    policy.stuck_timeout is not None
                    and slot.busy_since is not None
                    and now - slot.busy_since > policy.stuck_timeout
                ):
                    self._handle_stuck(slot)
            self._sweep_extra(now)
            self._check_all_dead()

    def _sweep_extra(self, now: float) -> None:
        """Per-sweep watchdog extension point (no-op for thread workers).

        Process servers use it to notice worker processes that died while
        their parent-side thread sat idle (no traffic to surface the
        death) and respawn them with backoff.
        """

    def _handle_dead(self, slot: WorkerSlot, now: float) -> None:
        """Count a crash, schedule/execute the backed-off respawn."""
        if slot.respawn_at is None:
            slot.crashes += 1
            if slot.restarts >= self._supervision.max_restarts:
                slot.retired = True  # crash loop: give up on this slot
                return
            slot.respawn_at = now + self._supervision.restart_delay(slot.crashes)
        if now >= slot.respawn_at:
            slot.respawn_at = None
            slot.restarts += 1
            self._m.worker_restarts.inc()
            self._spawn(slot)

    def _handle_stuck(self, slot: WorkerSlot) -> None:
        """Abandon a stuck worker and spawn a replacement slot.

        The stuck thread cannot be killed; its slot is retired so it exits
        after the batch it is wedged on (if that ever finishes, the futures
        it holds still resolve — each future resolves exactly once).  The
        replacement gets a freshly compiled pool because the stuck thread
        still owns the old one's buffers.
        """
        slot.stuck = True
        slot.retired = True
        replacement = WorkerSlot(len(self._slots), self._pool_factory())
        # Publish the new slot/pool under the lock: stats() and the pools
        # property snapshot these lists concurrently, and a bare append
        # would race their iteration.
        with self._lock:
            self._slots.append(replacement)
            self._all_pools.append(replacement.pool)
        self._m.worker_restarts.inc()
        self._spawn(replacement)
        with self._cond:
            self._cond.notify_all()  # let the stuck thread see retirement

    def _check_all_dead(self) -> None:
        """With no live or respawnable worker left, fail the queue loudly."""
        if any(
            slot.is_alive() or (not slot.retired and slot.respawn_at is not None)
            for slot in self._slots
        ):
            return
        with self._cond:
            if self._stopping or self._failed:
                return
            self._failed = (
                "all workers are dead (crash-loop retirement); "
                "the server cannot serve"
            )
            leftovers = list(self._queue)
            self._queue.clear()
            self._cond.notify_all()
        exc = RuntimeError(f"Server failed: {self._failed}")
        for request in leftovers:
            self._resolve_exceptionally(request, exc)
