"""Dynamic-batching serving front end: bucketed pools, a request queue,
sharded workers.

:class:`InferenceSession` replays exactly one batch shape; this module turns
that into a front end that serves *any* traffic shape:

- :class:`SessionPool` compiles one session per **bucket size** (default
  1/4/16/64) in a single up-front pass over the model and routes any
  incoming sample count through a greedy largest-first decomposition
  (85 → 64+16+4+1), serving each chunk as a zero-copy slice through the
  matching compiled session.  The eager odd-chunk fallback that
  :func:`~repro.serve.session.serve_batches` leans on becomes a last
  resort, reached only when the remainder is smaller than every bucket
  (impossible with a size-1 bucket in the pool).
- :class:`Server` is the request-queue front end: clients :meth:`submit
  <Server.submit>` arrays and get :class:`concurrent.futures.Future`\\ s
  back; a batching loop coalesces pending requests up to
  ``max_batch_size`` samples (waiting at most ``max_wait`` seconds once a
  request is in hand), packs them into bucket runs, and scatters **result
  copies** back into the futures — callers own their outputs, the reused
  session buffers never escape.
- **Sharding**: ``workers=N`` runs N batching loops, each holding its own
  :class:`SessionPool` replica.  Replicas are safe because replay touches
  only per-session pre-allocated buffers while parameters stay bound by
  reference to the one shared model (an in-place fine-tune step shows up
  on every worker without recompiling).
- **Metrics**: :meth:`Server.stats` reports queue depth, batch occupancy,
  p50/p95 request latency and served throughput; the ``serve_queue``
  benchmark workload records them per backend.

Numerics contract: every routed micro-batch is **bit-equal to the eager
``no_grad`` forward of exactly those samples** (the per-session guarantee).
Whole-request results can differ from one full-batch eager forward in the
last ulp, because BLAS kernels reassociate differently across batch sizes —
the same caveat any dynamic batcher inherits.  Chunk boundaries only
*matter* for traces whose samples interact through batch statistics
(:attr:`SessionPool.has_batch_statistics`); route such models with a single
bucket or keep them on the eager path.

Dtype is part of the compiled signature: requests must match the example
batch's dtypes exactly (see :meth:`InferenceSession.run`).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from concurrent.futures import Future

import numpy as np

from repro.nn.module import Module
from repro.serve.session import (
    InferenceSession,
    _as_input_tensors,
    _coerce_arrays,
    compile_inference,
)

__all__ = ["SessionPool", "Server", "DEFAULT_BUCKETS"]

DEFAULT_BUCKETS = (1, 4, 16, 64)


def _normalize_buckets(buckets: Sequence[int]) -> Tuple[int, ...]:
    """Validate and sort bucket sizes largest-first."""
    cleaned = sorted({int(b) for b in buckets}, reverse=True)
    if not cleaned:
        raise ValueError("SessionPool needs at least one bucket size")
    if cleaned[-1] < 1:
        raise ValueError(f"bucket sizes must be positive, got {sorted(buckets)}")
    return tuple(cleaned)


class SessionPool:
    """One compiled :class:`InferenceSession` per bucket size, plus routing.

    Parameters
    ----------
    model:
        An eval-mode :class:`~repro.nn.module.Module` (same contract as
        :func:`~repro.serve.session.compile_inference`).
    example_batch:
        One array/Tensor or a sequence of them with a leading sample
        dimension; only the per-sample shapes and dtypes matter — each
        bucket's example is built by cycling these samples.
    buckets:
        The batch sizes to compile, default ``(1, 4, 16, 64)``.  Include
        ``1`` so every sample count decomposes exactly; without it,
        remainders smaller than the smallest bucket fall back to the
        model's eager ``no_grad`` forward (counted in :attr:`eager_calls`).
    fuse:
        Run the trace-time fusion pass on each compiled session (default).

    Like the sessions it holds, a pool is **not thread-safe**: give each
    worker its own replica (:class:`Server` does).
    """

    def __init__(
        self,
        model: Module,
        example_batch,
        buckets: Sequence[int] = DEFAULT_BUCKETS,
        fuse: bool = True,
    ) -> None:
        self._buckets = _normalize_buckets(buckets)
        examples = [t.data for t in _as_input_tensors(example_batch)]
        for i, arr in enumerate(examples):
            if arr.ndim == 0 or arr.shape[0] < 1:
                raise ValueError(
                    f"example input {i} needs at least one sample along a "
                    f"leading batch dimension, got shape {arr.shape}"
                )
        if len({a.shape[0] for a in examples}) != 1:
            raise ValueError(
                "example inputs disagree on the sample count: "
                f"{[a.shape[0] for a in examples]}"
            )
        self._per_sample_shapes = [a.shape[1:] for a in examples]
        self._dtypes = [a.dtype for a in examples]

        # One up-front compile pass: every bucket's example cycles the same
        # sample rows (np.resize repeats whole rows because the trailing
        # extents match), so all sessions capture the same trace modulo the
        # batch extent.  Model validation/rejection happens on the first
        # compile and, being deterministic, cannot diverge across buckets.
        self.sessions: Dict[int, InferenceSession] = {}
        for bucket in self._buckets:
            example = tuple(
                np.resize(a, (bucket,) + a.shape[1:]) for a in examples
            )
            session = compile_inference(model, example, fuse=fuse)
            if not session.output_shape or session.output_shape[0] != bucket:
                raise ValueError(
                    "SessionPool needs a per-sample model output of shape "
                    f"(batch, ...); the bucket-{bucket} trace produces "
                    f"{session.output_shape} (a reduced/scalar output cannot "
                    "be bucket-served)"
                )
            self.sessions[bucket] = session
        largest = self.sessions[self._buckets[0]]
        self._out_per_sample = largest.output_shape[1:]
        self.output_dtype = largest.output_dtype
        #: Chunk boundaries change results for traces whose samples interact
        #: through batch statistics; see the module docstring.
        self.has_batch_statistics = any(
            s.has_batch_statistics for s in self.sessions.values()
        )
        #: Routing counters (per-pool, not thread-safe): bucket size ->
        #: number of compiled runs, plus eager last-resort serves.
        self.bucket_calls: Dict[int, int] = {b: 0 for b in self._buckets}
        self.eager_calls = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def buckets(self) -> Tuple[int, ...]:
        """Compiled bucket sizes, largest first."""
        return self._buckets

    @property
    def max_bucket(self) -> int:
        return self._buckets[0]

    @property
    def input_dtypes(self) -> List[np.dtype]:
        return list(self._dtypes)

    @property
    def per_sample_shapes(self) -> List[Tuple[int, ...]]:
        return list(self._per_sample_shapes)

    def decompose(self, n: int) -> Tuple[List[int], int]:
        """Greedy largest-first decomposition of ``n`` into bucket sizes.

        Returns ``(chunks, remainder)``; the remainder is 0 whenever the
        pool has a size-1 bucket, otherwise it is the leftover sample count
        (smaller than every bucket) that must go through the eager path.
        """
        if n < 0:
            raise ValueError(f"sample count must be >= 0, got {n}")
        chunks: List[int] = []
        remaining = n
        for bucket in self._buckets:
            while remaining >= bucket:
                chunks.append(bucket)
                remaining -= bucket
        return chunks, remaining

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def validate(self, arrays: Sequence[np.ndarray]) -> int:
        """Check per-sample shapes/dtypes of one request; return its size."""
        if len(arrays) != len(self._per_sample_shapes):
            raise ValueError(
                f"pool takes {len(self._per_sample_shapes)} input(s), "
                f"got {len(arrays)}"
            )
        n = arrays[0].shape[0] if arrays[0].ndim else 0
        for i, arr in enumerate(arrays):
            if arr.ndim == 0 or arr.shape[0] != n:
                raise ValueError(
                    "inputs need a shared leading sample dimension; input 0 "
                    f"has {n} samples, input {i} has shape {arr.shape}"
                )
            if arr.shape[1:] != self._per_sample_shapes[i]:
                raise ValueError(
                    f"input {i} has per-sample shape {arr.shape[1:]}, pool "
                    f"expects {self._per_sample_shapes[i]}"
                )
            if arr.dtype != self._dtypes[i]:
                raise ValueError(
                    f"input {i} has dtype {arr.dtype}, pool was compiled for "
                    f"{self._dtypes[i]} (a silent cast would break the "
                    "bit-equality contract)"
                )
        return n

    def serve(self, batch, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Serve any number of samples through the bucketed sessions.

        ``batch`` is one array/Tensor or a sequence of them (one per model
        input) sharing a leading sample count ``n``.  The request is routed
        through :meth:`decompose`; each chunk is a zero-copy slice replayed
        by the matching compiled session and copied into the ``(n, ...)``
        result (pass ``out`` to reuse your own buffer).  A remainder smaller
        than every bucket — only possible without a size-1 bucket — is the
        eager last resort.
        """
        arrays = _coerce_arrays(batch)
        n = self.validate(arrays)
        result_shape = (n,) + self._out_per_sample
        if out is None:
            out = np.empty(result_shape, dtype=self.output_dtype)
        elif out.shape != result_shape:
            raise ValueError(f"out has shape {out.shape}, expected {result_shape}")
        elif out.dtype != self.output_dtype:
            raise ValueError(
                f"out has dtype {out.dtype}, expected {self.output_dtype} "
                "(a mismatched buffer would silently cast the results)"
            )
        if n == 0:
            return out
        chunks, remainder = self.decompose(n)
        start = 0
        for bucket in chunks:
            stop = start + bucket
            session = self.sessions[bucket]
            out[start:stop] = session.run(*(a[start:stop] for a in arrays))
            self.bucket_calls[bucket] += 1
            start = stop
        if remainder:
            out[start:] = self.sessions[self.max_bucket]._run_eager_tail(
                [a[start:] for a in arrays]
            )
            self.eager_calls += 1
        return out

    __call__ = serve


class _Request:
    __slots__ = ("arrays", "n", "future", "submitted_at")

    def __init__(self, arrays, n, future, submitted_at):
        self.arrays = arrays
        self.n = n
        self.future = future
        self.submitted_at = submitted_at


class Server:
    """A dynamic-batching request queue over sharded :class:`SessionPool`\\ s.

    Clients call :meth:`submit` with one request's arrays (leading sample
    dimension, any size) and get a :class:`concurrent.futures.Future`
    resolving to an owned copy of that request's outputs.  ``workers``
    batching threads each drain the shared queue: a worker takes the oldest
    pending request, keeps coalescing whole requests until
    ``max_batch_size`` samples are in hand or ``max_wait`` seconds have
    passed, runs the coalesced batch through its private pool replica, and
    scatters the results back.

    Use as a context manager, or call :meth:`start`/:meth:`stop`
    explicitly::

        with Server(model, example, workers=2) as server:
            futures = [server.submit(x) for x in requests]
            results = [f.result() for f in futures]

    A server is single-use: once stopped it cannot be restarted.
    """

    def __init__(
        self,
        model: Module,
        example_batch,
        buckets: Sequence[int] = DEFAULT_BUCKETS,
        *,
        workers: int = 1,
        max_batch_size: Optional[int] = None,
        max_wait: float = 0.002,
        fuse: bool = True,
        latency_window: int = 4096,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        self._pools = [
            SessionPool(model, example_batch, buckets, fuse=fuse)
            for _ in range(workers)
        ]
        self._max_batch = (
            int(max_batch_size) if max_batch_size is not None
            else self._pools[0].max_bucket
        )
        if self._max_batch < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        self._max_wait = float(max_wait)
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._queue: deque = deque()
        self._threads: List[threading.Thread] = []
        self._started = False
        self._stopping = False
        # Metrics (guarded by self._lock).
        self._submitted_requests = 0
        self._completed_requests = 0
        self._completed_samples = 0
        self._dispatches = 0
        self._dispatched_samples = 0
        self._latencies: deque = deque(maxlen=latency_window)
        self._first_dispatch_at: Optional[float] = None
        self._last_completion_at: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def workers(self) -> int:
        return len(self._pools)

    @property
    def max_batch_size(self) -> int:
        return self._max_batch

    def start(self) -> "Server":
        with self._lock:
            if self._stopping:
                raise RuntimeError("a stopped Server cannot be restarted")
            if self._started:
                return self
            self._started = True
            self._threads = [
                threading.Thread(
                    target=self._worker,
                    args=(pool,),
                    name=f"repro-serve-worker-{i}",
                    daemon=True,
                )
                for i, pool in enumerate(self._pools)
            ]
        for thread in self._threads:
            thread.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop the workers.

        With ``drain=True`` (default) every already-submitted request is
        served before the workers exit; with ``drain=False`` pending
        futures are cancelled.
        """
        with self._cond:
            if not self._started or self._stopping:
                self._stopping = True
                return
            self._stopping = True
            if not drain:
                while self._queue:
                    self._queue.popleft().future.cancel()
            self._cond.notify_all()
        for thread in self._threads:
            thread.join()

    def __enter__(self) -> "Server":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    # ------------------------------------------------------------------ #
    # Client surface
    # ------------------------------------------------------------------ #
    def submit(self, *batch) -> Future:
        """Enqueue one request; returns a future of its ``(n, ...)`` outputs.

        Shapes and dtypes are validated here, synchronously, so malformed
        requests raise at the call site instead of poisoning a future.  The
        arrays are read at dispatch time — do not mutate them before the
        future resolves.  The resolved array is an owned copy.
        """
        pool = self._pools[0]
        arrays = _coerce_arrays(batch)
        n = pool.validate(arrays)
        future: Future = Future()
        if n == 0:
            future.set_result(
                np.empty((0,) + pool._out_per_sample, dtype=pool.output_dtype)
            )
            return future
        request = _Request(arrays, n, future, time.monotonic())
        with self._cond:
            if not self._started or self._stopping:
                raise RuntimeError(
                    "Server is not running (start() it, or use it as a "
                    "context manager)"
                )
            self._queue.append(request)
            self._submitted_requests += 1
            self._cond.notify()
        return future

    def __call__(self, *batch) -> np.ndarray:
        """Blocking convenience: submit one request and wait for its result."""
        return self.submit(*batch).result()

    def stats(self) -> Dict[str, float]:
        """A snapshot of the serving metrics.

        - ``queue_depth``: requests currently waiting;
        - ``batch_occupancy``: mean coalesced samples per dispatch divided
          by ``max_batch_size`` (1.0 = every dispatch full; an oversized
          single request counts as one full dispatch);
        - ``latency_ms_p50`` / ``latency_ms_p95``: submit-to-result request
          latency percentiles over the recent window;
        - ``throughput_rps``: completed samples per second between the
          first dispatch and the latest completion;
        - plus raw counters (requests/samples/batches) and the pools'
          bucket routing counts.
        """
        with self._lock:
            latencies = np.asarray(self._latencies, dtype=np.float64)
            depth = len(self._queue)
            dispatches = self._dispatches
            occupancy = (
                self._dispatched_samples / (dispatches * self._max_batch)
                if dispatches
                else 0.0
            )
            elapsed = (
                self._last_completion_at - self._first_dispatch_at
                if self._first_dispatch_at is not None
                and self._last_completion_at is not None
                else 0.0
            )
            throughput = self._completed_samples / elapsed if elapsed > 0 else 0.0
            snapshot = {
                "queue_depth": float(depth),
                "requests_submitted": float(self._submitted_requests),
                "requests_completed": float(self._completed_requests),
                "samples_completed": float(self._completed_samples),
                "batches_dispatched": float(dispatches),
                "batch_occupancy": float(occupancy),
                "throughput_rps": float(throughput),
            }
        snapshot["latency_ms_p50"] = (
            float(np.percentile(latencies, 50) * 1e3) if latencies.size else 0.0
        )
        snapshot["latency_ms_p95"] = (
            float(np.percentile(latencies, 95) * 1e3) if latencies.size else 0.0
        )
        bucket_calls: Dict[int, int] = {}
        for pool in self._pools:
            for bucket, count in pool.bucket_calls.items():
                bucket_calls[bucket] = bucket_calls.get(bucket, 0) + count
        snapshot["bucket_calls"] = bucket_calls  # type: ignore[assignment]
        snapshot["eager_tail_serves"] = float(
            sum(pool.eager_calls for pool in self._pools)
        )
        return snapshot

    # ------------------------------------------------------------------ #
    # Batching loop
    # ------------------------------------------------------------------ #
    def _collect(self) -> Optional[List[_Request]]:
        """Take one coalesced batch off the queue (None = shut down).

        Blocks until a request arrives, then keeps absorbing whole pending
        requests while the running total stays within ``max_batch_size``,
        waiting up to ``max_wait`` seconds for stragglers before
        dispatching what it has.  Requests are never split: a request
        larger than ``max_batch_size`` is dispatched alone (the pool
        decomposes it internally).

        Every collected future is moved to RUNNING here
        (``set_running_or_notify_cancel``): futures a client already
        cancelled are dropped, and a cancel arriving after collection
        becomes a no-op instead of an ``InvalidStateError`` when the
        worker scatters results.
        """
        with self._cond:
            while True:
                while not self._queue and not self._stopping:
                    self._cond.wait()
                if not self._queue:
                    return None  # stopping, queue drained
                first = self._queue.popleft()
                if first.future.set_running_or_notify_cancel():
                    break  # not cancelled; serve it
            requests = [first]
            total = first.n
            deadline = time.monotonic() + self._max_wait
            while total < self._max_batch:
                if self._queue:
                    if total + self._queue[0].n > self._max_batch:
                        break
                    request = self._queue.popleft()
                    if not request.future.set_running_or_notify_cancel():
                        continue  # cancelled while queued: drop it
                    requests.append(request)
                    total += request.n
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or self._stopping:
                        break
                    self._cond.wait(timeout=remaining)
            if self._first_dispatch_at is None:
                self._first_dispatch_at = time.monotonic()
            return requests

    def _worker(self, pool: SessionPool) -> None:
        while True:
            requests = self._collect()
            if requests is None:
                return
            total = sum(r.n for r in requests)
            if len(requests) == 1:
                arrays = requests[0].arrays
            else:
                arrays = [
                    np.concatenate([r.arrays[i] for r in requests])
                    for i in range(len(requests[0].arrays))
                ]
            try:
                out = pool.serve(arrays)
            except BaseException as exc:  # scatter the failure, keep serving
                for request in requests:
                    request.future.set_exception(exc)
                continue
            done_at = time.monotonic()
            if len(requests) == 1:
                # `out` is a fresh per-call array no one else holds; hand it
                # over without the defensive copy.
                requests[0].future.set_result(out)
            else:
                start = 0
                for request in requests:
                    request.future.set_result(out[start : start + request.n].copy())
                    start += request.n
            with self._lock:
                self._dispatches += 1
                # Clamped so occupancy stays a fraction <= 1.0: an oversized
                # single request (never split) counts as one full dispatch.
                self._dispatched_samples += min(total, self._max_batch)
                self._completed_requests += len(requests)
                self._completed_samples += total
                self._last_completion_at = done_at
                for request in requests:
                    self._latencies.append(done_at - request.submitted_at)
