"""Asyncio front door for the serving stack.

:class:`AsyncServer` wraps any :class:`~repro.serve.frontend.Server`
(thread- or process-backed) so one event loop can hold tens of thousands
of in-flight requests as coroutines::

    server = ProcServer(model, example, workers=4).start()
    aserver = AsyncServer(server)
    results = await asyncio.gather(*(aserver.submit(x) for x in requests))

``submit`` bridges the server's ``concurrent.futures.Future`` to an
awaitable via :func:`asyncio.wrap_future` — no polling, no extra thread
per request.  The one care point is **block-mode backpressure**: a server
built with ``queue_limit`` and ``overload="block"`` parks the *submitter*
until queue space frees, which would wedge the event loop; for such
servers the enqueue itself is pushed onto the loop's default executor so
the coroutine (not the loop) waits.  ``reject``/``shed_oldest`` servers
and unbounded queues enqueue inline — submit is then just a queue append
plus validation.

Exceptions surface exactly as in the sync API: awaiting a submit raises
``DeadlineExceeded`` / ``ServerOverloaded`` / the batch's failure, and a
cancelled coroutine cancels the underlying request future (dropped at
dispatch if still queued).
"""

from __future__ import annotations

import asyncio
import functools
from typing import Optional

import numpy as np

from repro.serve.frontend import Server

__all__ = ["AsyncServer"]


class AsyncServer:
    """Awaitable facade over a (started) :class:`Server`.

    Also an async context manager: ``async with AsyncServer(server) as s``
    starts the server on entry (idempotent) and stops it on exit without
    blocking the event loop (``stop`` drains in the default executor).
    """

    def __init__(self, server: Server) -> None:
        self._server = server
        # Block-mode submits park the caller; keep them off the loop.
        self._blocking_submit = (
            server._queue_limit is not None and server._overload == "block"
        )

    @property
    def server(self) -> Server:
        return self._server

    async def submit(self, *batch, timeout: Optional[float] = None) -> np.ndarray:
        """Submit one request and await its result (an owned copy)."""
        if self._blocking_submit:
            loop = asyncio.get_running_loop()
            future = await loop.run_in_executor(
                None,
                functools.partial(self._server.submit, *batch, timeout=timeout),
            )
        else:
            future = self._server.submit(*batch, timeout=timeout)
        return await asyncio.wrap_future(future)

    __call__ = submit

    async def stats(self) -> dict:
        return self._server.stats()

    async def health(self) -> dict:
        return self._server.health()

    async def stop(self, drain: bool = True,
                   timeout: Optional[float] = 30.0) -> None:
        """Stop the wrapped server without blocking the event loop."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, functools.partial(self._server.stop, drain=drain,
                                    timeout=timeout)
        )

    async def __aenter__(self) -> "AsyncServer":
        self._server.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop(drain=exc_type is None)
