"""Batched ``no_grad`` serving over compiled trace replay.

The first concrete step toward the production-serving north star:
:func:`compile_inference` captures one eval-mode forward trace of a model
through the graph IR and returns an :class:`InferenceSession` that replays
it over new batches with pre-allocated, reused buffers — no tape, no module
dispatch, fused composite kernels.  :func:`serve_batches` chunks an
arbitrarily long request stream through the fixed-batch session.

See :mod:`repro.serve.session` for the execution model and guarantees
(bit-identical to the eager ``no_grad`` forward; train-mode traces are
rejected; parameters are bound by reference, batch-norm statistics are
frozen at compile).
"""

from repro.serve.session import InferenceSession, compile_inference, serve_batches

__all__ = ["InferenceSession", "compile_inference", "serve_batches"]
