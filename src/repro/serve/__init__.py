"""Batched ``no_grad`` serving over compiled trace replay.

The serving stack toward the production north star, bottom-up:

- :func:`compile_inference` captures one eval-mode forward trace of a model
  through the graph IR and returns an :class:`InferenceSession` that replays
  it over new batches with pre-allocated, reused buffers — no tape, no
  module dispatch, fused composite kernels;
- :func:`serve_batches` chunks an arbitrarily long request stream through
  one fixed-batch session;
- :class:`SessionPool` compiles one session per bucket size and routes any
  sample count through a greedy bucket decomposition, retiring the eager
  odd-chunk fallback to a last resort;
- :class:`Server` is the dynamic-batching request-queue front end: clients
  submit arrays and get futures, batching loops on sharded worker threads
  coalesce requests, run them through per-worker pool replicas, and scatter
  result copies back, with queue/latency/throughput metrics on
  :meth:`Server.stats`;
- :mod:`repro.serve.resilience` makes the front end operable under failure:
  bounded queues with ``block``/``reject``/``shed_oldest`` backpressure,
  per-request deadlines (:class:`DeadlineExceeded`), transient-retry +
  bisection batch-failure isolation (:class:`RetryPolicy`), and worker
  supervision (watchdog respawn with backoff, :meth:`Server.health` /
  :meth:`Server.ready` probes);
- :mod:`repro.serve.faults` provides deterministic seeded chaos hooks
  (:class:`FaultInjector` / :func:`inject_faults`) — raise-on-nth-call,
  added latency, worker-kill, poisoned payloads — so every resilience
  behavior is testable under injected failure;
- :class:`ProcServer` (:mod:`repro.serve.procpool`) swaps the worker
  substrate for OS **processes** over :mod:`repro.serve.arena` shared
  memory: parameters published once into a versioned double-banked
  :class:`ParamArena` (zero-copy views in every worker,
  :meth:`ProcServer.publish_weights` hot-swaps them), requests/results
  through fixed-slot :class:`RequestRing` buffers (nothing pickled on the
  hot path), with the full resilience contract — kill → respawn,
  crash-loop retirement, stuck replacement, bounded segment-clean
  ``stop()`` — ported to real processes;
- :class:`AsyncServer` (:mod:`repro.serve.aio`) is the asyncio front
  door: ``await aserver.submit(x)`` bridges the future to the event loop
  so one process holds tens of thousands of in-flight requests;
- the front end emits through :mod:`repro.obs`: every server owns a metric
  registry (Prometheus exposition) and a per-request stage-span tracer,
  ``Server.serve_http()`` exposes ``/metrics`` / ``/health`` / ``/ready``
  / ``/traces.json``, and ``REPRO_PROFILE=1`` turns on the op-level
  profiler inside compiled replay.

See :mod:`repro.serve.session` for the execution model and guarantees
(bit-identical to the eager ``no_grad`` forward; dtype and shape are both
part of the compiled signature; train-mode traces are rejected; parameters
are bound by reference, batch-norm statistics are frozen at compile) and
:mod:`repro.serve.frontend` for the batching, sharding, and resilience
semantics.
"""

from repro.serve.aio import AsyncServer
from repro.serve.arena import ParamArena, RequestRing
from repro.serve.faults import FaultInjector, PoisonedRequest, inject_faults
from repro.serve.frontend import DEFAULT_BUCKETS, Server, SessionPool
from repro.serve.procpool import ProcServer
from repro.serve.resilience import (
    BACKPRESSURE_MODES,
    DeadlineExceeded,
    RetryPolicy,
    ServerOverloaded,
    SupervisionPolicy,
    TransientError,
    WorkerKill,
)
from repro.serve.session import InferenceSession, compile_inference, serve_batches

__all__ = [
    "AsyncServer",
    "BACKPRESSURE_MODES",
    "DEFAULT_BUCKETS",
    "DeadlineExceeded",
    "FaultInjector",
    "InferenceSession",
    "ParamArena",
    "PoisonedRequest",
    "ProcServer",
    "RequestRing",
    "RetryPolicy",
    "Server",
    "ServerOverloaded",
    "SessionPool",
    "SupervisionPolicy",
    "TransientError",
    "WorkerKill",
    "compile_inference",
    "inject_faults",
    "serve_batches",
]
