"""Optimizers updating :class:`~repro.nn.module.Parameter` storage in place.

Updates mutate ``param.data`` buffers directly with in-place ops, so no
autograd graph is recorded and aliases of the parameter (in closures, in other
modules) see the new values.  State buffers (momentum, Adam moments) are
allocated lazily on the first step that sees a gradient and keyed by position,
so parameters that never receive gradients cost nothing.

The update rules themselves are backend composites
(:meth:`~repro.backend.base.ArrayBackend.sgd_update` /
:meth:`~repro.backend.base.ArrayBackend.adam_update`): each ``step()``
resolves the active backend once and applies its fused (or reference) update
to every parameter, so an accelerator backend owns the optimizer arithmetic
too.
"""

from __future__ import annotations

import warnings
from typing import Iterable, List, Optional

import numpy as np

from repro.autograd.tensor import Tensor
from repro.backend import get_backend

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base class: holds the parameter list and the learning rate."""

    def __init__(self, params: Iterable[Tensor], lr: float) -> None:
        seen: set = set()
        self.params: List[Tensor] = []
        for p in params:
            if not isinstance(p, Tensor):
                raise TypeError(f"optimizer got a non-Tensor parameter: {type(p).__name__}")
            if not p.requires_grad:
                continue  # frozen parameter (fine-tuning): nothing to update
            if id(p) not in seen:  # shared parameters must be stepped once
                seen.add(id(p))
                self.params.append(p)
        if not self.params:
            # Fully-frozen models (feature extraction, eval-only fine-tuning
            # pipelines) legitimately build an optimizer over zero trainable
            # parameters; crashing here would break them, so the optimizer
            # degrades to a warned no-op instead.
            warnings.warn(
                "optimizer got no trainable parameters; step() and zero_grad() "
                "will be no-ops",
                UserWarning,
                stacklevel=3,
            )
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum, weight decay and Nesterov.

    Matches PyTorch's formulation (dampening 0): ``v = momentum * v + g`` and
    the update uses ``v`` (or ``g + momentum * v`` for Nesterov), with weight
    decay folded into ``g`` as L2 regularisation.
    """

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(params, lr)
        if momentum < 0.0 or weight_decay < 0.0:
            raise ValueError("momentum and weight_decay must be non-negative")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = bool(nesterov)
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.params)

    def step(self) -> None:
        be = get_backend()
        for i, p in enumerate(self.params):
            g = p.grad
            if g is None:
                continue
            v = None
            if self.momentum:
                v = self._velocity[i]
                if v is None:
                    # Zero-initialised: the backend's first momentum update
                    # (v = momentum * 0 + g) then matches torch's v0 = g.
                    v = self._velocity[i] = np.zeros_like(p.data)
            be.sgd_update(
                p.data, g, v, self.lr, self.momentum, self.weight_decay, self.nesterov
            )


class Adam(Optimizer):
    """Adam with bias-corrected first/second moments (Kingma & Ba)."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must lie in [0, 1), got {betas}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._m: List[Optional[np.ndarray]] = [None] * len(self.params)
        self._v: List[Optional[np.ndarray]] = [None] * len(self.params)

    def step(self) -> None:
        be = get_backend()
        self._step_count += 1
        t = self._step_count
        bc1 = 1.0 - self.beta1 ** t
        bc2 = 1.0 - self.beta2 ** t
        for i, p in enumerate(self.params):
            g = p.grad
            if g is None:
                continue
            m, v = self._m[i], self._v[i]
            if m is None:
                m = self._m[i] = np.zeros_like(p.data)
                v = self._v[i] = np.zeros_like(p.data)
            be.adam_update(
                p.data, g, m, v, self.lr, self.beta1, self.beta2, self.eps,
                bc1, bc2, self.weight_decay,
            )
