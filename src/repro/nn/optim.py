"""Optimizers updating :class:`~repro.nn.module.Parameter` storage in place.

Updates mutate ``param.data`` buffers directly with in-place numpy ops, so no
autograd graph is recorded and aliases of the parameter (in closures, in other
modules) see the new values.  State buffers (momentum, Adam moments) are
allocated lazily on the first step that sees a gradient and keyed by position,
so parameters that never receive gradients cost nothing.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.autograd.tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base class: holds the parameter list and the learning rate."""

    def __init__(self, params: Iterable[Tensor], lr: float) -> None:
        seen: set = set()
        self.params: List[Tensor] = []
        for p in params:
            if not isinstance(p, Tensor):
                raise TypeError(f"optimizer got a non-Tensor parameter: {type(p).__name__}")
            if not p.requires_grad:
                continue  # frozen parameter (fine-tuning): nothing to update
            if id(p) not in seen:  # shared parameters must be stepped once
                seen.add(id(p))
                self.params.append(p)
        if not self.params:
            raise ValueError("optimizer got no trainable parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum, weight decay and Nesterov.

    Matches PyTorch's formulation (dampening 0): ``v = momentum * v + g`` and
    the update uses ``v`` (or ``g + momentum * v`` for Nesterov), with weight
    decay folded into ``g`` as L2 regularisation.
    """

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(params, lr)
        if momentum < 0.0 or weight_decay < 0.0:
            raise ValueError("momentum and weight_decay must be non-negative")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = bool(nesterov)
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.params)

    def step(self) -> None:
        for i, p in enumerate(self.params):
            g = p.grad
            if g is None:
                continue
            if self.weight_decay:
                g = g + self.weight_decay * p.data  # fresh buffer; p.grad untouched
            if self.momentum:
                v = self._velocity[i]
                if v is None:
                    v = self._velocity[i] = np.array(g, dtype=p.data.dtype)
                else:
                    v *= self.momentum
                    v += g
                g = g + self.momentum * v if self.nesterov else v
            p.data -= np.asarray(self.lr, dtype=p.data.dtype) * g


class Adam(Optimizer):
    """Adam with bias-corrected first/second moments (Kingma & Ba)."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must lie in [0, 1), got {betas}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._m: List[Optional[np.ndarray]] = [None] * len(self.params)
        self._v: List[Optional[np.ndarray]] = [None] * len(self.params)

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bc1 = 1.0 - self.beta1 ** t
        bc2 = 1.0 - self.beta2 ** t
        for i, p in enumerate(self.params):
            g = p.grad
            if g is None:
                continue
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m, v = self._m[i], self._v[i]
            if m is None:
                m = self._m[i] = np.zeros_like(p.data)
                v = self._v[i] = np.zeros_like(p.data)
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * np.square(g)
            denom = np.sqrt(v / bc2)
            denom += self.eps
            p.data -= np.asarray(self.lr / bc1, dtype=p.data.dtype) * m / denom
