"""Neural-network layer package: modules, layers, init schemes, optimizers.

The package follows the torch split: :class:`Module`/:class:`Parameter`
containers in :mod:`repro.nn.module`, stateful layers over the fused kernels
in :mod:`repro.nn.layers`, initialisation schemes in :mod:`repro.nn.init` and
optimizers in :mod:`repro.nn.optim`.  A model is a ``Module`` subclass (or a
:class:`Sequential` chain), trained with::

    model = nn.Sequential(nn.Linear(64, 32), nn.ReLU(), nn.Linear(32, 10))
    opt = nn.optim.Adam(model.parameters(), lr=1e-3)
    loss = F.softmax_cross_entropy(model(x), y)
    loss.backward()
    opt.step()
    opt.zero_grad()
"""

from repro.nn import init, optim
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from repro.nn.module import Module, Parameter

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Conv2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "Dropout",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "Flatten",
    "Sequential",
    "init",
    "optim",
]
