"""Weight-initialisation schemes for :mod:`repro.nn` layers.

All schemes are backed by the seedable :class:`~repro.autograd.tensor.Tensor`
constructors (``Tensor.randn`` / ``Tensor.uniform``) and take an explicit
:class:`numpy.random.Generator`.  When no generator is passed they draw from
the **process-wide seeded generator** owned by :mod:`repro.backend` — the
same stream the dropout mask and the ``Tensor`` random constructors fall back
to — so one :func:`manual_seed` call makes the whole stack (initialisation
*and* training-time randomness) deterministic without threading generators
through every layer.

Fan sizes are explicit arguments rather than inferred from the shape: the
repo stores ``Linear`` weights as ``(in_features, out_features)`` and conv
weights as ``(out_c, in_c, kh, kw)``, and an explicit ``fan_in`` cannot be
silently wrong when a new layout appears.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro import backend as _backend
from repro.autograd.tensor import Tensor

__all__ = [
    "manual_seed",
    "default_rng",
    "kaiming_normal",
    "kaiming_uniform",
    "xavier_normal",
    "xavier_uniform",
]


def manual_seed(seed: int) -> np.random.Generator:
    """Reset the global generator every default random draw falls back to.

    Delegates to :func:`repro.backend.manual_seed`: the same stream also
    drives the default dropout mask and ``Tensor.randn``/``uniform``, so this
    one call pins both initialisation and training-time randomness.
    """
    return _backend.manual_seed(seed)


def default_rng() -> np.random.Generator:
    """The current global generator (see :func:`manual_seed`)."""
    return _backend.default_rng()


def _resolve(rng: Optional[np.random.Generator]) -> np.random.Generator:
    return rng if rng is not None else _backend.default_rng()


def kaiming_normal(
    shape: Tuple[int, ...],
    fan_in: int,
    rng: Optional[np.random.Generator] = None,
    dtype=None,
) -> Tensor:
    """He-et-al normal init for ReLU networks: ``N(0, 2 / fan_in)``."""
    t = Tensor.randn(shape, rng=_resolve(rng), dtype=dtype)
    t.data *= np.asarray(math.sqrt(2.0 / fan_in), dtype=t.data.dtype)
    return t


def kaiming_uniform(
    shape: Tuple[int, ...],
    fan_in: int,
    rng: Optional[np.random.Generator] = None,
    dtype=None,
) -> Tensor:
    """He-et-al uniform init for ReLU networks: ``U(±sqrt(6 / fan_in))``."""
    bound = math.sqrt(6.0 / fan_in)
    return Tensor.uniform(shape, low=-bound, high=bound, rng=_resolve(rng), dtype=dtype)


def xavier_normal(
    shape: Tuple[int, ...],
    fan_in: int,
    fan_out: int,
    rng: Optional[np.random.Generator] = None,
    dtype=None,
) -> Tensor:
    """Glorot normal init: ``N(0, 2 / (fan_in + fan_out))``."""
    t = Tensor.randn(shape, rng=_resolve(rng), dtype=dtype)
    t.data *= np.asarray(math.sqrt(2.0 / (fan_in + fan_out)), dtype=t.data.dtype)
    return t


def xavier_uniform(
    shape: Tuple[int, ...],
    fan_in: int,
    fan_out: int,
    rng: Optional[np.random.Generator] = None,
    dtype=None,
) -> Tensor:
    """Glorot uniform init: ``U(±sqrt(6 / (fan_in + fan_out)))``."""
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return Tensor.uniform(shape, low=-bound, high=bound, rng=_resolve(rng), dtype=dtype)
