"""Stateful layers over the fused kernels in :mod:`repro.autograd.functional`.

Every layer is a thin :class:`~repro.nn.module.Module` that owns its
parameters/buffers and forwards to exactly one functional kernel, so a layer's
forward+backward cost is that of the kernel — the module system adds no tape
nodes.  Layouts match the kernels: ``Linear`` weights are ``(in_features,
out_features)``, conv weights are ``(out_c, in_c, kh, kw)``, images are NCHW.

All layers with weights accept an explicit ``rng`` (a
:class:`numpy.random.Generator`) for reproducible initialisation; the default
draws from :func:`repro.nn.init.manual_seed`'s generator.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter

__all__ = [
    "Linear",
    "Conv2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "Dropout",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "Flatten",
    "Sequential",
]


class Linear(Module):
    """Affine map ``x @ weight + bias`` with weight ``(in_features, out_features)``.

    ``bias=False`` drops the bias entirely: no parameter is created and
    ``None`` is routed through :func:`repro.autograd.functional.linear`.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.weight = Parameter(
            init.kaiming_uniform((self.in_features, self.out_features), fan_in=self.in_features, rng=rng)
        )
        self.bias = Parameter(Tensor.zeros(self.out_features)) if bias else None

    def forward(self, x) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def extra_repr(self) -> str:
        return f"{self.in_features}, {self.out_features}, bias={self.bias is not None}"


class Conv2d(Module):
    """2-D convolution (cross-correlation) over NCHW with OIHW weights."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size,
        stride=1,
        padding=0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        kh, kw = F._pair(kernel_size)
        self.kernel_size = (kh, kw)
        self.stride = F._pair(stride)
        self.padding = F._pair(padding)
        fan_in = self.in_channels * kh * kw
        self.weight = Parameter(
            init.kaiming_uniform((self.out_channels, self.in_channels, kh, kw), fan_in=fan_in, rng=rng)
        )
        self.bias = Parameter(Tensor.zeros(self.out_channels)) if bias else None

    def forward(self, x) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def extra_repr(self) -> str:
        return (
            f"{self.in_channels}, {self.out_channels}, kernel_size={self.kernel_size}, "
            f"stride={self.stride}, padding={self.padding}, bias={self.bias is not None}"
        )


class _BatchNorm(Module):
    """Shared batch-norm machinery; subclasses only pin the expected rank."""

    _expected_ndim: Optional[int] = None

    def __init__(
        self,
        num_features: int,
        eps: float = 1e-5,
        momentum: float = 0.1,
        affine: bool = True,
        track_running_stats: bool = True,
    ) -> None:
        super().__init__()
        self.num_features = int(num_features)
        self.eps = float(eps)
        self.momentum = float(momentum)
        self.affine = bool(affine)
        self.track_running_stats = bool(track_running_stats)
        if affine:
            self.weight = Parameter(Tensor.ones(self.num_features))
            self.bias = Parameter(Tensor.zeros(self.num_features))
        else:
            self.weight = None
            self.bias = None
        if track_running_stats:
            self.register_buffer("running_mean", np.zeros(self.num_features, dtype=np.float32))
            self.register_buffer("running_var", np.ones(self.num_features, dtype=np.float32))
            # Not consumed by the kernel (momentum is always a float here);
            # kept as the observable train-step counter and for checkpoint
            # layout parity with torch batch-norm state_dicts.
            self.register_buffer("num_batches_tracked", np.zeros((), dtype=np.int64))

    def forward(self, x) -> Tensor:
        x_t = Tensor._wrap(x)
        if self._expected_ndim is not None and x_t.data.ndim != self._expected_ndim:
            raise ValueError(
                f"{type(self).__name__} expects {self._expected_ndim}-D input, "
                f"got {x_t.data.ndim}-D"
            )
        if x_t.data.shape[1] != self.num_features:
            raise ValueError(
                f"{type(self).__name__}({self.num_features}) got input with "
                f"{x_t.data.shape[1]} channels"
            )
        track = self.track_running_stats
        if self.training and track:
            self.num_batches_tracked += 1
        return F.batch_norm(
            x_t,
            self.weight,
            self.bias,
            self.running_mean if track else None,
            self.running_var if track else None,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )

    def extra_repr(self) -> str:
        return (
            f"{self.num_features}, eps={self.eps}, momentum={self.momentum}, "
            f"affine={self.affine}, track_running_stats={self.track_running_stats}"
        )


class BatchNorm1d(_BatchNorm):
    """Batch norm over ``(N, C)`` feature batches."""

    _expected_ndim = 2


class BatchNorm2d(_BatchNorm):
    """Batch norm over ``(N, C, H, W)`` image batches."""

    _expected_ndim = 4


class Dropout(Module):
    """Inverted dropout; identity (and tape-free) in eval mode.

    An explicit ``rng`` makes the mask sequence reproducible; without one the
    kernel draws from the seeded global generator that
    :func:`repro.nn.init.manual_seed` resets, so default dropout is already
    deterministic after one ``manual_seed`` call.
    """

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"dropout probability must be in [0, 1], got {p}")
        self.p = float(p)
        self.rng = rng

    def forward(self, x) -> Tensor:
        return F.dropout(x, p=self.p, training=self.training, rng=self.rng)

    def extra_repr(self) -> str:
        return f"p={self.p}"


class ReLU(Module):
    """Elementwise ``max(x, 0)``."""

    def forward(self, x) -> Tensor:
        return Tensor._wrap(x).relu()


class _Pool2d(Module):
    """Shared pooling config; subclasses pin the functional kernel."""

    _kernel = None  # staticmethod set by subclasses

    def __init__(self, kernel_size, stride=None, padding=0) -> None:
        super().__init__()
        self.kernel_size = F._pair(kernel_size)
        self.stride = F._pair(kernel_size if stride is None else stride)
        self.padding = F._pair(padding)

    def forward(self, x) -> Tensor:
        return type(self)._kernel(x, self.kernel_size, stride=self.stride, padding=self.padding)

    def extra_repr(self) -> str:
        return f"kernel_size={self.kernel_size}, stride={self.stride}, padding={self.padding}"


class MaxPool2d(_Pool2d):
    """Max pooling over NCHW windows."""

    _kernel = staticmethod(F.max_pool2d)


class AvgPool2d(_Pool2d):
    """Average pooling over NCHW windows."""

    _kernel = staticmethod(F.avg_pool2d)


class Flatten(Module):
    """Collapse all dimensions from ``start_dim`` onward."""

    def __init__(self, start_dim: int = 1) -> None:
        super().__init__()
        self.start_dim = int(start_dim)

    def forward(self, x) -> Tensor:
        return Tensor._wrap(x).flatten(self.start_dim)

    def extra_repr(self) -> str:
        return f"start_dim={self.start_dim}"


class Sequential(Module):
    """Chain modules, feeding each output to the next layer's input.

    The container is list-like: ``append`` / ``insert`` / ``extend`` mutate
    the chain in place (each validates that it is handed ``Module``
    instances, so a stray tensor or function cannot silently vanish from
    parameter discovery), and a slice returns a new ``Sequential`` sharing
    the *same* module objects — parameters of ``model[:2]`` are the
    parameters of ``model``'s first two layers, not copies.
    """

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        if len(modules) == 1 and isinstance(modules[0], (list, tuple)):
            modules = tuple(modules[0])
        for module in modules:
            self._check_module(module)
        self.layers = list(modules)

    @staticmethod
    def _check_module(module) -> None:
        if not isinstance(module, Module):
            raise TypeError(
                f"Sequential layers must be Module instances, got {type(module).__name__}"
            )

    def forward(self, x) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def append(self, module: Module) -> "Sequential":
        """Add ``module`` at the end of the chain; returns ``self``."""
        self._check_module(module)
        self.layers.append(module)
        return self

    def insert(self, index: int, module: Module) -> "Sequential":
        """Insert ``module`` before position ``index`` (list semantics)."""
        self._check_module(module)
        self.layers.insert(int(index), module)
        return self

    def extend(self, modules) -> "Sequential":
        """Append every module of an iterable (or another ``Sequential``)."""
        incoming = list(modules)
        for module in incoming:
            self._check_module(module)
        self.layers.extend(incoming)
        return self

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self):
        return iter(self.layers)

    def __getitem__(self, index):
        if isinstance(index, slice):
            # The sliced container shares the module objects (and therefore
            # the parameters) with this one — identity, not copies.
            return Sequential(*self.layers[index])
        return self.layers[index]
