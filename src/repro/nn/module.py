"""Parameter and Module containers for the layer stack.

A :class:`Parameter` is a :class:`~repro.autograd.tensor.Tensor` that always
requires grad; a :class:`Module` is a stateful object whose attributes are
scanned recursively to discover parameters, buffers and child modules.  The
discovery walk covers plain attributes **and** lists/tuples of modules or
parameters (``self.layers = [Linear(...), ...]`` just works), in attribute
insertion order, so ``state_dict()`` names are deterministic.

Buffers are plain numpy arrays registered with :meth:`Module.register_buffer`
— state that belongs to the model but is not trained (batch-norm running
statistics).  They live in checkpoints alongside parameters and are updated
in place by the kernels that own them.

Checkpointing is plain-numpy: :meth:`Module.state_dict` maps dotted names to
array copies and :meth:`Module.load_state_dict` copies them back in place, so
a round trip is bit-exact and a checkpoint is just ``np.savez`` away.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple, Union

import numpy as np

from repro.autograd.tensor import Tensor

__all__ = ["Parameter", "Module"]

# Attributes of Module itself that the discovery walk must skip.
_INTERNAL_ATTRS = ("training", "_buffers")


class Parameter(Tensor):
    """A tensor that is trained: ``requires_grad`` is always ``True``.

    Accepts raw arrays (converted to float32 by default, like ``Tensor``) or
    an existing :class:`Tensor` (e.g. the output of an :mod:`repro.nn.init`
    scheme), whose storage — including its dtype — is adopted without a copy.
    """

    __slots__ = ()

    def __init__(self, data, dtype=None) -> None:
        if isinstance(data, Tensor):
            if dtype is None:
                dtype = data.data.dtype  # adopt, don't downcast to float32
            data = data.data
        super().__init__(data, requires_grad=True, dtype=dtype)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Parameter(shape={self.shape}, dtype={self.dtype})"


class Module:
    """Base class for layers and models.

    Subclasses call ``super().__init__()`` first, assign :class:`Parameter`,
    child ``Module`` and buffer attributes, and implement :meth:`forward`.
    Everything else — parameter iteration, train/eval mode, checkpointing —
    is derived from the attribute scan.
    """

    def __init__(self) -> None:
        self.training: bool = True
        self._buffers: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # Forward dispatch
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError(f"{type(self).__name__} does not implement forward()")

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------ #
    # Buffers
    # ------------------------------------------------------------------ #
    def register_buffer(self, name: str, array) -> None:
        """Register non-trained state (kept in ``state_dict``, never in grads)."""
        if "_buffers" not in self.__dict__:
            raise RuntimeError("call Module.__init__() before registering buffers")
        self._buffers[name] = np.asarray(array)

    def __getattr__(self, name: str):
        buffers = self.__dict__.get("_buffers")
        if buffers is not None and name in buffers:
            return buffers[name]
        raise AttributeError(f"{type(self).__name__!r} object has no attribute {name!r}")

    def __setattr__(self, name: str, value) -> None:
        buffers = self.__dict__.get("_buffers")
        if buffers is not None and name in buffers:
            # Keep the registered dtype: kernels update buffers in place and
            # a bare list/int assignment must not flip them to int64/float64.
            buffers[name] = np.asarray(value, dtype=buffers[name].dtype)
        else:
            object.__setattr__(self, name, value)

    # ------------------------------------------------------------------ #
    # Discovery walk
    # ------------------------------------------------------------------ #
    def _children(self) -> Iterator[Tuple[str, Union[Parameter, "Module"]]]:
        """Yield ``(name, value)`` for every directly held Parameter/Module.

        Lists and tuples are flattened one level with the index as the name
        component, mirroring an implicit ``ModuleList``.
        """
        for name, value in self.__dict__.items():
            if name in _INTERNAL_ATTRS:
                continue
            if isinstance(value, (Parameter, Module)):
                yield name, value
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, (Parameter, Module)):
                        yield f"{name}.{index}", item

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, value in self._children():
            full = prefix + name
            if isinstance(value, Parameter):
                yield full, value
            else:
                yield from value.named_parameters(prefix=full + ".")

    def parameters(self) -> List[Parameter]:
        """All unique parameters (shared parameters are yielded once)."""
        seen: set = set()
        out: List[Parameter] = []
        for _, p in self.named_parameters():
            if id(p) not in seen:
                seen.add(id(p))
                out.append(p)
        return out

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name, value in self._children():
            if isinstance(value, Module):
                yield from value.named_modules(prefix=prefix + name + ".")

    def modules(self) -> Iterator["Module"]:
        for _, m in self.named_modules():
            yield m

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, array in self._buffers.items():
            yield prefix + name, array
        for name, value in self._children():
            if isinstance(value, Module):
                yield from value.named_buffers(prefix=prefix + name + ".")

    # ------------------------------------------------------------------ #
    # Training state
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        """Recursively set training mode (affects BatchNorm and Dropout)."""
        self.training = bool(mode)
        for _, value in self._children():
            if isinstance(value, Module):
                value.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Dotted-name → array-copy snapshot of all parameters and buffers."""
        state: Dict[str, np.ndarray] = {}
        for name, p in self.named_parameters():
            state[name] = p.data.copy()
        for name, buf in self.named_buffers():
            state[name] = buf.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Copy a :meth:`state_dict` snapshot back into this module, in place.

        Arrays are copied into the existing parameter/buffer storage (no
        object replacement), so aliases held by optimizers or closures stay
        valid.  With ``strict`` (the default) missing or unexpected keys
        raise.
        """
        own: Dict[str, np.ndarray] = {}
        for name, p in self.named_parameters():
            own[name] = p.data
        for name, buf in self.named_buffers():
            own[name] = buf
        if strict:
            missing = sorted(set(own) - set(state))
            unexpected = sorted(set(state) - set(own))
            if missing or unexpected:
                raise KeyError(
                    f"state_dict mismatch: missing keys {missing}, unexpected keys {unexpected}"
                )
        for name, target in own.items():
            if name not in state:
                continue
            value = np.asarray(state[name])
            if value.shape != target.shape:
                raise ValueError(
                    f"state_dict entry {name!r} has shape {value.shape}, expected {target.shape}"
                )
            np.copyto(target, value, casting="same_kind")

    # ------------------------------------------------------------------ #
    # Repr
    # ------------------------------------------------------------------ #
    def extra_repr(self) -> str:
        """One-line config summary shown in :func:`repr`; override in layers."""
        return ""

    def __repr__(self) -> str:
        lines = [f"{type(self).__name__}({self.extra_repr()}"]
        children = [(n, v) for n, v in self._children() if isinstance(v, Module)]
        if not children:
            return lines[0] + ")"
        for name, child in children:
            child_repr = repr(child).replace("\n", "\n  ")
            lines.append(f"  ({name}): {child_repr}")
        lines.append(")")
        return "\n".join(lines)
