"""A reverse-mode autograd tensor backed by numpy.

The design follows the classic "define-by-run tape" approach: every operation
on :class:`Tensor` objects produces a new tensor whose
:class:`~repro.autograd.ir.GraphNode` records the op name, the parent tensors,
the saved arrays/attributes and a closure computing the local vector-Jacobian
product.  Calling :meth:`Tensor.backward` performs a topological sort of the
recorded node graph and accumulates gradients into ``.grad`` of every tensor
that requires them.

The explicit node records (rather than bare closures) make the tape a real
IR: :mod:`repro.autograd.fusion` pattern-matches and rewrites chains of nodes
before the backward pass, and :mod:`repro.serve` replays captured traces over
new inputs through the forward-eval registry in :mod:`repro.autograd.ir`.

Hot-path notes
--------------
Gradient accumulation is done **in place**: the first gradient that reaches a
tensor is copied exactly once (the "ownership copy"), and every later
contribution is ``+=``-ed into that owned buffer via ``np.add(..., out=...)``.
Backward closures that produce a fresh temporary hand it over through
:meth:`Tensor._accumulate_fresh`, which *donates* the buffer instead of copying
it, so the common single-consumer case allocates nothing extra at all.

``backward(retain_graph=False)`` (the default) frees the recorded graph after
the pass: backward closures and parent links are dropped, which breaks the
reference cycles between tensors and their closures and lets CPython reclaim
the graph by refcounting instead of waiting for the cycle collector.  Training
loops therefore neither leak the whole graph nor stall in periodic GC sweeps.
Pass ``retain_graph=True`` to keep the graph (and to reuse the cached
topological order on repeated ``backward()`` calls over the same graph).

Only the operations needed by the TBNet reproduction are implemented, but each
is implemented for arbitrary broadcastable shapes so the layer code in
:mod:`repro.nn` stays simple.  Dense spatial kernels (im2col convolution,
pooling, fused softmax cross-entropy) live in :mod:`repro.autograd.functional`.

The numerical work of every op — elementwise arithmetic, matmul,
transcendentals, reductions — dispatches through the active array backend
(:func:`repro.backend.get_backend`).  Each op resolves the backend once at
trace time and its backward closure reuses that same backend, so forward and
backward always run on the same implementation.  Structural ops (reshape,
transpose, indexing, concatenation) have no numerical content and stay plain
numpy.
"""

from __future__ import annotations

import contextlib
import numbers
import time
from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backend import default_rng, get_backend
from repro.autograd import ir as _ir

ArrayLike = Union[np.ndarray, float, int, Sequence]

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph recording (like ``torch.no_grad``)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _as_array(value: ArrayLike, dtype=np.float32) -> np.ndarray:
    if isinstance(value, np.ndarray):
        if value.dtype != dtype:
            return value.astype(dtype)
        return value
    if getattr(value, "_repro_lazy", False) and value.dtype == dtype:
        # A deferred array from the lazy backend: adopt it unforced so the
        # elementwise chain keeps growing; any np.asarray here would flush
        # the region one op at a time.
        return value
    return np.asarray(value, dtype=dtype)


def _capturing() -> bool:
    """Whether a :func:`repro.autograd.ir.capture` block is recording.

    Structural-op attr dicts (reshape/transpose/sum/... parameters) exist
    solely for captured-trace replay — training backward closes over the
    values directly — so the hot ops build them only inside a capture
    block, shaving the per-node dict allocation off every training step.
    """
    return _ir._CAPTURE is not None


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``, undoing numpy broadcasting.

    Broadcasting may have added leading dimensions and/or stretched size-1
    dimensions; the adjoint of broadcasting is summation over those axes.  The
    no-op case (shapes already equal) returns ``grad`` itself without any
    work, so callers can cheaply detect whether a reduction happened by
    identity (``result is grad``).
    """
    if grad.shape == shape:
        return grad
    # Sum over extra leading dimensions.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over dimensions that were broadcast from size 1.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    # A full reduction yields a numpy scalar; grads must stay writable arrays.
    return np.asarray(grad).reshape(shape)


def _raise_freed_graph() -> None:
    """Backward sentinel installed on freed graph nodes."""
    raise RuntimeError(
        "trying to run backward through a graph that has already been freed; "
        "pass retain_graph=True to backward() if you need multiple passes"
    )


def _free_node(node) -> None:
    """Free one graph node (and any nodes a rewrite bypassed into it)."""
    while node is not None:
        if node.backward is not None:
            node.backward = _raise_freed_graph
        node.inputs = ()
        node.attrs = None
        node.out = None
        extra = node.bypassed
        node.bypassed = None
        if not extra:
            return
        # Pattern rewrites bypass one producer; region rewrites bypass the
        # whole member chain.  Loop on the first entry, recurse only on
        # true fan-out.
        for sub in extra[1:]:
            _free_node(sub)
        node = extra[0]


_fusion_module = None


def _get_fusion():
    """Lazy import of :mod:`repro.autograd.fusion` (it imports this module)."""
    global _fusion_module
    if _fusion_module is None:
        from repro.autograd import fusion

        _fusion_module = fusion
    return _fusion_module


_lazy_module = None


def _get_lazy():
    """Lazy import of :mod:`repro.backend.lazy` (only loaded when a
    backward pass needs to pause deferral)."""
    global _lazy_module
    if _lazy_module is None:
        from repro.backend import lazy

        _lazy_module = lazy
    return _lazy_module


_profile_module = None


def _get_profile():
    """Lazy import of :mod:`repro.obs.profile` (keeps the autograd core free
    of an eager dependency on the observability package)."""
    global _profile_module
    if _profile_module is None:
        from repro.obs import profile

        _profile_module = profile
    return _profile_module


def _unwrap_index(index):
    """Unwrap :class:`Tensor` indices (also inside tuples) to their arrays.

    Like PyTorch, ``x[idx]`` accepts an integer ``Tensor`` wherever it
    accepts an integer ndarray; numpy itself would reject the wrapper with a
    raw ``IndexError``.  The unwrapped form is what gets recorded in the
    node attrs and replayed by ``np.add.at`` in the gradient path.
    """
    if isinstance(index, Tensor):
        return index.data
    if isinstance(index, tuple):
        return tuple(
            item.data if isinstance(item, Tensor) else item for item in index
        )
    return index


def _normalize_axes(axis, ndim: int) -> Tuple[int, ...]:
    """Return ``axis`` as a tuple of non-negative ints sorted ascending."""
    if isinstance(axis, (tuple, list)):
        axes = tuple(axis)
    else:
        axes = (axis,)
    return tuple(sorted(a % ndim for a in axes))


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff.

    Parameters
    ----------
    data:
        The underlying values (converted to ``float32`` by default).
    requires_grad:
        If ``True`` the tensor accumulates gradients during
        :meth:`backward`.
    dtype:
        Override the storage dtype (e.g. ``np.float64`` for finite-difference
        gradient checking).  ``None`` keeps the ``float32`` default.
    """

    __slots__ = ("data", "grad", "requires_grad", "_node", "_topo", "__weakref__")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        dtype=None,
    ) -> None:
        self.data = _as_array(data, dtype=dtype or np.float32)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._node: Optional[_ir.GraphNode] = None
        self._topo: Optional[list] = None

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy).

        Forces (and swaps in) the concrete array when the lazy backend left
        a deferred region here — ``.data`` reads are a region flush point.
        """
        data = self.data
        if getattr(data, "_repro_lazy", False):
            data = np.asarray(data)
            self.data = data
        return data

    def item(self) -> float:
        data = self.numpy()
        if data.size != 1:
            raise ValueError(
                f"item() only works on tensors with exactly one element, "
                f"got shape {self.shape}"
            )
        return float(data.item())

    # Node views: the recorded graph lives in ``_node``; these read-only
    # views keep the historical tape attribute names working.
    @property
    def _prev(self) -> Tuple["Tensor", ...]:
        node = self._node
        return node.inputs if node is not None else ()

    @property
    def _backward(self) -> Optional[Callable[[], None]]:
        node = self._node
        return node.backward if node is not None else None

    @property
    def _op(self) -> str:
        node = self._node
        return node.op if node is not None else ""

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the *gradient* graph.

        No gradient ever flows through the result.  Inside an
        :func:`repro.autograd.ir.capture` block the detachment is still
        recorded as a backward-less identity node, so a captured trace knows
        the value is data-dependent — a serving replay recomputes it from
        the new inputs instead of freezing the trace-time activation.
        """
        out = Tensor(self.data, requires_grad=False, dtype=self.data.dtype)
        graph = _ir._CAPTURE
        if graph is not None:
            node = _ir.GraphNode("detach", (self,), None, out)
            out._node = node
            graph.nodes.append(node)
        return out

    def clone(self) -> "Tensor":
        """Return a copy of this tensor that participates in the graph."""

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad)

            return _backward

        return self._make(self.data.copy(), (self,), "clone", make_backward)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}, op={self._op!r})"

    def __len__(self) -> int:
        return self.data.shape[0]

    # ------------------------------------------------------------------ #
    # Graph helpers
    # ------------------------------------------------------------------ #
    def _accumulate(self, grad: Optional[np.ndarray]) -> None:
        """Accumulate a gradient buffer we do **not** own.

        The first contribution is copied once so ``self.grad`` is always an
        owned, writable buffer; later contributions are added in place.
        """
        if grad is None:
            return
        g = self.grad
        if g is None:
            dtype = self.data.dtype
            self.grad = grad.astype(dtype) if grad.dtype != dtype else grad.copy()
        else:
            np.add(g, grad, out=g)

    def _accumulate_fresh(self, grad: np.ndarray) -> None:
        """Accumulate a freshly allocated, writable gradient buffer.

        Ownership of ``grad`` is donated: when no gradient has been recorded
        yet the buffer is adopted as-is (no copy), otherwise it is added in
        place into the owned buffer.
        """
        g = self.grad
        if g is None:
            dtype = self.data.dtype
            self.grad = grad if grad.dtype == dtype else grad.astype(dtype)
        else:
            np.add(g, grad, out=g)

    def _accumulate_bcast(self, grad: np.ndarray) -> None:
        """Accumulate a shared buffer that may need unbroadcasting first."""
        reduced = _unbroadcast(grad, self.data.shape)
        if reduced is grad:
            self._accumulate(grad)
        else:
            self._accumulate_fresh(reduced)

    @staticmethod
    def _wrap(other: ArrayLike) -> "Tensor":
        if isinstance(other, Tensor):
            return other
        return Tensor(other)

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        op: str,
        backward: Callable[["Tensor"], Callable[[], None]],
        attrs: Optional[dict] = None,
        be=None,
    ) -> "Tensor":
        """Record one operation as a :class:`~repro.autograd.ir.GraphNode`.

        A node is created when gradients are being tracked *or* an
        :func:`repro.autograd.ir.capture` block is active (so ``no_grad``
        serving traces still record the graph); the backward thunk is built
        only in the former case.  ``attrs`` carries the saved arrays and op
        parameters the fusion/replay passes need; ``be`` pins the trace-time
        backend on the node for rewrite passes.
        """
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        graph = _ir._CAPTURE
        out = Tensor(data, requires_grad=requires, dtype=data.dtype)
        if requires or graph is not None:
            node = _ir.GraphNode(op, parents, attrs, out, be=be)
            if requires:
                node.backward = backward(out)
            out._node = node
            if graph is not None:
                graph.nodes.append(node)
        return out

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)
        be = get_backend()

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate_bcast(out.grad)
                if other.requires_grad:
                    other._accumulate_bcast(out.grad)

            return _backward

        return self._make(be.add(self.data, other.data), (self, other), "add", make_backward, be=be)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        be = get_backend()

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate_fresh(be.negative(out.grad))

            return _backward

        return self._make(be.negative(self.data), (self,), "neg", make_backward, be=be)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-self._wrap(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._wrap(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)
        be = get_backend()

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate_fresh(
                        _unbroadcast(be.multiply(out.grad, other.data), self.data.shape)
                    )
                if other.requires_grad:
                    other._accumulate_fresh(
                        _unbroadcast(be.multiply(out.grad, self.data), other.data.shape)
                    )

            return _backward

        return self._make(be.multiply(self.data, other.data), (self, other), "mul", make_backward, be=be)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)
        be = get_backend()

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate_fresh(
                        _unbroadcast(be.divide(out.grad, other.data), self.data.shape)
                    )
                if other.requires_grad:
                    other._accumulate_fresh(
                        _unbroadcast(
                            be.divide(
                                be.multiply(be.negative(out.grad), self.data),
                                be.power(other.data, 2.0),
                            ),
                            other.data.shape,
                        )
                    )

            return _backward

        return self._make(be.divide(self.data, other.data), (self, other), "div", make_backward, be=be)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._wrap(other) / self

    def __pow__(self, exponent) -> "Tensor":
        # numpy scalars register with the numbers ABCs, so this covers
        # np.float32/np.float64/np.intXX as well as Python int/float.
        if isinstance(exponent, numbers.Real):
            exponent = float(exponent)
        else:
            raise TypeError(
                "Tensor.__pow__ only supports real scalar exponents, got "
                f"{type(exponent).__name__}"
            )

        be = get_backend()

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    # x**(e-1) hits zeros (e.g. the x**0.5 gradient at 0)
                    # with a divide-by-zero RuntimeWarning; the resulting
                    # inf matches torch, the warning spam does not.
                    with np.errstate(divide="ignore", invalid="ignore"):
                        self._accumulate_fresh(
                            out.grad * exponent * be.power(self.data, exponent - 1)
                        )

            return _backward

        return self._make(
            be.power(self.data, exponent), (self,), "pow", make_backward,
            attrs={"exponent": exponent} if _capturing() else None, be=be,
        )

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = self._wrap(other)
        be = get_backend()

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                a, b = self.data, other.data
                # numpy matmul treats 1-D operands as a prepended row /
                # appended column that is squeezed from the result; mirror
                # that promotion so the adjoint GEMMs see 2-D operands.
                a2 = a.reshape(1, -1) if a.ndim == 1 else a
                b2 = b.reshape(-1, 1) if b.ndim == 1 else b
                g2 = out.grad
                if b.ndim == 1:  # append the column axis before the row axis
                    g2 = np.expand_dims(g2, -1)
                if a.ndim == 1:
                    g2 = np.expand_dims(g2, -2)
                if self.requires_grad:
                    ga = be.matmul(g2, b2.swapaxes(-1, -2))
                    if a.ndim == 1:
                        ga = np.squeeze(ga, -2)
                    self._accumulate_fresh(_unbroadcast(ga, a.shape))
                if other.requires_grad:
                    gb = be.matmul(a2.swapaxes(-1, -2), g2)
                    if b.ndim == 1:
                        gb = np.squeeze(gb, -1)
                    other._accumulate_fresh(_unbroadcast(gb, b.shape))

            return _backward

        return self._make(be.matmul(self.data, other.data), (self, other), "matmul", make_backward, be=be)

    def abs(self) -> "Tensor":
        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate_fresh(out.grad * np.sign(self.data))

            return _backward

        return self._make(np.abs(self.data), (self,), "abs", make_backward)

    def exp(self) -> "Tensor":
        be = get_backend()
        result = be.exp(self.data)

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate_fresh(be.multiply(out.grad, result))

            return _backward

        return self._make(result, (self,), "exp", make_backward, be=be)

    def log(self) -> "Tensor":
        be = get_backend()

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate_fresh(be.divide(out.grad, self.data))

            return _backward

        return self._make(be.log(self.data), (self,), "log", make_backward, be=be)

    def sqrt(self) -> "Tensor":
        be = get_backend()
        result = be.sqrt(self.data)

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate_fresh(out.grad * 0.5 / result)

            return _backward

        return self._make(result, (self,), "sqrt", make_backward, be=be)

    # ------------------------------------------------------------------ #
    # Non-linearities
    # ------------------------------------------------------------------ #
    def relu(self) -> "Tensor":
        be = get_backend()
        # The mask is a gradient-only artifact: computing it in inference
        # would both waste a full-size compare and force a lazy-backend
        # chain mid-region, so it exists only when a backward will.
        if _GRAD_ENABLED and self.requires_grad:
            mask = self.data > 0
            attrs = {"mask": mask}
        else:
            mask = None
            attrs = None

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate_fresh(be.multiply(out.grad, mask))

            return _backward

        return self._make(
            be.relu(self.data), (self,), "relu", make_backward,
            attrs=attrs, be=be,
        )

    def sigmoid(self) -> "Tensor":
        be = get_backend()
        result = be.sigmoid(self.data)

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate_fresh(out.grad * result * (1.0 - result))

            return _backward

        return self._make(result, (self,), "sigmoid", make_backward, be=be)

    def tanh(self) -> "Tensor":
        be = get_backend()
        result = be.tanh(self.data)

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate_fresh(out.grad * (1.0 - result ** 2))

            return _backward

        return self._make(result, (self,), "tanh", make_backward, be=be)

    # ------------------------------------------------------------------ #
    # Reductions and shape manipulation
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        be = get_backend()

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if not self.requires_grad:
                    return
                grad = out.grad
                if axis is not None and not keepdims:
                    # Re-insert each reduced axis explicitly; older numpy does
                    # not accept tuples in np.expand_dims.
                    for a in _normalize_axes(axis, self.data.ndim):
                        grad = np.expand_dims(grad, axis=a)
                self._accumulate(np.broadcast_to(grad, self.data.shape))

            return _backward

        return self._make(
            be.sum(self.data, axis=axis, keepdims=keepdims), (self,), "sum", make_backward,
            attrs={"axis": axis, "keepdims": keepdims} if _capturing() else None,
            be=be,
        )

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            count = 1
            for a in _normalize_axes(axis, self.data.ndim):
                count *= self.shape[a]
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mean = self.mean(axis=axis, keepdims=True)
        centered = self - mean
        result = (centered * centered).mean(axis=axis, keepdims=keepdims)
        return result

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original_shape = self.shape

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad.reshape(original_shape))

            return _backward

        return self._make(
            self.data.reshape(shape), (self,), "reshape", make_backward,
            attrs={"shape": shape} if _capturing() else None,
        )

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        # Normalize negatives before inverting: argsort of raw negative axes
        # produces the wrong inverse permutation.
        normalized = tuple(a % self.ndim for a in axes)
        inverse = tuple(np.argsort(normalized))

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad.transpose(inverse))

            return _backward

        return self._make(
            self.data.transpose(axes), (self,), "transpose", make_backward,
            attrs={"axes": axes} if _capturing() else None,
        )

    def flatten(self, start_dim: int = 1) -> "Tensor":
        new_shape = self.shape[:start_dim] + (-1,)
        return self.reshape(new_shape)

    def __getitem__(self, index) -> "Tensor":
        index = _unwrap_index(index)
        original_shape = self.shape

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    grad = np.zeros(original_shape, dtype=self.data.dtype)
                    np.add.at(grad, index, out.grad)
                    self._accumulate_fresh(grad)

            return _backward

        return self._make(
            self.data[index], (self,), "getitem", make_backward,
            attrs={"index": index} if _capturing() else None,
        )

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        be = get_backend()
        result = be.amax(self.data, axis=axis, keepdims=keepdims)

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if not self.requires_grad:
                    return
                expanded, grad = result, out.grad
                if axis is not None and not keepdims:
                    # Re-insert reduced axes one at a time, like sum().
                    for a in _normalize_axes(axis, self.data.ndim):
                        expanded = np.expand_dims(expanded, axis=a)
                        grad = np.expand_dims(grad, axis=a)
                mask = (self.data == expanded).astype(self.data.dtype)
                # Distribute gradient evenly across ties.
                denom = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
                self._accumulate_fresh(grad * mask / denom)

            return _backward

        return self._make(
            result, (self,), "max", make_backward,
            attrs={"axis": axis, "keepdims": keepdims} if _capturing() else None,
            be=be,
        )

    # ------------------------------------------------------------------ #
    # Combination helpers used by the two-branch model
    # ------------------------------------------------------------------ #
    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._wrap(t) for t in tensors]
        if not tensors:
            raise ValueError(
                "Tensor.concatenate() needs at least one tensor, got an empty sequence"
            )
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                for tensor, start, end in zip(tensors, offsets[:-1], offsets[1:]):
                    if tensor.requires_grad:
                        slicer = [slice(None)] * out.grad.ndim
                        slicer[axis] = slice(start, end)
                        tensor._accumulate(out.grad[tuple(slicer)])

            return _backward

        return Tensor._make(data, tuple(tensors), "concat", make_backward, attrs={"axis": axis})

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._wrap(t) for t in tensors]
        if not tensors:
            raise ValueError(
                "Tensor.stack() needs at least one tensor, got an empty sequence"
            )
        data = np.stack([t.data for t in tensors], axis=axis)

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                grads = np.split(out.grad, len(tensors), axis=axis)
                for tensor, grad in zip(tensors, grads):
                    if tensor.requires_grad:
                        tensor._accumulate(np.squeeze(grad, axis=axis))

            return _backward

        return Tensor._make(data, tuple(tensors), "stack", make_backward, attrs={"axis": axis})

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the two trailing spatial dimensions of an NCHW tensor."""
        if padding == 0:
            return self
        pad_width = ((0, 0), (0, 0), (padding, padding), (padding, padding))
        padded = np.pad(self.data, pad_width, mode="constant")

        def make_backward(out: "Tensor") -> Callable[[], None]:
            def _backward() -> None:
                if self.requires_grad:
                    grad = out.grad[:, :, padding:-padding, padding:-padding]
                    self._accumulate(grad)

            return _backward

        return self._make(padded, (self,), "pad2d", make_backward, attrs={"padding": padding})

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[ArrayLike] = None, retain_graph: bool = False) -> None:
        """Back-propagate gradients from this tensor through the graph.

        The recorded node graph is topologically sorted by
        :func:`repro.autograd.ir.toposort` (leaves — nodes without a
        backward thunk — are pruned exactly as the historical tensor-level
        sort pruned them).  When fusion is enabled (``REPRO_FUSION`` or
        :func:`repro.autograd.fusion.enable_fusion`) the rewrite pass runs
        over the graph first, collapsing matched chains into fused nodes.

        Parameters
        ----------
        grad:
            Seed gradient; defaults to ``1`` for scalar tensors.
        retain_graph:
            When ``False`` (the default) the recorded graph is freed after
            the pass: backward closures, parent links and saved arrays of
            every visited node are dropped.  Pass ``True`` to keep the graph
            alive for another ``backward()`` call; the topologically sorted
            node list is cached on this tensor and reused by subsequent
            calls.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            seed = np.ones_like(self.data)
        else:
            arr = np.asarray(grad)
            if arr.dtype != self.data.dtype:
                arr = arr.astype(self.data.dtype)
            else:
                arr = arr.copy()  # ownership copy: .grad buffers are always writable
            seed = arr.reshape(self.data.shape)

        topo = self._topo
        if topo is None:
            if self._node is not None:
                topo = None
                fusion = _get_fusion()
                if fusion.fusion_enabled():
                    # The rewrite may replace this tensor's own node (the
                    # root is re-read below); the pass splices rewrites
                    # into its own walk, so its topo order is used directly
                    # instead of re-sorting.
                    topo = fusion.fuse_for_backward(self)
                if topo is None:
                    topo = _ir.toposort(self._node)
            else:
                topo = []

        # Interior-node grads are transient: clear them so a repeated pass
        # over a retained graph does not double-count (leaves, which are not
        # in the topo list, keep accumulating as expected).  Nodes freed by
        # another root's pass have dropped their output tensor; their
        # sentinel raises below.
        for node in topo:
            out = node.out
            if out is not None:
                out.grad = None
        self.grad = seed

        # Gradient math must produce concrete arrays: under the lazy
        # backend, deferring VJP ops would interleave half-built gradient
        # regions with the in-place accumulation buffers, so deferral is
        # paused for the duration of the thunk loop.
        lazy = _get_lazy()
        prev_defer = lazy.set_deferral(False)
        try:
            profiler = _get_profile().active_profiler()
            if profiler is None:
                for node in reversed(topo):
                    backward_fn = node.backward
                    if backward_fn is not None:
                        backward_fn()
            else:
                # Timing-only instrumentation: the same thunks run in the
                # same order, so gradients stay bit-identical with
                # profiling on.
                perf = time.perf_counter
                for node in reversed(topo):
                    backward_fn = node.backward
                    if backward_fn is not None:
                        start = perf()
                        backward_fn()
                        profiler.record("backward:" + node.op, perf() - start)
        finally:
            lazy.set_deferral(prev_defer)

        if retain_graph:
            self._topo = topo
        else:
            self._topo = None
            for node in topo:
                # Drop the closure (breaking the tensor<->closure cycles) and
                # leave a raising sentinel so a later backward over this graph
                # fails loudly instead of silently skipping freed nodes; the
                # saved arrays and the output link are dropped with it so the
                # finished graph is reclaimed by refcounting alone.  Nodes a
                # rewrite pass bypassed (a fused node's original producer)
                # are freed with their replacement, keeping the sentinel
                # semantics of the unfused chain.  A leaf root never had a
                # node and stays repeatable.
                _free_node(node)

    # Convenience constructors -------------------------------------------------
    #
    # All constructors accept the shape either splatted (``Tensor.zeros(3, 4)``)
    # or as a single tuple (``Tensor.zeros((3, 4))``), default to float32
    # storage, and take ``requires_grad``/``dtype`` keywords.  The random
    # constructors are seeded through an **explicit**
    # :class:`numpy.random.Generator` (``rng=``) so model initialisation is
    # reproducible without touching numpy's global state; ``rng=None`` falls
    # back to the seeded global generator (:func:`repro.backend.default_rng`,
    # reset by ``repro.nn.init.manual_seed``), so one ``manual_seed`` call
    # makes every default draw in the stack deterministic.
    @staticmethod
    def _splat_shape(shape: Tuple) -> Tuple[int, ...]:
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            return tuple(int(s) for s in shape[0])
        return tuple(int(s) for s in shape)

    @staticmethod
    def zeros(*shape, dtype=None, requires_grad: bool = False) -> "Tensor":
        """All-zeros tensor; shape splatted or as one tuple."""
        data = np.zeros(Tensor._splat_shape(shape), dtype=dtype or np.float32)
        return Tensor(data, requires_grad=requires_grad, dtype=data.dtype)

    @staticmethod
    def ones(*shape, dtype=None, requires_grad: bool = False) -> "Tensor":
        """All-ones tensor; shape splatted or as one tuple."""
        data = np.ones(Tensor._splat_shape(shape), dtype=dtype or np.float32)
        return Tensor(data, requires_grad=requires_grad, dtype=data.dtype)

    @staticmethod
    def full(shape, fill_value: float, dtype=None, requires_grad: bool = False) -> "Tensor":
        """Constant tensor of ``shape`` (int or tuple) filled with ``fill_value``."""
        if isinstance(shape, numbers.Integral):
            shape = (int(shape),)
        data = np.full(tuple(shape), fill_value, dtype=dtype or np.float32)
        return Tensor(data, requires_grad=requires_grad, dtype=data.dtype)

    @staticmethod
    def randn(
        *shape,
        rng: Optional[np.random.Generator] = None,
        dtype=None,
        requires_grad: bool = False,
    ) -> "Tensor":
        """Standard-normal tensor drawn from ``rng`` (or the seeded global one)."""
        rng = rng if rng is not None else default_rng()
        data = get_backend().standard_normal(rng, Tensor._splat_shape(shape))
        data = data.astype(dtype or np.float32)
        return Tensor(data, requires_grad=requires_grad, dtype=data.dtype)

    @staticmethod
    def uniform(
        *shape,
        low: float = 0.0,
        high: float = 1.0,
        rng: Optional[np.random.Generator] = None,
        dtype=None,
        requires_grad: bool = False,
    ) -> "Tensor":
        """Uniform ``[low, high)`` tensor drawn from ``rng`` (or the seeded global one)."""
        rng = rng if rng is not None else default_rng()
        data = get_backend().uniform(rng, low, high, Tensor._splat_shape(shape))
        data = data.astype(dtype or np.float32)
        return Tensor(data, requires_grad=requires_grad, dtype=data.dtype)
