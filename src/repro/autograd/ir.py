"""Graph IR for the tape: explicit nodes instead of opaque closures.

Every operation recorded by :class:`~repro.autograd.tensor.Tensor` becomes a
:class:`GraphNode` — op name, input tensors, saved arrays/attributes, the
trace-time backend and the backward thunk — hung off the output tensor's
``_node`` attribute.  The recorded graph is therefore *inspectable and
rewritable*: downstream passes can pattern-match chains of nodes
(:mod:`repro.autograd.fusion`), and a captured trace can be replayed over new
inputs (:mod:`repro.serve`), neither of which was possible when the tape was
a pile of bare closures.

Three pieces live here:

- **The node/graph types.** ``GraphNode`` is the per-operation record;
  ``Graph`` is an ordered list of nodes collected by :func:`capture` (the
  creation order of a define-by-run trace is already a topological order).
  Outside a capture, nodes are linked only through tensors — no global list
  grows during ordinary training.
- **Topological sorting.** :func:`toposort` walks a node's ancestry
  iteratively (post-order), either pruning backward-less parents exactly the
  way the old tensor-level sort pruned leaves (``backward_only=True``, the
  ``backward()`` path) or following every recorded parent
  (``backward_only=False``, the replay/fusion path).
- **The forward-eval registry.** Each op name maps to a function
  ``fn(backend, input_arrays, attrs) -> ndarray`` that recomputes the op's
  forward from its IR record.  The evaluators reproduce the exact expression
  the trace kernels ran, so a replayed trace is bit-identical to the eager
  computation.  Evaluators for the tensor-level ops are registered below;
  :mod:`repro.autograd.functional` and :mod:`repro.autograd.fusion` register
  their own next to the kernels they mirror.

Lifetime: ``backward(retain_graph=False)`` *frees* the visited nodes — the
backward thunk is swapped for a raising sentinel and ``inputs`` / ``attrs`` /
``out`` are dropped — which breaks every tensor↔closure reference cycle so a
finished graph is reclaimed by refcounting alone, exactly as the closure tape
did.
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.autograd.tensor import Tensor

__all__ = [
    "GraphNode",
    "Graph",
    "capture",
    "current_capture",
    "toposort",
    "op_counts",
    "register_forward",
    "has_forward",
    "run_forward",
    "evaluate_node",
]


class GraphNode:
    """One recorded operation: the IR record behind an output tensor.

    Attributes
    ----------
    op:
        Operation name (``"linear"``, ``"relu"``, ``"mul_add"``, ...), the
        key into the forward-eval registry and the fusion pattern tables.
    inputs:
        The parent :class:`Tensor` objects, in the op's argument order.
    attrs:
        Saved non-tensor state: op parameters (axis, stride, padding, ...)
        and arrays the backward/replay needs (the relu mask, batch-norm
        ``xhat``/``inv_std``).  ``None`` when the op needs nothing.
    be:
        The array backend resolved at trace time (``None`` for structural
        ops with no numerical content).  Rewrite passes use it so a fused
        backward runs on the same backend that produced the forward buffers.
    backward:
        The zero-argument backward thunk, ``None`` for nodes recorded
        without gradient tracking (e.g. a captured ``no_grad`` trace), or
        the raising freed-graph sentinel after the graph has been freed.
    out:
        The output tensor (cleared when the node is freed, so a freed graph
        is reclaimable by refcounting).
    bypassed:
        Nodes a rewrite pass routed around to create this node (the
        producer/consumer pair behind a fused node).  ``backward()``'s free
        pass frees them together with this node, so a bypassed chain keeps
        the freed-graph sentinel and refcount-reclamation behaviour it
        would have had unfused.
    """

    __slots__ = ("op", "inputs", "attrs", "be", "backward", "out", "bypassed")

    def __init__(
        self,
        op: str,
        inputs: Tuple["Tensor", ...],
        attrs: Optional[dict],
        out: "Tensor",
        be=None,
        backward: Optional[Callable[[], None]] = None,
    ) -> None:
        self.op = op
        self.inputs = inputs
        self.attrs = attrs
        self.be = be
        self.backward = backward
        self.out = out
        self.bypassed: Optional[Tuple["GraphNode", ...]] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        shapes = ", ".join(str(t.shape) for t in self.inputs)
        return f"GraphNode(op={self.op!r}, inputs=({shapes}))"


class Graph:
    """An ordered trace of :class:`GraphNode` records.

    Nodes are appended in creation order by :func:`capture`; for a
    define-by-run trace that order is already topological (every node's
    inputs were produced by earlier nodes or are leaves).
    """

    __slots__ = ("nodes",)

    def __init__(self) -> None:
        self.nodes: List[GraphNode] = []

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[GraphNode]:
        return iter(self.nodes)


#: The graph collecting nodes while a :func:`capture` block is active.  Read
#: directly by ``Tensor._make`` on the hot path; ``None`` almost always.
_CAPTURE: Optional[Graph] = None


@contextlib.contextmanager
def capture(graph: Optional[Graph] = None) -> Iterator[Graph]:
    """Collect every node recorded inside the block into a :class:`Graph`.

    Capture is independent of gradient mode: under ``no_grad()`` the recorded
    nodes simply carry no backward thunks, which is exactly what a serving
    trace wants.  Nested captures stack (the innermost graph collects).
    """
    global _CAPTURE
    g = graph if graph is not None else Graph()
    previous = _CAPTURE
    _CAPTURE = g
    try:
        yield g
    finally:
        _CAPTURE = previous


def current_capture() -> Optional[Graph]:
    """The graph currently collecting nodes, or ``None``."""
    return _CAPTURE


# --------------------------------------------------------------------------- #
# Topological sorting
# --------------------------------------------------------------------------- #
def toposort(root: GraphNode, backward_only: bool = True) -> List[GraphNode]:
    """Iterative post-order topological sort of ``root``'s ancestry.

    With ``backward_only=True`` (the ``backward()`` path) parents whose node
    carries no backward thunk are pruned, mirroring the historical
    tensor-level sort that skipped leaves: gradients reach them through their
    consumers' thunks, and freed-graph sentinels (which are not ``None``)
    still enter the list and fail loudly.  With ``backward_only=False`` every
    recorded parent is followed — the replay and fusion passes need the whole
    trace, including nodes recorded under ``no_grad``.
    """
    topo: List[GraphNode] = []
    visited: set = set()
    stack: List[Tuple[GraphNode, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            topo.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node.inputs:
            pn = parent._node
            if pn is None or id(pn) in visited:
                continue
            if backward_only and pn.backward is None:
                continue
            stack.append((pn, False))
    return topo


def op_counts(nodes: List[GraphNode]) -> Dict[str, int]:
    """Histogram of a node list's ops: ``{op: count}``.

    The shared trace-introspection helper behind
    ``InferenceSession.op_counts`` and profiler summaries.
    """
    counts: Dict[str, int] = {}
    for node in nodes:
        counts[node.op] = counts.get(node.op, 0) + 1
    return counts


# --------------------------------------------------------------------------- #
# Forward-eval registry
# --------------------------------------------------------------------------- #
_FORWARD: Dict[str, Callable] = {}


def register_forward(op: str):
    """Decorator registering ``fn(be, inputs, attrs) -> ndarray`` for ``op``."""

    def decorate(fn):
        _FORWARD[op] = fn
        return fn

    return decorate


def has_forward(op: str) -> bool:
    """Whether a forward evaluator is registered for ``op``."""
    return op in _FORWARD


def run_forward(be, op: str, inputs: Tuple[np.ndarray, ...], attrs: Optional[dict]) -> np.ndarray:
    """Recompute ``op``'s forward from raw input arrays and saved attrs."""
    try:
        fn = _FORWARD[op]
    except KeyError:
        raise KeyError(
            f"no forward evaluator registered for op {op!r}; "
            f"known ops: {sorted(_FORWARD)}"
        ) from None
    return fn(be, inputs, attrs or {})


def evaluate_node(node: GraphNode, be, inputs: Tuple[np.ndarray, ...]) -> np.ndarray:
    """Replay ``node``'s forward over new input arrays."""
    return run_forward(be, node.op, inputs, node.attrs)


# --------------------------------------------------------------------------- #
# Evaluators for the tensor-level ops (repro.autograd.tensor).
#
# Each mirrors the exact expression the trace op ran, so replay is
# bit-identical; structural ops stay plain numpy like the ops themselves.
# --------------------------------------------------------------------------- #
@register_forward("add")
def _eval_add(be, inputs, attrs):
    return be.add(inputs[0], inputs[1])


@register_forward("neg")
def _eval_neg(be, inputs, attrs):
    return be.negative(inputs[0])


@register_forward("mul")
def _eval_mul(be, inputs, attrs):
    return be.multiply(inputs[0], inputs[1])


@register_forward("div")
def _eval_div(be, inputs, attrs):
    return be.divide(inputs[0], inputs[1])


@register_forward("pow")
def _eval_pow(be, inputs, attrs):
    return be.power(inputs[0], attrs["exponent"])


@register_forward("matmul")
def _eval_matmul(be, inputs, attrs):
    return be.matmul(inputs[0], inputs[1])


@register_forward("abs")
def _eval_abs(be, inputs, attrs):
    return np.abs(inputs[0])


@register_forward("exp")
def _eval_exp(be, inputs, attrs):
    return be.exp(inputs[0])


@register_forward("log")
def _eval_log(be, inputs, attrs):
    return be.log(inputs[0])


@register_forward("sqrt")
def _eval_sqrt(be, inputs, attrs):
    return be.sqrt(inputs[0])


@register_forward("relu")
def _eval_relu(be, inputs, attrs):
    return be.relu(inputs[0])


@register_forward("sigmoid")
def _eval_sigmoid(be, inputs, attrs):
    return be.sigmoid(inputs[0])


@register_forward("tanh")
def _eval_tanh(be, inputs, attrs):
    return be.tanh(inputs[0])


@register_forward("sum")
def _eval_sum(be, inputs, attrs):
    return be.sum(inputs[0], axis=attrs["axis"], keepdims=attrs["keepdims"])


@register_forward("max")
def _eval_max(be, inputs, attrs):
    return be.amax(inputs[0], axis=attrs["axis"], keepdims=attrs["keepdims"])


@register_forward("reshape")
def _eval_reshape(be, inputs, attrs):
    return inputs[0].reshape(attrs["shape"])


@register_forward("transpose")
def _eval_transpose(be, inputs, attrs):
    return inputs[0].transpose(attrs["axes"])


@register_forward("getitem")
def _eval_getitem(be, inputs, attrs):
    return inputs[0][attrs["index"]]


@register_forward("concat")
def _eval_concat(be, inputs, attrs):
    return np.concatenate(list(inputs), axis=attrs["axis"])


@register_forward("stack")
def _eval_stack(be, inputs, attrs):
    return np.stack(list(inputs), axis=attrs["axis"])


@register_forward("pad2d")
def _eval_pad2d(be, inputs, attrs):
    p = attrs["padding"]
    return np.pad(inputs[0], ((0, 0), (0, 0), (p, p), (p, p)), mode="constant")


@register_forward("clone")
def _eval_clone(be, inputs, attrs):
    return inputs[0].copy()


@register_forward("detach")
def _eval_detach(be, inputs, attrs):
    # Identity on the data; the detachment (no backward thunk) is a
    # property of the node, not of the value.
    return inputs[0]
