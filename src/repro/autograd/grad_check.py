"""Finite-difference gradient checking utilities.

:func:`numerical_gradient` computes central differences in float64;
:func:`check_gradients` runs a forward/backward pass through the autograd
engine and compares every analytic gradient against the numerical one.

For trustworthy checks build the inputs in float64 (``Tensor(data,
requires_grad=True, dtype=np.float64)``): central differences lose roughly
half the mantissa to cancellation, which in float32 leaves almost no signal.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.autograd.tensor import Tensor, no_grad

__all__ = ["numerical_gradient", "check_gradients", "GradCheckResult"]


def numerical_gradient(
    f: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-5
) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``f`` at ``x`` (float64).

    ``f`` is called with a float64 copy of ``x`` whose entries are perturbed
    one at a time; it must return a Python float (or anything ``float()``
    accepts).
    """
    x64 = np.array(x, dtype=np.float64)
    grad = np.empty_like(x64)
    flat = x64.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        f_plus = float(f(x64))
        flat[i] = original - eps
        f_minus = float(f(x64))
        flat[i] = original
        gflat[i] = (f_plus - f_minus) / (2.0 * eps)
    return grad


class GradCheckResult:
    """Outcome of :func:`check_gradients`; truthy iff every input passed."""

    def __init__(self) -> None:
        self.ok = True
        self.entries: List[dict] = []

    def add(self, index: int, passed: bool, max_abs_err: float, max_rel_err: float) -> None:
        self.entries.append(
            {
                "input": index,
                "passed": bool(passed),
                "max_abs_err": float(max_abs_err),
                "max_rel_err": float(max_rel_err),
            }
        )
        self.ok = self.ok and bool(passed)

    def __bool__(self) -> bool:
        return self.ok

    def __repr__(self) -> str:
        status = "OK" if self.ok else "FAILED"
        parts = ", ".join(
            f"input {e['input']}: {'pass' if e['passed'] else 'FAIL'} "
            f"(abs {e['max_abs_err']:.3g}, rel {e['max_rel_err']:.3g})"
            for e in self.entries
        )
        return f"GradCheckResult({status}; {parts})"


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-5,
    rtol: float = 1e-3,
    atol: float = 1e-5,
    seed_grad: Optional[np.ndarray] = None,
) -> GradCheckResult:
    """Compare analytic gradients of ``fn(*inputs)`` against central differences.

    ``fn`` maps the input tensors to an output tensor.  By default non-scalar
    outputs are reduced with ``.sum()`` so the objective is scalar; pass
    ``seed_grad`` (same shape as the output) to check the vector-Jacobian
    product against the objective ``(fn(*inputs) * seed_grad).sum()`` instead.
    Every input with ``requires_grad=True`` is checked.  Returns a truthy
    :class:`GradCheckResult` when all gradients match within ``rtol``/``atol``.
    """
    inputs = list(inputs)
    for t in inputs:
        if isinstance(t, Tensor):
            t.zero_grad()

    out = fn(*inputs)
    if seed_grad is None:
        seed64 = None
        if out.data.size != 1:
            out = out.sum()
        out.backward(retain_graph=True)
    else:
        seed64 = np.asarray(seed_grad, dtype=np.float64)
        if seed64.shape != out.data.shape:
            raise ValueError(
                f"seed_grad shape {seed64.shape} does not match output shape {out.data.shape}"
            )
        out.backward(seed_grad, retain_graph=True)

    result = GradCheckResult()
    for index, t in enumerate(inputs):
        if not (isinstance(t, Tensor) and t.requires_grad):
            continue
        if t.grad is None:
            result.add(index, False, np.inf, np.inf)
            continue
        analytic = np.asarray(t.grad, dtype=np.float64)
        original = t.data

        def objective(arr: np.ndarray) -> float:
            t.data = arr
            try:
                with no_grad():
                    value = fn(*inputs)
                data = np.asarray(value.data, dtype=np.float64)
                if seed64 is not None:
                    data = data * seed64
                return float(data.sum())
            finally:
                t.data = original

        numeric = numerical_gradient(objective, original, eps=eps)
        abs_err = np.abs(analytic - numeric)
        denom = np.maximum(np.abs(numeric), np.abs(analytic))
        rel_err = abs_err / np.maximum(denom, 1e-12)
        passed = bool(np.all(abs_err <= atol + rtol * denom))
        result.add(index, passed, abs_err.max(initial=0.0), rel_err.max(initial=0.0))
    return result
