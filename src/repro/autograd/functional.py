"""Vectorized dense kernels for the autograd engine.

Every kernel here is a single-pass computation: there are **no Python loops
over batch or channel dimensions**.  Convolution and pooling are built on
im2col / col2im — patches are exposed as a zero-copy strided window view and
contracted with a single ``tensordot`` (which lowers to one GEMM), the only
Python-level loops being over the kernel footprint (``kh × kw``, a handful
of iterations).

The dense numerical work dispatches through the **active array backend**
(:func:`repro.backend.get_backend`): the ndarray primitives (contractions,
padding, window views, reductions, transcendentals, RNG draws) and the
fusible elementwise chains (the affine map, the softmax family, batch-norm
normalization, the dropout mask) are backend methods, so an alternate
backend can fuse or reimplement them without touching this module.  Per the
``ArrayBackend`` contract, backends consume and produce numpy ndarrays (or
ndarray-compatible duck arrays): the cheap glue between composite calls —
broadcast bias adds, index gathers, scalar reductions of the gathered loss —
stays plain ndarray arithmetic on the backend's outputs.  Each kernel
resolves the backend once at trace time and its backward closure reuses that
same backend, so a forward pass and its backward always run on the same
implementation even if the active backend changes in between.

All public ops accept :class:`~repro.autograd.tensor.Tensor` (or anything
coercible to one), record themselves on the tape and return a ``Tensor``
whose backward pass reuses the saved window views, so forward and backward
each cost one pass over the data.

Layouts follow the PyTorch convention: images are NCHW, convolution weights
are ``(out_channels, in_channels, kh, kw)``, classification logits are
``(batch, classes)``.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.backend import default_rng, get_backend
from repro.autograd import ir
from repro.autograd.tensor import Tensor

__all__ = [
    "im2col",
    "col2im",
    "linear",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "softmax",
    "log_softmax",
    "softmax_cross_entropy",
    "batch_norm",
    "dropout",
]

IntPair = Union[int, Tuple[int, int]]


def _pair(value: IntPair) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise ValueError(f"expected an int or a pair, got {value!r}")
        return int(value[0]), int(value[1])
    return int(value), int(value)


def _pad_hw(be, x: np.ndarray, ph: int, pw: int, value: float = 0.0) -> np.ndarray:
    if ph == 0 and pw == 0:
        return x
    return be.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)), value=value)


def _check_pool_padding(kh: int, kw: int, ph: int, pw: int) -> None:
    # Padding wider than half the kernel creates windows lying entirely in
    # padding (-inf outputs for max, diluted zeros for avg).
    if 2 * ph > kh or 2 * pw > kw:
        raise ValueError(
            f"pool padding ({ph},{pw}) should be at most half the kernel size ({kh},{kw})"
        )


def _out_hw(h: int, w: int, kh: int, kw: int, sh: int, sw: int, ph: int, pw: int) -> Tuple[int, int]:
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    if oh <= 0 or ow <= 0:
        raise ValueError(
            f"kernel ({kh}x{kw}) with stride ({sh},{sw}) and padding ({ph},{pw}) "
            f"does not fit input of spatial size ({h},{w})"
        )
    return oh, ow


# --------------------------------------------------------------------------- #
# im2col / col2im (ndarray-level building blocks)
# --------------------------------------------------------------------------- #
def im2col(
    x: np.ndarray, kernel_size: IntPair, stride: IntPair = 1, padding: IntPair = 0, be=None
) -> np.ndarray:
    """Lower NCHW images to a patch matrix of shape ``(N, OH, OW, C*kh*kw)``.

    The resulting matrix turns convolution into a single GEMM against the
    flattened filter bank.  ``be`` pins the backend (default: the active one).
    """
    be = be if be is not None else get_backend()
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    xp = _pad_hw(be, np.asarray(x), ph, pw)
    win = be.sliding_windows(xp, kh, kw, sh, sw)  # (N, C, OH, OW, kh, kw)
    n, c, oh, ow = win.shape[:4]
    return win.transpose(0, 2, 3, 1, 4, 5).reshape(n, oh, ow, c * kh * kw)


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel_size: IntPair,
    stride: IntPair = 1,
    padding: IntPair = 0,
    be=None,
) -> np.ndarray:
    """Scatter-add a ``(N, OH, OW, C*kh*kw)`` patch matrix back to NCHW.

    This is the exact adjoint of :func:`im2col`: overlapping patches sum.
    ``be`` pins the backend; callers inside a backward closure pass the one
    they captured at trace time (default: the active backend).
    """
    be = be if be is not None else get_backend()
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    n, c, h, w = x_shape
    oh, ow = _out_hw(h, w, kh, kw, sh, sw, ph, pw)
    patches = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    xp = be.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
    for i in range(kh):
        for j in range(kw):
            xp[:, :, i : i + sh * oh : sh, j : j + sw * ow : sw] += patches[..., i, j]
    if ph or pw:
        return np.ascontiguousarray(xp[:, :, ph : ph + h, pw : pw + w])
    return xp


# --------------------------------------------------------------------------- #
# Shared forward cores
#
# The trace kernels and the IR forward evaluators (graph replay) run the
# *same* code, so a replayed node is bit-identical to the eager computation.
# --------------------------------------------------------------------------- #
def _conv2d_forward(
    be, xd: np.ndarray, wd: np.ndarray, bd: Optional[np.ndarray],
    sh: int, sw: int, ph: int, pw: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """NCHW cross-correlation core; returns ``(out, window_view)``."""
    kh, kw = wd.shape[2], wd.shape[3]
    xp = _pad_hw(be, xd, ph, pw)
    win = be.sliding_windows(xp, kh, kw, sh, sw)  # (N, C, OH, OW, kh, kw) view into xp
    # Contract channels and kernel footprint in one GEMM: -> (N, OH, OW, O).
    out = be.tensordot(win, wd, axes=((1, 4, 5), (1, 2, 3)))
    out = np.ascontiguousarray(out.transpose(0, 3, 1, 2))
    if bd is not None:
        out += bd.reshape(1, -1, 1, 1)
    return out, win


def _max_pool2d_forward(
    be, xd: np.ndarray, kh: int, kw: int, sh: int, sw: int, ph: int, pw: int
) -> Tuple[np.ndarray, np.ndarray, Tuple[int, ...]]:
    """Max-pool core; returns ``(out, argmax_indices, padded_shape)``."""
    n, c, h, w = xd.shape
    oh, ow = _out_hw(h, w, kh, kw, sh, sw, ph, pw)
    # Pad with -inf so padded positions never win the max.
    xp = _pad_hw(be, xd, ph, pw, value=-np.inf)
    win = be.sliding_windows(xp, kh, kw, sh, sw)
    flat = win.reshape(n, c, oh, ow, kh * kw)  # materializes the windows once
    arg = be.argmax(flat, axis=-1)
    out = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
    return np.ascontiguousarray(out), arg, xp.shape


def _avg_pool2d_forward(
    be, xd: np.ndarray, kh: int, kw: int, sh: int, sw: int, ph: int, pw: int
) -> Tuple[np.ndarray, Tuple[int, ...]]:
    """Average-pool core; returns ``(out, padded_shape)``."""
    xp = _pad_hw(be, xd, ph, pw)
    win = be.sliding_windows(xp, kh, kw, sh, sw)
    out = np.ascontiguousarray(be.mean(win, axis=(4, 5)))
    return out, xp.shape


# --------------------------------------------------------------------------- #
# Dense layers
# --------------------------------------------------------------------------- #
def linear(x, weight, bias=None) -> Tensor:
    """Fused affine map ``x @ weight + bias`` as a single tape node.

    Weight is ``(in_features, out_features)``.  Compared to composing ``@``
    and ``+`` this records one node instead of two and its backward is three
    dense kernels (two GEMMs and a column sum) with no broadcasting
    bookkeeping.
    """
    be = get_backend()
    x_t = Tensor._wrap(x)
    w_t = Tensor._wrap(weight)
    b_t = Tensor._wrap(bias) if bias is not None else None
    if x_t.data.ndim < 2:
        raise ValueError(
            "linear expects input of shape (..., in_features); got 1-D input "
            "(reshape to (1, in_features) for a single sample)"
        )
    if b_t is not None and b_t.data.shape != (w_t.data.shape[-1],):
        raise ValueError(
            f"linear bias must have shape ({w_t.data.shape[-1]},), got {b_t.data.shape}"
        )

    out = be.linear(x_t.data, w_t.data, b_t.data if b_t is not None else None)
    parents = (x_t, w_t) if b_t is None else (x_t, w_t, b_t)

    def make_backward(out_t: Tensor):
        def _backward() -> None:
            linear_backward(be, out_t.grad, x_t, w_t, b_t)

        return _backward

    return Tensor._make(out, parents, "linear", make_backward, be=be)


def linear_backward(be, g: np.ndarray, x_t: Tensor, w_t: Tensor, b_t: Optional[Tensor]) -> None:
    """Accumulate the affine map's three adjoints for incoming grad ``g``.

    Shared by the ``linear`` tape node and the fused ``linear_relu`` node
    (:mod:`repro.autograd.fusion`), which calls it with the relu-masked
    gradient — one definition, so a backward fix reaches both.
    """
    if x_t.requires_grad:
        x_t._accumulate_fresh(be.matmul(g, w_t.data.swapaxes(-1, -2)))
    if w_t.requires_grad:
        dw = be.matmul(x_t.data.swapaxes(-1, -2), g)
        if dw.ndim > w_t.data.ndim:  # batched input: sum leading dims
            dw = be.sum(dw, axis=tuple(range(dw.ndim - w_t.data.ndim)))
        w_t._accumulate_fresh(dw)
    if b_t is not None and b_t.requires_grad:
        b_t._accumulate_fresh(be.sum(g, axis=tuple(range(g.ndim - 1))))


# --------------------------------------------------------------------------- #
# Convolution
# --------------------------------------------------------------------------- #
def conv2d(
    x,
    weight,
    bias=None,
    stride: IntPair = 1,
    padding: IntPair = 0,
) -> Tensor:
    """2-D cross-correlation of an NCHW batch with an OIHW filter bank.

    Forward and backward are each a single im2col GEMM; the backward pass
    reuses the strided window view saved at trace time (no re-lowering).
    """
    be = get_backend()
    x_t = Tensor._wrap(x)
    w_t = Tensor._wrap(weight)
    b_t = Tensor._wrap(bias) if bias is not None else None

    xd, wd = x_t.data, w_t.data
    if xd.ndim != 4 or wd.ndim != 4:
        raise ValueError("conv2d expects NCHW input and OIHW weight")
    out_c, in_c, kh, kw = wd.shape
    if xd.shape[1] != in_c:
        raise ValueError(f"input has {xd.shape[1]} channels, weight expects {in_c}")
    if b_t is not None and b_t.data.shape != (out_c,):
        raise ValueError(f"conv2d bias must have shape ({out_c},), got {b_t.data.shape}")
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    n, _, h, w = xd.shape
    oh, ow = _out_hw(h, w, kh, kw, sh, sw, ph, pw)

    out, win = _conv2d_forward(
        be, xd, wd, b_t.data if b_t is not None else None, sh, sw, ph, pw
    )

    parents = (x_t, w_t) if b_t is None else (x_t, w_t, b_t)

    def make_backward(out_t: Tensor):
        def _backward() -> None:
            g = out_t.grad  # (N, O, OH, OW)
            if b_t is not None and b_t.requires_grad:
                b_t._accumulate_fresh(be.sum(g, axis=(0, 2, 3)))
            if w_t.requires_grad:
                # (N,O,OH,OW) x (N,C,OH,OW,kh,kw) over (N,OH,OW) -> (O,C,kh,kw)
                w_t._accumulate_fresh(
                    np.ascontiguousarray(be.tensordot(g, win, axes=((0, 2, 3), (0, 2, 3))))
                )
            if x_t.requires_grad:
                # (N,O,OH,OW) x (O,C,kh,kw) over O -> (N,OH,OW,C,kh,kw),
                # which is exactly the patch matrix col2im scatter-adds back.
                dwin = be.tensordot(g.transpose(0, 2, 3, 1), wd, axes=((3,), (0,)))
                x_t._accumulate_fresh(
                    col2im(
                        dwin.reshape(n, oh, ow, -1), xd.shape, (kh, kw), (sh, sw), (ph, pw), be=be
                    )
                )

        return _backward

    return Tensor._make(
        out, parents, "conv2d", make_backward,
        attrs={"stride": (sh, sw), "padding": (ph, pw)}, be=be,
    )


# --------------------------------------------------------------------------- #
# Pooling
# --------------------------------------------------------------------------- #
def max_pool2d(
    x, kernel_size: IntPair, stride: Optional[IntPair] = None, padding: IntPair = 0
) -> Tensor:
    """Max pooling over NCHW windows; gradient routes to the arg-max element."""
    be = get_backend()
    x_t = Tensor._wrap(x)
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(kernel_size if stride is None else stride)
    ph, pw = _pair(padding)
    _check_pool_padding(kh, kw, ph, pw)
    xd = x_t.data
    n, c, h, w = xd.shape
    oh, ow = _out_hw(h, w, kh, kw, sh, sw, ph, pw)

    # xp_shape: the closure needs only the padded shape, not the padded copy.
    out, arg, xp_shape = _max_pool2d_forward(be, xd, kh, kw, sh, sw, ph, pw)

    def make_backward(out_t: Tensor):
        def _backward() -> None:
            if not x_t.requires_grad:
                return
            g = out_t.grad
            dxp = be.zeros(xp_shape, dtype=xd.dtype)
            n_i, c_i, oh_i, ow_i = np.ogrid[0:n, 0:c, 0:oh, 0:ow]
            rows = oh_i * sh + arg // kw
            cols = ow_i * sw + arg % kw
            # Scatter-add handles overlapping windows (stride < kernel).
            np.add.at(dxp, (n_i, c_i, rows, cols), g)
            if ph or pw:
                x_t._accumulate_fresh(
                    np.ascontiguousarray(dxp[:, :, ph : ph + h, pw : pw + w])
                )
            else:
                x_t._accumulate_fresh(dxp)

        return _backward

    return Tensor._make(
        out, (x_t,), "max_pool2d", make_backward,
        attrs={"kernel_size": (kh, kw), "stride": (sh, sw), "padding": (ph, pw)}, be=be,
    )


def avg_pool2d(
    x, kernel_size: IntPair, stride: Optional[IntPair] = None, padding: IntPair = 0
) -> Tensor:
    """Average pooling over NCHW windows (padded zeros count toward the mean)."""
    be = get_backend()
    x_t = Tensor._wrap(x)
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(kernel_size if stride is None else stride)
    ph, pw = _pair(padding)
    _check_pool_padding(kh, kw, ph, pw)
    xd = x_t.data
    n, c, h, w = xd.shape
    oh, ow = _out_hw(h, w, kh, kw, sh, sw, ph, pw)

    # xp_shape: the closure needs only the padded shape, not the padded copy.
    out, xp_shape = _avg_pool2d_forward(be, xd, kh, kw, sh, sw, ph, pw)
    inv_area = 1.0 / (kh * kw)

    def make_backward(out_t: Tensor):
        def _backward() -> None:
            if not x_t.requires_grad:
                return
            g = out_t.grad * np.asarray(inv_area, dtype=xd.dtype)
            # Direct scatter instead of col2im: every patch entry is the same
            # g value, so materializing the (N,OH,OW,C*kh*kw) matrix would be
            # pure waste.
            dxp = be.zeros(xp_shape, dtype=xd.dtype)
            for i in range(kh):
                for j in range(kw):
                    dxp[:, :, i : i + sh * oh : sh, j : j + sw * ow : sw] += g
            if ph or pw:
                x_t._accumulate_fresh(
                    np.ascontiguousarray(dxp[:, :, ph : ph + h, pw : pw + w])
                )
            else:
                x_t._accumulate_fresh(dxp)

        return _backward

    return Tensor._make(
        out, (x_t,), "avg_pool2d", make_backward,
        attrs={"kernel_size": (kh, kw), "stride": (sh, sw), "padding": (ph, pw)}, be=be,
    )


# --------------------------------------------------------------------------- #
# Normalization and regularization
# --------------------------------------------------------------------------- #
def batch_norm(
    x,
    weight=None,
    bias=None,
    running_mean: Optional[np.ndarray] = None,
    running_var: Optional[np.ndarray] = None,
    training: bool = True,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalization over the channel axis (axis 1) as one tape node.

    Works for any ``(N, C, ...)`` layout: statistics are reduced over every
    axis except the channel axis, so the same kernel serves ``BatchNorm1d``
    (``(N, C)``) and ``BatchNorm2d`` (``(N, C, H, W)``).

    In training mode the batch statistics normalize the input and, when
    ``running_mean`` / ``running_var`` arrays are supplied, they are updated
    **in place** with an exponential moving average (``momentum`` weighting
    the new observation; the variance update uses the unbiased estimator,
    matching PyTorch).  Training mode requires more than one value per
    channel — with a single value the batch variance is degenerate and the
    unbiased correction ``n / (n - 1)`` is undefined, so a ``ValueError`` is
    raised (as PyTorch does) instead of silently poisoning the running
    statistics.  In eval mode the running statistics normalize the input and
    are never touched; if none were supplied the batch statistics are used
    as a fallback.

    ``weight`` (gamma) and ``bias`` (beta) are optional ``(C,)`` tensors for
    the affine transform; either may be ``None``.
    """
    be = get_backend()
    x_t = Tensor._wrap(x)
    w_t = Tensor._wrap(weight) if weight is not None else None
    b_t = Tensor._wrap(bias) if bias is not None else None

    xd = x_t.data
    if xd.ndim < 2:
        raise ValueError("batch_norm expects input of shape (N, C, ...)")
    c = xd.shape[1]
    for name, t in (("weight", w_t), ("bias", b_t)):
        if t is not None and t.data.shape != (c,):
            raise ValueError(f"batch_norm {name} must have shape ({c},), got {t.data.shape}")
    axes = (0,) + tuple(range(2, xd.ndim))
    bshape = (1, c) + (1,) * (xd.ndim - 2)
    m = xd.size // c  # elements per channel
    if training and m <= 1:
        raise ValueError(
            "batch_norm: expected more than 1 value per channel in training "
            f"mode, got input of shape {tuple(xd.shape)} ({m} per channel); "
            "use eval mode or a larger batch"
        )

    use_batch_stats = training or running_mean is None or running_var is None
    if use_batch_stats:
        mean = be.mean(xd, axis=axes)
        var = be.var(xd, axis=axes)
    else:
        mean = np.asarray(running_mean, dtype=xd.dtype)
        var = np.asarray(running_var, dtype=xd.dtype)

    if training and running_mean is not None and running_var is not None:
        # Unbiased variance for the running estimate (biased for
        # normalization); m > 1 is guaranteed by the check above.
        unbiased = var * (m / (m - 1))
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean.astype(running_mean.dtype)
        running_var *= 1.0 - momentum
        running_var += momentum * unbiased.astype(running_var.dtype)

    inv_std = 1.0 / np.sqrt(var + eps)
    xhat, out = be.bn_normalize(
        xd,
        mean,
        inv_std,
        w_t.data if w_t is not None else None,
        b_t.data if b_t is not None else None,
        bshape,
    )

    parents = tuple(t for t in (x_t, w_t, b_t) if t is not None)

    def make_backward(out_t: Tensor):
        def _backward() -> None:
            batch_norm_backward(
                be, out_t.grad, x_t, w_t, b_t, xhat, inv_std, axes, bshape, use_batch_stats
            )

        return _backward

    return Tensor._make(
        out, parents, "batch_norm", make_backward,
        attrs={
            "training": training,
            "use_batch_stats": use_batch_stats,
            "axes": axes,
            "bshape": bshape,
            "eps": eps,
            # In eval mode ``mean`` can be the module's live running_mean
            # buffer (np.asarray is a no-copy passthrough): snapshot it so
            # later in-place stat updates cannot leak into a saved trace
            # whose inv_std is already frozen.
            "mean": mean if use_batch_stats else mean.copy(),
            "inv_std": inv_std,
            "xhat": xhat,
            "has_weight": w_t is not None,
            "has_bias": b_t is not None,
        },
        be=be,
    )


def batch_norm_backward(
    be,
    g: np.ndarray,
    x_t: Tensor,
    w_t: Optional[Tensor],
    b_t: Optional[Tensor],
    xhat: np.ndarray,
    inv_std: np.ndarray,
    axes,
    bshape,
    use_batch_stats: bool,
) -> None:
    """Accumulate batch-norm's adjoints for incoming grad ``g``.

    Shared by the ``batch_norm`` tape node and the fused
    ``batch_norm_relu`` node (:mod:`repro.autograd.fusion`), which calls it
    with the relu-masked gradient — one definition, so a backward fix
    reaches both.
    """
    if b_t is not None and b_t.requires_grad:
        b_t._accumulate_fresh(be.sum(g, axis=axes))
    if w_t is not None and w_t.requires_grad:
        w_t._accumulate_fresh(be.sum(be.multiply(g, xhat), axis=axes))
    if not x_t.requires_grad:
        return
    dxhat = be.multiply(g, w_t.data.reshape(bshape)) if w_t is not None else g
    if use_batch_stats:
        # Batch statistics depend on x: the full three-term adjoint.
        x_t._accumulate_fresh(be.bn_input_grad(dxhat, xhat, inv_std, axes, bshape))
    else:
        # Running statistics are constants: pure elementwise scaling.
        x_t._accumulate_fresh(be.multiply(dxhat, inv_std.reshape(bshape)))


def dropout(
    x,
    p: float = 0.5,
    training: bool = True,
    rng: Optional[np.random.Generator] = None,
) -> Tensor:
    """Inverted dropout: zero each element with probability ``p`` in training.

    Kept elements are scaled by ``1 / (1 - p)`` so activations keep their
    expected magnitude and eval needs no rescaling.  In eval mode (or with
    ``p == 0``) the input tensor is returned unchanged — no mask, no tape
    node.  The mask is drawn from the explicit ``rng`` generator when given;
    without one it falls back to the **seeded global generator**
    (:func:`repro.backend.default_rng`, reset by
    ``repro.nn.init.manual_seed``) so training runs are reproducible without
    threading a generator through every call.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"dropout probability must be in [0, 1], got {p}")
    be = get_backend()
    x_t = Tensor._wrap(x)
    if not training or p == 0.0:
        return x_t

    xd = x_t.data
    if p == 1.0:
        mask = be.zeros(xd.shape, dtype=xd.dtype)
    else:
        mask = be.dropout_mask(rng if rng is not None else default_rng(), xd.shape, p, xd.dtype)

    def make_backward(out_t: Tensor):
        def _backward() -> None:
            if x_t.requires_grad:
                x_t._accumulate_fresh(be.multiply(out_t.grad, mask))

        return _backward

    return Tensor._make(
        be.multiply(xd, mask), (x_t,), "dropout", make_backward,
        attrs={"mask": mask, "p": p}, be=be,
    )


# --------------------------------------------------------------------------- #
# Softmax family
# --------------------------------------------------------------------------- #
def softmax(x, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    be = get_backend()
    x_t = Tensor._wrap(x)
    probs = be.softmax(x_t.data, axis)  # owned fresh buffer

    def make_backward(out_t: Tensor):
        def _backward() -> None:
            if x_t.requires_grad:
                x_t._accumulate_fresh(be.softmax_grad(out_t.grad, probs, axis))

        return _backward

    return Tensor._make(
        probs, (x_t,), "softmax", make_backward, attrs={"axis": axis}, be=be
    )


def log_softmax(x, axis: int = -1) -> Tensor:
    """Numerically stable ``log(softmax(x))`` along ``axis``."""
    be = get_backend()
    x_t = Tensor._wrap(x)
    logp = be.log_softmax(x_t.data, axis)

    def make_backward(out_t: Tensor):
        def _backward() -> None:
            if x_t.requires_grad:
                x_t._accumulate_fresh(be.log_softmax_grad(out_t.grad, logp, axis))

        return _backward

    return Tensor._make(
        logp, (x_t,), "log_softmax", make_backward, attrs={"axis": axis}, be=be
    )


def softmax_cross_entropy(logits, targets, reduction: str = "mean") -> Tensor:
    """Fused softmax + negative-log-likelihood over ``(batch, classes)`` logits.

    ``targets`` are integer class indices of shape ``(batch,)`` (ndarray or
    Tensor; never differentiated) and must lie in ``[0, classes)`` — negative
    or too-large labels raise instead of silently wrapping around.  Fusing
    the two steps keeps the backward pass a single ``probs - onehot`` kernel
    with no intermediate graph nodes.
    """
    if reduction not in ("mean", "sum", "none"):
        raise ValueError(f"unknown reduction {reduction!r}")
    be = get_backend()
    x_t = Tensor._wrap(logits)
    idx = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
    idx = idx.astype(np.int64).reshape(-1)
    # Targets are a data-dependent *input* of the node (unlike structural
    # attrs): replaying the trace over a new batch must bind new labels, so
    # they ride along as a non-differentiable integer parent tensor.  When
    # the caller handed us a Tensor, that very object is the parent — a
    # captured trace then maps it to a replay input slot instead of
    # freezing the trace-time labels in.
    if isinstance(targets, Tensor) and not targets.requires_grad:
        t_t = targets
    else:
        t_t = Tensor(idx, dtype=np.int64)

    out, logp, rows = _softmax_cross_entropy_forward(be, x_t.data, idx, reduction)
    n = idx.shape[0]

    def make_backward(out_t: Tensor):
        def _backward() -> None:
            if not x_t.requires_grad:
                return
            g = out_t.grad
            if reduction == "none":
                scale = g.reshape(-1, 1)
                if scale.dtype != logp.dtype:
                    scale = scale.astype(logp.dtype)
            else:
                s = float(g) / n if reduction == "mean" else float(g)
                scale = np.asarray(s, dtype=logp.dtype)
            x_t._accumulate_fresh(be.xent_grad(logp, rows, idx, scale))

        return _backward

    return Tensor._make(
        out, (x_t, t_t), "softmax_cross_entropy", make_backward,
        attrs={"reduction": reduction}, be=be,
    )


def _softmax_cross_entropy_forward(be, logits: np.ndarray, idx: np.ndarray, reduction: str):
    """Shared validation + loss core; returns ``(out, logp, rows)``.

    One definition serves the trace kernel and the IR replay evaluator, so
    a fix to the loss math or its guards reaches both.
    """
    if logits.ndim != 2 or idx.shape[0] != logits.shape[0]:
        raise ValueError("softmax_cross_entropy expects (N, C) logits and (N,) targets")
    if idx.shape[0] == 0 and reduction == "mean":
        # The mean of an empty batch is 0/0 (nan forward, zero division in
        # the backward scale); sum/none stay well-defined on N=0.
        raise ValueError(
            "softmax_cross_entropy got an empty batch (N=0); the mean loss "
            "is undefined — use reduction='sum' or 'none' for empty shards"
        )
    n_classes = logits.shape[1]
    if idx.size and (idx.min() < 0 or idx.max() >= n_classes):
        raise ValueError(
            f"softmax_cross_entropy targets must be class indices in "
            f"[0, {n_classes}), got values in [{idx.min()}, {idx.max()}]"
        )
    rows = np.arange(idx.shape[0])
    logp = be.log_softmax(logits, -1)
    losses = -logp[rows, idx]
    if reduction == "mean":
        out = losses.mean(dtype=losses.dtype)
    elif reduction == "sum":
        out = losses.sum(dtype=losses.dtype)
    else:
        out = losses
    return np.asarray(out), logp, rows


# --------------------------------------------------------------------------- #
# IR forward evaluators
#
# Each replays a recorded node's forward from its saved attrs over new input
# arrays, through the exact same core the trace kernel ran — graph replay
# (repro.serve) is therefore bit-identical to the eager computation.
# --------------------------------------------------------------------------- #
def _bn_replay_stats(be, xd: np.ndarray, attrs: dict) -> Tuple[np.ndarray, np.ndarray]:
    """``(mean, inv_std)`` for replaying a recorded batch-norm node."""
    if attrs["training"]:
        raise RuntimeError(
            "cannot replay a train-mode batch_norm node: replaying would "
            "re-update the running statistics; capture the trace in eval mode"
        )
    if attrs["use_batch_stats"]:
        # Eval without running statistics: the batch-statistics fallback is
        # recomputed from the new input, like the eager kernel does.
        mean = be.mean(xd, axis=attrs["axes"])
        var = be.var(xd, axis=attrs["axes"])
        return mean, 1.0 / np.sqrt(var + attrs["eps"])
    # Running statistics are frozen constants of the trace.
    return attrs["mean"], attrs["inv_std"]


def _bn_affine_inputs(inputs, attrs) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
    """Extract ``(gamma, beta)`` from a batch-norm node's input arrays."""
    gamma = inputs[1] if attrs["has_weight"] else None
    if attrs["has_bias"]:
        beta = inputs[2] if attrs["has_weight"] else inputs[1]
    else:
        beta = None
    return gamma, beta


@ir.register_forward("linear")
def _eval_linear(be, inputs, attrs):
    return be.linear(inputs[0], inputs[1], inputs[2] if len(inputs) == 3 else None)


@ir.register_forward("conv2d")
def _eval_conv2d(be, inputs, attrs):
    (sh, sw), (ph, pw) = attrs["stride"], attrs["padding"]
    bd = inputs[2] if len(inputs) == 3 else None
    return _conv2d_forward(be, inputs[0], inputs[1], bd, sh, sw, ph, pw)[0]


@ir.register_forward("max_pool2d")
def _eval_max_pool2d(be, inputs, attrs):
    (kh, kw), (sh, sw), (ph, pw) = attrs["kernel_size"], attrs["stride"], attrs["padding"]
    return _max_pool2d_forward(be, inputs[0], kh, kw, sh, sw, ph, pw)[0]


@ir.register_forward("avg_pool2d")
def _eval_avg_pool2d(be, inputs, attrs):
    (kh, kw), (sh, sw), (ph, pw) = attrs["kernel_size"], attrs["stride"], attrs["padding"]
    return _avg_pool2d_forward(be, inputs[0], kh, kw, sh, sw, ph, pw)[0]


@ir.register_forward("batch_norm")
def _eval_batch_norm(be, inputs, attrs):
    xd = inputs[0]
    mean, inv_std = _bn_replay_stats(be, xd, attrs)
    gamma, beta = _bn_affine_inputs(inputs, attrs)
    return be.bn_normalize(xd, mean, inv_std, gamma, beta, attrs["bshape"])[1]


@ir.register_forward("dropout")
def _eval_dropout(be, inputs, attrs):
    # Deterministic replay of the mask drawn at trace time.
    return be.multiply(inputs[0], attrs["mask"])


@ir.register_forward("softmax")
def _eval_softmax(be, inputs, attrs):
    return be.softmax(inputs[0], attrs["axis"])


@ir.register_forward("log_softmax")
def _eval_log_softmax(be, inputs, attrs):
    return be.log_softmax(inputs[0], attrs["axis"])


@ir.register_forward("softmax_cross_entropy")
def _eval_softmax_cross_entropy(be, inputs, attrs):
    idx = inputs[1].astype(np.int64).reshape(-1)
    return _softmax_cross_entropy_forward(be, inputs[0], idx, attrs["reduction"])[0]
