"""Trace-time fusion: a pattern-matching rewrite pass over the graph IR.

The pass walks the node graph reachable from a root tensor (in topological
order) and collapses matched producer→consumer chains into single fused
nodes dispatching to the composite :class:`~repro.backend.base.ArrayBackend`
methods:

====================  ==================  =================================
pattern               fused op            backend composite
====================  ==================  =================================
``linear`` → ``relu``  ``linear_relu``     :meth:`ArrayBackend.linear_relu`
``mul`` → ``add``      ``mul_add``         :meth:`ArrayBackend.mul_add`
``add`` → ``relu``     ``add_relu``        :meth:`ArrayBackend.add_relu`
``batch_norm``→``relu``  ``batch_norm_relu``  :meth:`ArrayBackend.bn_normalize_relu`
====================  ==================  =================================

A chain is fused only when the producer's output is consumed by exactly one
node of the walked graph, so gradient accumulation order — and therefore
every leaf gradient — stays **bit-identical** to the unfused tape: the fused
backward thunks run the exact op sequence of the two separate thunks, on the
backends the nodes captured at trace time.  The only observable difference
is that the fused-away intermediate tensor no longer receives a transient
``.grad`` (it is bypassed entirely, like PyTorch's non-leaf tensors).

When to run
-----------
- **Before ``backward()``** (automatic): with fusion enabled,
  :meth:`Tensor.backward` runs the pass once per freshly recorded graph
  before toposorting it, so every training step backpropagates through the
  fused chains.  Enable with the ``REPRO_FUSION`` environment variable
  (anything but ``0/off/false/no``), programmatically with
  :func:`enable_fusion`, or scoped with :func:`using_fusion`.
- **At trace time** (explicit): call :func:`fuse` on a freshly traced output
  (or on the output of an :func:`repro.autograd.ir.capture` block) to
  rewrite the graph before anything else consumes it.  The serving compiler
  (:func:`repro.serve.compile_inference`) does exactly this, and its
  executor then dispatches the fused *forward* composites, collapsing
  node-dispatch and temporary-allocation overhead on the replay hot path.

Fused nodes register forward evaluators in the IR registry, so a fused
captured trace replays like any other.
"""

from __future__ import annotations

import contextlib
import os
from typing import Dict, Optional

from repro.autograd import ir
from repro.autograd.functional import (
    _bn_affine_inputs,
    _bn_replay_stats,
    batch_norm_backward,
    linear_backward,
)
from repro.autograd.tensor import Tensor, _unbroadcast
from repro.backend import get_backend

__all__ = [
    "FUSED_OPS",
    "enable_fusion",
    "fuse",
    "fusion_enabled",
    "using_fusion",
]

#: Ops produced by this pass (also the keys of the fusion-count stats).
FUSED_OPS = ("linear_relu", "mul_add", "add_relu", "batch_norm_relu")

_FALSY = ("", "0", "off", "false", "no")

#: Programmatic override of the REPRO_FUSION environment toggle.
_OVERRIDE: Optional[bool] = None


def fusion_enabled() -> bool:
    """Whether ``backward()`` runs the rewrite pass automatically.

    :func:`enable_fusion` / :func:`using_fusion` take precedence; otherwise
    the ``REPRO_FUSION`` environment variable decides (off by default).
    """
    if _OVERRIDE is not None:
        return _OVERRIDE
    return os.environ.get("REPRO_FUSION", "").strip().lower() not in _FALSY


def enable_fusion(flag: Optional[bool]) -> None:
    """Force fusion on (``True``), off (``False``) or back to the
    ``REPRO_FUSION`` environment default (``None``)."""
    global _OVERRIDE
    _OVERRIDE = flag


@contextlib.contextmanager
def using_fusion(flag: bool):
    """Scoped :func:`enable_fusion`, restoring the previous override."""
    global _OVERRIDE
    previous = _OVERRIDE
    _OVERRIDE = bool(flag)
    try:
        yield
    finally:
        _OVERRIDE = previous


def _node_backend(node: ir.GraphNode):
    """The backend a fused thunk must run on: the node's trace-time backend."""
    return node.be if node.be is not None else get_backend()


#: Composite methods a backend must provide before its nodes may be fused.
#: The pre-IR ``ArrayBackend`` surface did not include them, so a
#: third-party backend that predates (or skips) the composites simply gets
#: no fusion instead of an AttributeError mid-backward or mid-replay.
_COMPOSITE_METHODS = ("relu_grad", "linear_relu", "mul_add", "add_relu", "bn_normalize_relu")


def _supports_composites(node: ir.GraphNode) -> bool:
    be = _node_backend(node)
    return all(hasattr(be, method) for method in _COMPOSITE_METHODS)


# --------------------------------------------------------------------------- #
# The rewrite pass
# --------------------------------------------------------------------------- #
def fuse(root: Tensor) -> Dict[str, int]:
    """Collapse fusable chains reachable from ``root``; returns counts per op.

    Safe to call on any traced tensor: training graphs (backward thunks are
    fused too) and captured ``no_grad`` traces (forward-only nodes) alike.
    Tensors shared with *other* graphs are never mutated — a fused chain
    bypasses its producer node rather than rewriting it, so other consumers
    of the producer's output keep working.
    """
    root_node = root._node
    if root_node is None:
        return {}
    # Training graphs are walked the way backward() will walk them (pruning
    # backward-less parents); captured no_grad traces are walked fully.
    nodes = ir.toposort(root_node, backward_only=root_node.backward is not None)
    return _fuse_nodes(nodes, root)[0]


def fuse_for_backward(root: Tensor):
    """The pass as ``backward()`` invokes it: returns a reusable topo list.

    Each rewrite splices the fused node into the consumer's slot of the
    pass's own topological walk (and blanks the bypassed producer's slot),
    so the post-rewrite order is returned ready to run — ``backward()``
    never walks the graph a second time.  ``None`` only when there is no
    graph at all.
    """
    root_node = root._node
    if root_node is None:
        return None
    nodes = ir.toposort(root_node, backward_only=root_node.backward is not None)
    return _fuse_nodes(nodes, root)[1]


def _fuse_nodes(nodes, root: Tensor):
    """Pattern-match and rewrite over a prebuilt topological node list.

    Returns ``(counts, topo)`` where ``topo`` is the post-rewrite
    topological order: a fused node takes its consumer's slot (its inputs
    are the bypassed producer's inputs, all of which precede the producer,
    which precedes the consumer — so the order stays valid), and the
    producer's slot is dropped.
    """
    counts: Dict[str, int] = {}
    node_ids = {id(n) for n in nodes}
    position = {id(n): i for i, n in enumerate(nodes)}
    consumers: Dict[int, int] = {}
    for node in nodes:
        for t in node.inputs:
            consumers[id(t)] = consumers.get(id(t), 0) + 1

    # Topological order makes the pass deterministic: in a mul→add→relu
    # chain the mul+add pair is seen (and fused) first, and the later relu
    # no longer matches because its producer is now a fused op.
    for i in range(len(nodes)):
        node = nodes[i]
        if node is None or node.out is None:
            # Spliced out by an earlier rewrite, or freed (this graph was
            # already backward-ed / shares a freed subgraph): nothing to
            # rewrite — backward() will hit the raising sentinel if needed.
            continue
        producer = None
        if node.op == "relu":
            producer = _fusable_producer(node.inputs[0], root, node_ids, consumers)
            if producer is None:
                continue
            if not (_supports_composites(node) and _supports_composites(producer)):
                continue
            if producer.op == "linear":
                _rewrite_linear_relu(producer, node)
            elif producer.op == "add":
                _rewrite_add_relu(producer, node)
            elif producer.op == "batch_norm":
                _rewrite_batch_norm_relu(producer, node)
            else:
                continue
        elif node.op == "add":
            for side in (0, 1):
                candidate = _fusable_producer(node.inputs[side], root, node_ids, consumers)
                if (
                    candidate is not None
                    and candidate.op == "mul"
                    and _supports_composites(node)
                    and _supports_composites(candidate)
                ):
                    producer = candidate
                    _rewrite_mul_add(producer, node, side)
                    break
            if producer is None:
                continue
        else:
            continue
        fused = node.out._node
        counts[fused.op] = counts.get(fused.op, 0) + 1
        nodes[i] = fused
        nodes[position[id(producer)]] = None
    if counts:
        nodes = [n for n in nodes if n is not None]
    return counts, nodes


def _fusable_producer(
    tensor: Tensor, root: Tensor, node_ids: set, consumers: Dict[int, int]
) -> Optional[ir.GraphNode]:
    """The producer node of ``tensor`` if it may be fused away, else ``None``.

    Requirements: the producer must belong to the walked graph (same
    gradient-tracking mode, not already rewritten), must not be the root,
    and its output must be consumed exactly once — a second consumer would
    change gradient accumulation order (breaking bit-exactness) or lose the
    intermediate value another part of the graph still needs.
    """
    node = tensor._node
    if node is None or id(node) not in node_ids:
        return None
    if node.out is None:
        # Freed by another root's backward over a shared subgraph: its
        # inputs/attrs are gone.  Leave it so backward() reaches the
        # freed-graph sentinel instead of the rewrite crashing.
        return None
    if tensor is root:
        return None
    if consumers.get(id(tensor)) != 1:
        return None
    return node


def _install(producer: ir.GraphNode, consumer: ir.GraphNode, fused: ir.GraphNode) -> None:
    """Hang ``fused`` on the consumer's output tensor, bypassing both nodes.

    The producer node is left *intact* for now (its output tensor still
    points at it) but recorded on ``fused.bypassed``: when ``backward()``
    frees the fused node it frees the producer with it, so a later backward
    through the bypassed intermediate — or through another graph sharing it
    — hits the freed-graph sentinel exactly as it would have unfused,
    instead of silently re-running a stale thunk.  The consumer node is
    referenced by nothing after the rewrite and dies by refcount.
    """
    fused.bypassed = (producer,)
    consumer.out._node = fused


def _rewrite_linear_relu(P: ir.GraphNode, C: ir.GraphNode) -> None:
    """linear → relu  ⇒  linear_relu (one node, three backward GEMM/sum ops)."""
    x_t, w_t = P.inputs[0], P.inputs[1]
    b_t = P.inputs[2] if len(P.inputs) == 3 else None
    out_t = C.out
    mask = C.attrs["mask"]
    pbe, cbe = _node_backend(P), _node_backend(C)
    fused = ir.GraphNode("linear_relu", P.inputs, {"mask": mask}, out_t, be=pbe)
    if C.backward is not None:
        def _backward() -> None:
            # Mask the incoming grad (the relu node's exact op), then run
            # the kernel's own backward — shared with functional.linear.
            linear_backward(pbe, cbe.relu_grad(out_t.grad, mask), x_t, w_t, b_t)

        fused.backward = _backward
    _install(P, C, fused)


def _rewrite_mul_add(P: ir.GraphNode, C: ir.GraphNode, side: int) -> None:
    """mul → add  ⇒  mul_add over ``(a, b, c)`` where ``c`` is the addend."""
    a_t, b_t = P.inputs
    c_t = C.inputs[1 - side]
    out_t = C.out
    p_shape = P.out.data.shape
    pbe = _node_backend(P)
    fused = ir.GraphNode("mul_add", (a_t, b_t, c_t), {"p_shape": p_shape}, out_t, be=pbe)
    if C.backward is not None:
        def _backward() -> None:
            g = out_t.grad
            # Same phase order as the separate thunks: the add side first
            # (c), then the mul side (a, b) — identical bit patterns when a
            # tensor appears on both sides.
            if c_t.requires_grad:
                c_t._accumulate_bcast(g)
            if a_t.requires_grad or b_t.requires_grad:
                gm = _unbroadcast(g, p_shape)
                if a_t.requires_grad:
                    a_t._accumulate_fresh(
                        _unbroadcast(pbe.multiply(gm, b_t.data), a_t.data.shape)
                    )
                if b_t.requires_grad:
                    b_t._accumulate_fresh(
                        _unbroadcast(pbe.multiply(gm, a_t.data), b_t.data.shape)
                    )

        fused.backward = _backward
    _install(P, C, fused)


def _rewrite_add_relu(P: ir.GraphNode, C: ir.GraphNode) -> None:
    """add → relu  ⇒  add_relu (one node, one masked grad fanned out)."""
    a_t, b_t = P.inputs
    out_t = C.out
    mask = C.attrs["mask"]
    cbe = _node_backend(C)
    fused = ir.GraphNode("add_relu", (a_t, b_t), {"mask": mask}, out_t, be=_node_backend(P))
    if C.backward is not None:
        def _backward() -> None:
            gm = cbe.relu_grad(out_t.grad, mask)
            if a_t.requires_grad:
                a_t._accumulate_bcast(gm)
            if b_t.requires_grad:
                b_t._accumulate_bcast(gm)

        fused.backward = _backward
    _install(P, C, fused)


def _rewrite_batch_norm_relu(P: ir.GraphNode, C: ir.GraphNode) -> None:
    """batch_norm → relu  ⇒  batch_norm_relu (masked grad into the bn adjoint)."""
    out_t = C.out
    mask = C.attrs["mask"]
    pa = P.attrs
    x_t = P.inputs[0]
    w_t = P.inputs[1] if pa["has_weight"] else None
    b_t = (P.inputs[2] if pa["has_weight"] else P.inputs[1]) if pa["has_bias"] else None
    xhat, inv_std = pa["xhat"], pa["inv_std"]
    axes, bshape, batch_stats = pa["axes"], pa["bshape"], pa["use_batch_stats"]
    pbe, cbe = _node_backend(P), _node_backend(C)
    attrs = dict(pa)
    attrs["mask"] = mask
    fused = ir.GraphNode("batch_norm_relu", P.inputs, attrs, out_t, be=pbe)
    if C.backward is not None:
        def _backward() -> None:
            # Mask the incoming grad, then run the kernel's own backward —
            # shared with functional.batch_norm.
            batch_norm_backward(
                pbe, cbe.relu_grad(out_t.grad, mask),
                x_t, w_t, b_t, xhat, inv_std, axes, bshape, batch_stats,
            )

        fused.backward = _backward
    _install(P, C, fused)


# --------------------------------------------------------------------------- #
# Forward evaluators for the fused ops (graph replay / serving)
# --------------------------------------------------------------------------- #
@ir.register_forward("linear_relu")
def _eval_linear_relu(be, inputs, attrs):
    return be.linear_relu(inputs[0], inputs[1], inputs[2] if len(inputs) == 3 else None)


@ir.register_forward("mul_add")
def _eval_mul_add(be, inputs, attrs):
    return be.mul_add(inputs[0], inputs[1], inputs[2])


@ir.register_forward("add_relu")
def _eval_add_relu(be, inputs, attrs):
    return be.add_relu(inputs[0], inputs[1])


@ir.register_forward("batch_norm_relu")
def _eval_batch_norm_relu(be, inputs, attrs):
    xd = inputs[0]
    mean, inv_std = _bn_replay_stats(be, xd, attrs)
    gamma, beta = _bn_affine_inputs(inputs, attrs)
    return be.bn_normalize_relu(xd, mean, inv_std, gamma, beta, attrs["bshape"])[1]
