"""Trace-time fusion: region extraction + pattern rewrites over the graph IR.

The pass walks the node graph reachable from a root tensor (in topological
order) and rewrites it at two granularities:

**Elementwise regions** (the general mechanism).  Maximal single-consumer
chains of ``add``/``mul``/``div``/``neg``/``relu`` nodes — any mix, any
length ≥ 2 — are collapsed into one ``region`` node carrying a
:class:`~repro.codegen.region.RegionIR`.  On replay (serving) the region
executes as **one compiled C kernel** through the backend's
``compile_region`` fusion point (falling back to the bit-equal numpy
interpreter arm when codegen is off or no compiler exists).  During
training the fused backward runs the exact per-op VJP sequences of the
original thunks in reverse order, passing interior gradients straight
through without the per-link ownership copy the unfused engine pays.

Three extensions widen what a region may contain:

- **Reduction tails** — a no-grad ``sum`` node whose axes form a trailing
  contiguous run joins the region (captured traces only; a training
  ``sum`` keeps its exact eager thunk), so a softmax-CE style epilogue
  compiles into the same kernel pipeline instead of forcing a region
  boundary.  Gated on the backend advertising ``"reduce"`` in its
  ``region_features``.
- **Linear heads** — a no-grad ``linear`` node may be absorbed as the
  *first* member of a region: the GEMM still runs through the host BLAS,
  but its bias add (and any following activation) folds into the region's
  first compiled loop.  Gated on ``"linear"`` in ``region_features``;
  ``linear → relu`` pairs are still claimed by the ``linear_relu``
  composite first.
- **Duplicated producers** — the single-consumer rule is lifted for one
  narrow shape: a lone elementwise node whose inputs are all graph
  leaves and whose output feeds *exactly two* region-eligible consumers
  is recomputed into each consuming region.  The producer node itself
  stays in the graph: the regions' backwards accumulate the two incoming
  gradients into its output tensor (two contributions commute bitwise),
  and its own thunk then runs its VJP — so every leaf gradient stays
  bit-identical while the forward chains fuse through the fan-out.  In a
  captured trace the bypassed producer becomes dead and the serving
  emitter drops it.

**Pattern pairs** (the composite-kernel mechanism).  ``linear → relu`` and
``batch_norm → relu`` still fuse into ``linear_relu`` /
``batch_norm_relu`` nodes dispatching to the backend composites: a GEMM or
a training-mode batch norm cannot join an elementwise region, but masking
its activation inside the composite is a real win.  The legacy
``mul_add`` / ``add_relu`` pairs remain only as a fallback for third-party
backends that implement the composites but not ``compile_region``; on the
built-in backends those chains now become regions.

A chain is fused only when each interior output is consumed by exactly one
node of the walked graph, so gradient accumulation order — and therefore
every leaf gradient — stays **bit-identical** to the unfused tape: fused
backward thunks run the exact op sequence of the separate thunks, on the
backends the nodes captured at trace time.  The only observable difference
is that fused-away intermediates no longer receive a transient ``.grad``
(they are bypassed entirely, like PyTorch's non-leaf tensors).

Incremental rewrite path
------------------------
Per-step training must not pay the full analysis on every tape: the pass
hashes the tape's *structure* (ops, wiring, dtypes, shapes, backend) into a
plan key and memoizes the resulting fusion plan.  Steady-state steps do one
cheap structural scan, hit the plan cache, and apply the recorded rewrites
directly — no consumer counting, no region discovery, no RegionIR
rebuilding.

When to run
-----------
- **Before ``backward()``** (automatic): with fusion enabled,
  :meth:`Tensor.backward` runs the pass once per freshly recorded graph
  before toposorting it.  Enable with the ``REPRO_FUSION`` environment
  variable (anything but ``0/off/false/no``), programmatically with
  :func:`enable_fusion`, or scoped with :func:`using_fusion`.
- **At trace time** (explicit): call :func:`fuse` on a freshly traced
  output (or on the output of an :func:`repro.autograd.ir.capture` block).
  The serving compiler (:func:`repro.serve.compile_inference`) does exactly
  this, and its executor then runs each region as one preallocated-buffer
  kernel step.

Fused nodes register forward evaluators in the IR registry, so a fused
captured trace replays like any other.
"""

from __future__ import annotations

import contextlib
import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.autograd import ir
from repro.autograd.functional import (
    _bn_affine_inputs,
    _bn_replay_stats,
    batch_norm_backward,
    linear_backward,
)
from repro.autograd.tensor import Tensor, _raise_freed_graph, _unbroadcast
from repro.backend import get_backend
from repro.codegen import RegionIR, RegionInput

__all__ = [
    "FUSED_OPS",
    "enable_fusion",
    "fuse",
    "fusion_enabled",
    "using_fusion",
]

#: Ops produced by this pass (also the keys of the fusion-count stats).
#: ``mul_add``/``add_relu`` appear only on backends without
#: ``compile_region``; the built-in backends produce ``region`` instead.
FUSED_OPS = ("linear_relu", "batch_norm_relu", "region", "mul_add", "add_relu")

_FALSY = ("", "0", "off", "false", "no")

#: Programmatic override of the REPRO_FUSION environment toggle.
_OVERRIDE: Optional[bool] = None


def fusion_enabled() -> bool:
    """Whether ``backward()`` runs the rewrite pass automatically.

    :func:`enable_fusion` / :func:`using_fusion` take precedence; otherwise
    the ``REPRO_FUSION`` environment variable decides (off by default).
    """
    if _OVERRIDE is not None:
        return _OVERRIDE
    return os.environ.get("REPRO_FUSION", "").strip().lower() not in _FALSY


def enable_fusion(flag: Optional[bool]) -> None:
    """Force fusion on (``True``), off (``False``) or back to the
    ``REPRO_FUSION`` environment default (``None``)."""
    global _OVERRIDE
    _OVERRIDE = flag


@contextlib.contextmanager
def using_fusion(flag: bool):
    """Scoped :func:`enable_fusion`, restoring the previous override."""
    global _OVERRIDE
    previous = _OVERRIDE
    _OVERRIDE = bool(flag)
    try:
        yield
    finally:
        _OVERRIDE = previous


def _node_backend(node: ir.GraphNode):
    """The backend a fused thunk must run on: the node's trace-time backend."""
    return node.be if node.be is not None else get_backend()


#: Composite methods a backend must provide before its nodes may be
#: pattern-fused.  The pre-IR ``ArrayBackend`` surface did not include
#: them, so a third-party backend that predates (or skips) the composites
#: simply gets no fusion instead of an AttributeError mid-backward or
#: mid-replay.
_COMPOSITE_METHODS = ("relu_grad", "linear_relu", "mul_add", "add_relu", "bn_normalize_relu")

def _backend_caps(be) -> tuple:
    """(supports composites, supports regions, region features), memoized
    on the backend.

    The probe result is stored on the instance itself so its lifetime is
    tied to the backend object (an external ``id()``-keyed cache would go
    stale when a test-scoped backend is collected and its id reused).
    Capabilities are treated as static per backend, like everywhere else
    in this module.  ``region features`` is the backend's advertised
    ``region_features`` set (``{"elementwise"}`` when it has
    ``compile_region`` but predates the attribute, empty when it has no
    ``compile_region`` at all) — the gate for absorbing structured nodes.
    """
    caps = getattr(be, "_repro_fusion_caps", None)
    if caps is None or len(caps) != 3:
        has_regions = hasattr(be, "compile_region")
        features = (
            frozenset(getattr(be, "region_features", ("elementwise",)))
            if has_regions
            else frozenset()
        )
        caps = (
            all(hasattr(be, method) for method in _COMPOSITE_METHODS),
            has_regions,
            features,
        )
        try:
            be._repro_fusion_caps = caps
        except (AttributeError, TypeError):
            pass  # slotted/frozen third-party backend: probe every time
    return caps


def _supports_composites(node: ir.GraphNode) -> bool:
    return _backend_caps(_node_backend(node))[0]


def _supports_regions(node: ir.GraphNode) -> bool:
    return _backend_caps(_node_backend(node))[1]


# --------------------------------------------------------------------------- #
# Entry points
# --------------------------------------------------------------------------- #
def fuse(root: Tensor) -> Dict[str, int]:
    """Collapse fusable chains reachable from ``root``; returns counts per op.

    Safe to call on any traced tensor: training graphs (backward thunks are
    fused too) and captured ``no_grad`` traces (forward-only nodes) alike.
    Tensors shared with *other* graphs are never mutated — a fused chain
    bypasses its producer nodes rather than rewriting them, so other
    consumers of an interior output keep working.
    """
    root_node = root._node
    if root_node is None:
        return {}
    # Training graphs are walked the way backward() will walk them (pruning
    # backward-less parents); captured no_grad traces are walked fully.
    nodes = ir.toposort(root_node, backward_only=root_node.backward is not None)
    return _fuse_nodes(nodes, root)[0]


def fuse_for_backward(root: Tensor):
    """The pass as ``backward()`` invokes it: returns a reusable topo list.

    Each rewrite splices the fused node into the region/pattern head's slot
    of the pass's own topological walk (and blanks the bypassed members'
    slots), so the post-rewrite order is returned ready to run —
    ``backward()`` never walks the graph a second time.  ``None`` only when
    there is no graph at all.
    """
    root_node = root._node
    if root_node is None:
        return None
    nodes = ir.toposort(root_node, backward_only=root_node.backward is not None)
    return _fuse_nodes(nodes, root)[1]


# --------------------------------------------------------------------------- #
# The plan cache (incremental rewrite path)
# --------------------------------------------------------------------------- #
#: Structural plan key -> fusion plan.  A training loop records the same
#: tape every step; after the first step the analysis (consumer counting,
#: eligibility, region discovery, RegionIR construction) is skipped and the
#: memoized plan is applied directly.
_PLAN_CACHE: Dict[tuple, list] = {}
_PLAN_CACHE_LIMIT = 64


def _plan_key(nodes) -> Optional[tuple]:
    """Structural identity of a topo list, or ``None`` when uncacheable.

    Captures op names and wiring (producer positions / leaf identity
    classes) — enough to make consumer counts, and therefore every
    *shape*-independent analysis decision, identical between two graphs
    with equal keys.  Everything else a plan depends on (dtypes, backend
    capabilities, relu masks) is re-validated per plan entry by
    :func:`_plan_applies`, whose cost is bounded by the plan size rather
    than the tape size: this function is the per-step hot path, so it
    deliberately reads nothing but ``op`` and the input links.
    """
    # One flat mixed tuple: each node contributes its op string followed by
    # its source codes (ints).  Op strings delimit the int runs, so the
    # encoding stays injective without per-node tuples — one allocation for
    # the whole key instead of two per node.
    key = []
    append = key.append
    node_pos: Dict[int, int] = {}
    leaf_ids: Dict[int, int] = {}
    pos_get = node_pos.get
    leaf_default = leaf_ids.setdefault
    idx = 0
    for node in nodes:
        if node.out is None:
            return None  # partially freed graph: let the full analysis cope
        append(node.op)
        for t in node.inputs:
            p = t._node
            if p is not None:
                pos = pos_get(id(p))
                if pos is not None:
                    append(pos)
                    continue
            append(-1 - leaf_default(id(t), len(leaf_ids)))
        node_pos[id(node)] = idx
        idx += 1
    return tuple(key)


def _fuse_nodes(nodes, root: Tensor):
    """Rewrite a prebuilt topological node list; returns ``(counts, topo)``.

    ``topo`` is the post-rewrite topological order: a fused node takes the
    head's slot (its inputs all precede the earliest member, so the order
    stays valid) and every other member's slot is dropped.
    """
    key = _plan_key(nodes)
    plan = _PLAN_CACHE.get(key) if key is not None else None
    if plan is None or not _plan_applies(plan, nodes):
        plan = _build_plan(nodes, root)
        if key is not None:
            if len(_PLAN_CACHE) >= _PLAN_CACHE_LIMIT:
                _PLAN_CACHE.clear()
            _PLAN_CACHE[key] = plan
    counts = _apply_plan(plan, nodes)
    if counts:
        nodes = [n for n in nodes if n is not None]
    return counts, nodes


def _freeze_plan(entries: list) -> tuple:
    """Pack plan entries with their rewrite counts (counts depend only on
    the plan, so they are computed once here instead of on every apply)."""
    counts: Dict[str, int] = {}
    for entry in entries:
        kind = entry[0]
        counts[kind] = counts.get(kind, 0) + 1
    return entries, counts


#: Expected (producer_op, consumer_op) per pattern kind.  The structural
#: key already guarantees these match; re-checked here as cheap insurance.
_PATTERN_OPS = {
    "linear_relu": ("linear", "relu"),
    "batch_norm_relu": ("batch_norm", "relu"),
    "add_relu": ("add", "relu"),
    "mul_add": ("mul", "add"),
}


def _plan_applies(plan, nodes) -> bool:
    """Validate a key-matched plan against this graph instance.

    The structural key guarantees ops and wiring — and wiring fixes the
    consumer counts, so the single-consumer precondition of every fusion
    below holds whenever the key matches.  What the key deliberately
    dropped for speed is re-checked here, bounded by the *plan* size rather
    than the tape size: dtypes (head output + external inputs pin the whole
    region cone by promotion), backend capabilities and identity, and relu
    mask availability.  Shapes need no check — training backward reads live
    data, and captured-region replay respecializes by shape at evaluation
    time.  A miss falls back to full analysis.
    """
    try:
        for entry in plan[0]:
            kind = entry[0]
            if kind == "region":
                _, member_pos, _routes, region, ext_locs, _dup_mask = entry
                head = nodes[member_pos[-1]]
                data = head.out.data
                if not isinstance(data, np.ndarray) or data.dtype != region.out_dtype:
                    return False
                be = _node_backend(head)
                if not _backend_caps(be)[1]:
                    return False
                structured = not region.is_elementwise
                if structured and head.backward is not None:
                    # A structurally identical *training* tape must not
                    # reuse a capture plan containing sum/linear members.
                    return False
                # Ops need no re-check — the structural key pins them; only
                # what the key dropped (backend identity, mask presence,
                # reduction axes) is validated per member.
                for j, pos in enumerate(member_pos):
                    node = nodes[pos]
                    if _node_backend(node) is not be:
                        return False
                    if node.op == "relu" and node.backward is not None:
                        attrs = node.attrs
                        if not attrs or "mask" not in attrs:
                            return False
                    if node.op == "sum":
                        # The structural key ignores attrs: same wiring
                        # with different reduction axes is a plan miss.
                        if _sum_meta(node) != region.ops[j][2]:
                            return False
                for s, (j, i) in enumerate(ext_locs):
                    td = nodes[member_pos[j]].inputs[i].data
                    if (
                        not isinstance(td, np.ndarray)
                        or td.dtype != region.inputs[s].dtype
                    ):
                        return False
            else:
                producer, consumer = nodes[entry[1]], nodes[entry[2]]
                if producer.op != _PATTERN_OPS[kind][0]:
                    return False
                if not (
                    _supports_composites(producer)
                    and _supports_composites(consumer)
                ):
                    return False
                if kind in ("add_relu", "mul_add") and _supports_regions(consumer):
                    return False
    except (AttributeError, IndexError, TypeError):
        # Freed nodes or a structurally stale plan: rebuild from scratch.
        return False
    return True


# --------------------------------------------------------------------------- #
# Analysis: build a fusion plan from one topo walk
# --------------------------------------------------------------------------- #
#: Graph ops an elementwise region may absorb.  Restricted to ops whose C
#: scalar form is bit-equal to the numpy ufunc (see repro.codegen.region);
#: ``sub`` never appears as a node (a - b records add(a, neg(b))).
_REGION_NODE_OPS = frozenset(("add", "mul", "div", "neg", "relu"))

#: Structured graph ops a region may absorb in captured (no-grad) traces,
#: gated per backend through ``region_features``.
_REGION_STRUCTURED_NODE_OPS = frozenset(("sum", "linear"))

_F32 = np.dtype(np.float32)
_F64 = np.dtype(np.float64)

#: Cap on ops per region: bounds generated-C size and compile time; a chain
#: longer than this splits into one region plus eager stragglers.
_MAX_REGION = 32


def _trailing_k(ndim: int, axis) -> Optional[int]:
    """``k`` when ``axis`` names exactly the last ``k`` of ``ndim`` axes,
    else ``None`` (the only reduction layout region kernels render)."""
    if ndim == 0:
        return None
    if axis is None:
        return ndim
    axes = (axis,) if isinstance(axis, int) else tuple(axis)
    norm = set()
    for a in axes:
        if not isinstance(a, int) or not -ndim <= a < ndim:
            return None
        norm.add(a + ndim if a < 0 else a)
    k = len(norm)
    if norm == set(range(ndim - k, ndim)):
        return k
    return None


def _sum_meta(node) -> Optional[tuple]:
    """A sum node's region meta ``(k, keepdims)``, or ``None`` when its
    recorded axes are not a trailing run (or it recorded no attrs — the
    training path, which must keep its exact eager reduction thunk)."""
    attrs = node.attrs
    if not attrs or "axis" not in attrs:
        return None
    k = _trailing_k(node.inputs[0].data.ndim, attrs["axis"])
    if k is None:
        return None
    return (k, bool(attrs.get("keepdims", False)))


def _region_eligible(node, cache: dict, structured_ok: bool) -> bool:
    flag = cache.get(id(node))
    if flag is None:
        flag = _compute_region_eligible(node, structured_ok)
        cache[id(node)] = flag
    return flag


def _compute_region_eligible(node, structured_ok: bool) -> bool:
    structured = node.op in _REGION_STRUCTURED_NODE_OPS
    if structured:
        # Structured nodes join regions only in captured traces (their
        # nodes carry no backward): a training sum/linear keeps its exact
        # eager thunk, so gradient op order is never in question.
        if not structured_ok or node.backward is not None:
            return False
    elif node.op not in _REGION_NODE_OPS:
        return False
    if node.out is None:
        return False
    data = node.out.data
    if not isinstance(data, np.ndarray) or data.dtype not in (_F32, _F64):
        return False
    for t in node.inputs:
        td = t.data
        if not isinstance(td, np.ndarray) or td.dtype != data.dtype:
            return False
    if not _supports_regions(node):
        return False
    if structured:
        features = _backend_caps(_node_backend(node))[2]
        if node.op == "sum":
            if "reduce" not in features or _sum_meta(node) is None:
                return False
        else:  # linear
            if "linear" not in features:
                return False
            x, w = node.inputs[0].data, node.inputs[1].data
            if x.ndim < 2 or w.ndim != 2 or x.shape[-1] != w.shape[0]:
                return False
    if node.op == "relu" and node.backward is not None:
        attrs = node.attrs
        if not attrs or "mask" not in attrs:
            return False
    return True


def _build_plan(nodes, root: Tensor) -> list:
    """Full analysis over one topo list: pattern pairs first (a GEMM or a
    batch norm cannot join an elementwise region, and masking the relu
    inside the composite is the bigger win), then maximal regions over the
    remaining eligible nodes."""
    plan: list = []
    node_ids = {id(n) for n in nodes}
    position = {id(n): i for i, n in enumerate(nodes)}
    consumers: Dict[int, int] = {}
    consumer_nodes: Dict[int, list] = {}
    for node in nodes:
        for t in node.inputs:
            consumers[id(t)] = consumers.get(id(t), 0) + 1
            consumer_nodes.setdefault(id(t), []).append(node)

    claimed: set = set()
    # Structured nodes (sum / linear) may join regions only when the whole
    # walked graph is a no-grad capture; a training graph's topo contains
    # only backward-bearing nodes, so the root's thunk decides.
    root_node = root._node
    structured_ok = root_node is not None and root_node.backward is None

    def fusable_producer(tensor: Tensor) -> Optional[ir.GraphNode]:
        node = tensor._node
        if node is None or id(node) not in node_ids or id(node) in claimed:
            return None
        if node.out is None:
            # Freed by another root's backward over a shared subgraph: its
            # inputs/attrs are gone.  Leave it so backward() reaches the
            # freed-graph sentinel instead of the rewrite crashing.
            return None
        if tensor is root:
            return None
        if consumers.get(id(tensor)) != 1:
            return None
        return node

    # ---- pattern pairs (topo order keeps the pass deterministic) -------- #
    for i, node in enumerate(nodes):
        if id(node) in claimed or node.out is None:
            continue
        if node.op == "relu":
            producer = fusable_producer(node.inputs[0])
            if producer is None or not (
                _supports_composites(node) and _supports_composites(producer)
            ):
                continue
            if producer.op == "linear":
                entry = ("linear_relu", position[id(producer)], i)
            elif producer.op == "batch_norm":
                entry = ("batch_norm_relu", position[id(producer)], i)
            elif producer.op == "add" and not _supports_regions(node):
                entry = ("add_relu", position[id(producer)], i)
            else:
                continue
            plan.append(entry)
            claimed.add(id(producer))
            claimed.add(id(node))
        elif node.op == "add" and not _supports_regions(node):
            for side in (0, 1):
                candidate = fusable_producer(node.inputs[side])
                if (
                    candidate is not None
                    and candidate.op == "mul"
                    and _supports_composites(node)
                    and _supports_composites(candidate)
                ):
                    plan.append(("mul_add", position[id(candidate)], i, side))
                    claimed.add(id(candidate))
                    claimed.add(id(node))
                    break

    # ---- elementwise regions ------------------------------------------- #
    cache: dict = {}
    absorbed: set = set()
    dup: set = set()
    edges: Dict[int, List[ir.GraphNode]] = {}

    def dup_candidate(tensor: Tensor, be) -> Optional[ir.GraphNode]:
        """A producer recomputable into each of its two consuming regions.

        The narrow duplication shape: a lone *elementwise* node whose
        inputs are all graph-external and whose output feeds exactly two
        region-eligible consumers on the same backend.  Exactly two
        because the regions' backwards accumulate their gradients into
        the producer's output tensor in whichever order the regions run
        — two float contributions commute bitwise, three would change
        the ``+=`` grouping against the eager tape.
        """
        if tensor is root or consumers.get(id(tensor)) != 2:
            return None
        p = tensor._node
        if (
            p is None
            or id(p) not in node_ids
            or id(p) in claimed
            or p.out is None
            or p.op not in _REGION_NODE_OPS
            or not _region_eligible(p, cache, structured_ok)
            or _node_backend(p) is not be
        ):
            return None
        for t in p.inputs:
            tn = t._node
            if tn is not None and id(tn) in node_ids:
                return None  # inputs must be graph leaves
        for c in consumer_nodes[id(tensor)]:
            if (
                id(c) in claimed
                or c.op == "linear"
                or not _region_eligible(c, cache, structured_ok)
                or _node_backend(c) is not be
            ):
                return None
        return p

    for node in nodes:
        if id(node) in claimed or not _region_eligible(node, cache, structured_ok):
            continue
        if node.op == "linear":
            # A linear is a head-only member: its operands must stay region
            # inputs (the GEMM runs on the host), so it absorbs nothing.
            continue
        be = _node_backend(node)
        for t in node.inputs:
            producer = fusable_producer(t)
            if (
                producer is not None
                and id(producer) not in claimed
                and _region_eligible(producer, cache, structured_ok)
                and _node_backend(producer) is be
            ):
                absorbed.add(id(producer))
                edges.setdefault(id(node), []).append(producer)
                continue
            producer = dup_candidate(t, be)
            if producer is not None:
                links = edges.setdefault(id(node), [])
                if producer not in links:
                    links.append(producer)
                dup.add(id(producer))

    for node in nodes:
        if (
            id(node) in claimed
            or id(node) in absorbed
            or id(node) in dup
            or not _region_eligible(node, cache, structured_ok)
        ):
            continue
        members = _collect_members(node, edges, position)
        if len(members) < 2:
            continue
        plan.append(_region_recipe(members, position, dup))
    return _freeze_plan(plan)


def _collect_members(head, edges, position) -> list:
    """All nodes absorbed (transitively) into ``head``, in topo order with
    the head last.  Capped at ``_MAX_REGION``; excluded producers simply
    stay eager and feed the region as external inputs.  A duplicated
    producer reachable through both of its consumers joins once."""
    members = [head]
    seen = {id(head)}
    stack = [head]
    while stack and len(members) < _MAX_REGION:
        node = stack.pop()
        for producer in edges.get(id(node), ()):
            if len(members) >= _MAX_REGION:
                break
            if id(producer) in seen:
                continue
            seen.add(id(producer))
            members.append(producer)
            stack.append(producer)
    members.sort(key=lambda n: position[id(n)])
    return members


def _region_recipe(members, position, dup) -> tuple:
    """One plan entry: member positions, per-member grad routes, the
    RegionIR, where each external input tensor lives, and which members
    are duplicated producers.

    A duplicated member is wired into the region *program* like any other
    (the region recomputes it) but its grad route is ``-1``: the backward
    treats the link as external and accumulates into the producer's own
    output tensor, whose node — left alive in the graph — then runs its
    original VJP.
    """
    member_index = {id(m): j for j, m in enumerate(members)}
    member_set = frozenset(member_index)
    dup_mask = tuple(id(m) in dup for m in members)
    routes = []
    ext_slot: Dict[int, int] = {}
    ext_locs: List[Tuple[int, int]] = []
    prog = []
    for j, m in enumerate(members):
        route = []
        srcs = []
        for i, t in enumerate(m.inputs):
            p = t._node
            if p is not None and id(p) in member_set:
                k = member_index[id(p)]
                route.append(-1 if dup_mask[k] else k)
                srcs.append(("m", k))
            else:
                route.append(-1)
                s = ext_slot.get(id(t))
                if s is None:
                    s = len(ext_locs)
                    ext_slot[id(t)] = s
                    ext_locs.append((j, i))
                srcs.append(("e", s))
        routes.append(tuple(route))
        if m.op == "sum":
            prog.append((m.op, tuple(srcs), _sum_meta(m)))
        else:
            prog.append((m.op, tuple(srcs)))

    n_ext = len(ext_locs)
    ops = [
        (entry[0], tuple(n_ext + s if tag == "m" else s for tag, s in entry[1]))
        + entry[2:]
        for entry in prog
    ]
    ext_tensors = [members[j].inputs[i] for j, i in ext_locs]
    out = members[-1].out
    region = RegionIR(
        [RegionInput(t.data.dtype, t.data.shape) for t in ext_tensors],
        ops,
        out.data.shape,
        out.data.dtype,
    )
    return (
        "region",
        tuple(position[id(m)] for m in members),
        tuple(routes),
        region,
        tuple(ext_locs),
        dup_mask,
    )


# --------------------------------------------------------------------------- #
# Application: execute a plan over a (possibly fresh) topo list
# --------------------------------------------------------------------------- #
def _apply_plan(plan, nodes) -> Dict[str, int]:
    for entry in plan[0]:
        kind = entry[0]
        if kind == "region":
            _apply_region(entry, nodes)
        else:
            p_pos, c_pos = entry[1], entry[2]
            producer, consumer = nodes[p_pos], nodes[c_pos]
            if kind == "linear_relu":
                _rewrite_linear_relu(producer, consumer)
            elif kind == "batch_norm_relu":
                _rewrite_batch_norm_relu(producer, consumer)
            elif kind == "add_relu":
                _rewrite_add_relu(producer, consumer)
            else:
                _rewrite_mul_add(producer, consumer, entry[3])
            nodes[c_pos] = consumer.out._node
            nodes[p_pos] = None
    # Copy: callers may keep the counts dict; the original lives in the
    # cached plan and must stay untouched.
    return dict(plan[1])


def _apply_region(entry, nodes) -> None:
    """Splice one fused ``region`` node over its members.

    The fused node takes the head's topo slot; every member (head included)
    is recorded on ``bypassed`` so ``backward()`` frees them with the fused
    node, keeping the freed-graph sentinel semantics of the unfused chain.
    """
    _, member_pos, routes, region, ext_locs, dup_mask = entry
    members = [nodes[p] for p in member_pos]
    head = members[-1]
    out_t = head.out
    ext_tensors = tuple(members[j].inputs[i] for j, i in ext_locs)
    be = _node_backend(head)
    fused = ir.GraphNode(
        "region", ext_tensors, {"region": region, "size": len(members)}, out_t, be=be
    )
    if head.backward is not None:
        fused.backward = _region_backward(members, routes, out_t, be, dup_mask)
    # Duplicated producers stay live: their nodes keep their topo slots and
    # run their own backward (fed by the gradients the regions accumulate
    # into their outputs), so they are neither blanked nor bypassed.
    fused.bypassed = tuple(m for m, d in zip(members, dup_mask) if not d)
    out_t._node = fused
    nodes[member_pos[-1]] = fused
    for pos, d in zip(member_pos[:-1], dup_mask[:-1]):
        if not d:
            nodes[pos] = None


def _region_backward(members, routes, out_t: Tensor, be, dup_mask):
    """The chained-VJP backward for one region.

    Runs the exact per-op gradient sequences of the original thunks, in
    reverse member order.  Interior gradients (single-consumer by
    construction) are passed straight through ``grads`` without the
    ownership copy ``_accumulate`` would have made — the copy is
    value-preserving, so skipping it keeps every leaf gradient
    bit-identical while saving one full-array copy per interior link.
    External tensors go through the original ``_accumulate_*`` calls, which
    copy on first contribution, so shared buffers are never mutated.

    Duplicated members are skipped entirely: their grad routes are ``-1``,
    so the consuming members' external paths have already accumulated the
    incoming gradients into the producer's output tensor, and the
    producer's own (still-live) node runs its VJP afterwards.
    """
    n = len(members)

    def _backward() -> None:
        for m, d in zip(members, dup_mask):
            if m.out is None and not d:
                # A member shared with another graph was freed by that
                # graph's backward: same sentinel the unfused tape hits.
                # (A duplicated member freed by its own earlier backward —
                # impossible in one reverse-topo pass, but cheap to allow —
                # is not this region's concern.)
                _raise_freed_graph()
        # ``own[j]``: grads[j] is a private buffer this thunk allocated and
        # nothing else references — interior links may then compute the
        # next gradient *in place* (same op, same operands, only the
        # destination changes, so every value stays bit-identical) instead
        # of allocating a fresh full-size array per link.  The head slot is
        # the caller's accumulated grad and external contributions are
        # handed to ``_accumulate_*`` (which copy or adopt fresh buffers),
        # so neither is ever mutated here.
        grads: List[Optional[np.ndarray]] = [None] * n
        own = [False] * n
        grads[n - 1] = out_t.grad
        for j in range(n - 1, -1, -1):
            if dup_mask[j]:
                continue  # recomputed producer: its own node runs the VJP
            g = grads[j]
            m = members[j]
            op = m.op
            ins = m.inputs
            route = routes[j]
            writable = own[j] and type(g) is np.ndarray
            if op == "add":
                alias = -1
                for i in (0, 1):
                    t = ins[i]
                    k = route[i]
                    if k >= 0:
                        red = _unbroadcast(g, t.data.shape)
                        grads[k] = red
                        if red is g:
                            if alias < 0:
                                alias = k
                                own[k] = own[j]
                            else:
                                # both sides alias one buffer: neither owns it
                                own[alias] = own[k] = False
                        else:
                            own[k] = True
                    elif t.requires_grad:
                        t._accumulate_bcast(g)
            elif op == "mul":
                a_t, b_t = ins
                ka, kb = route
                # External sides read the original ``g``; they run before
                # any in-place mutation for an interior side.  a-then-b
                # accumulation order is preserved for shared tensors.
                if ka < 0 and a_t.requires_grad:
                    a_t._accumulate_fresh(
                        _unbroadcast(be.multiply(g, b_t.data), a_t.data.shape)
                    )
                if kb < 0 and b_t.requires_grad:
                    b_t._accumulate_fresh(
                        _unbroadcast(be.multiply(g, a_t.data), b_t.data.shape)
                    )
                if ka >= 0 and kb >= 0:
                    # both interior (tree): second side fresh, then first in place
                    grads[kb] = _unbroadcast(be.multiply(g, a_t.data), b_t.data.shape)
                    own[kb] = True
                if ka >= 0:
                    if writable:
                        np.multiply(g, b_t.data, out=g)
                        grads[ka] = _unbroadcast(g, a_t.data.shape)
                    else:
                        grads[ka] = _unbroadcast(
                            be.multiply(g, b_t.data), a_t.data.shape
                        )
                    own[ka] = True
                elif kb >= 0:
                    if writable:
                        np.multiply(g, a_t.data, out=g)
                        grads[kb] = _unbroadcast(g, b_t.data.shape)
                    else:
                        grads[kb] = _unbroadcast(
                            be.multiply(g, a_t.data), b_t.data.shape
                        )
                    own[kb] = True
            elif op == "relu":
                t = ins[0]
                k = route[0]
                mask = m.attrs["mask"]
                if k >= 0:
                    if writable:
                        np.multiply(g, mask, out=g)
                        grads[k] = g
                    else:
                        grads[k] = be.multiply(g, mask)
                    own[k] = True
                elif t.requires_grad:
                    t._accumulate_fresh(be.multiply(g, mask))
            elif op == "neg":
                t = ins[0]
                k = route[0]
                if k >= 0:
                    if writable:
                        np.negative(g, out=g)
                        grads[k] = g
                    else:
                        grads[k] = be.negative(g)
                    own[k] = True
                elif t.requires_grad:
                    t._accumulate_fresh(be.negative(g))
            else:  # div
                a_t, b_t = ins
                ka, kb = route
                gb = None
                if kb >= 0 or b_t.requires_grad:
                    # needs the original ``g``: computed before the a-side
                    # may mutate it, accumulated in the original order below
                    gb = _unbroadcast(
                        be.divide(
                            be.multiply(be.negative(g), a_t.data),
                            be.power(b_t.data, 2.0),
                        ),
                        b_t.data.shape,
                    )
                if ka >= 0:
                    if writable:
                        np.divide(g, b_t.data, out=g)
                        grads[ka] = _unbroadcast(g, a_t.data.shape)
                    else:
                        grads[ka] = _unbroadcast(be.divide(g, b_t.data), a_t.data.shape)
                    own[ka] = True
                elif a_t.requires_grad:
                    a_t._accumulate_fresh(
                        _unbroadcast(be.divide(g, b_t.data), a_t.data.shape)
                    )
                if kb >= 0:
                    grads[kb] = gb
                    own[kb] = True
                elif gb is not None:
                    b_t._accumulate_fresh(gb)
            grads[j] = None

    return _backward


# --------------------------------------------------------------------------- #
# Pattern rewrites (shared with the legacy composite path)
# --------------------------------------------------------------------------- #
def _install(producer: ir.GraphNode, consumer: ir.GraphNode, fused: ir.GraphNode) -> None:
    """Hang ``fused`` on the consumer's output tensor, bypassing both nodes.

    The producer node is left *intact* for now (its output tensor still
    points at it) but recorded on ``fused.bypassed``: when ``backward()``
    frees the fused node it frees the producer with it, so a later backward
    through the bypassed intermediate — or through another graph sharing it
    — hits the freed-graph sentinel exactly as it would have unfused,
    instead of silently re-running a stale thunk.  The consumer node is
    referenced by nothing after the rewrite and dies by refcount.
    """
    fused.bypassed = (producer,)
    consumer.out._node = fused


def _relu_mask(C: ir.GraphNode):
    """The relu mask, if the consumer recorded one (grad-tracking traces
    only; no-grad captures skip the mask and never run a backward)."""
    return C.attrs["mask"] if C.attrs else None


def _rewrite_linear_relu(P: ir.GraphNode, C: ir.GraphNode) -> None:
    """linear → relu  ⇒  linear_relu (one node, three backward GEMM/sum ops)."""
    x_t, w_t = P.inputs[0], P.inputs[1]
    b_t = P.inputs[2] if len(P.inputs) == 3 else None
    out_t = C.out
    mask = _relu_mask(C)
    pbe, cbe = _node_backend(P), _node_backend(C)
    fused = ir.GraphNode("linear_relu", P.inputs, {"mask": mask}, out_t, be=pbe)
    if C.backward is not None:
        def _backward() -> None:
            # Mask the incoming grad (the relu node's exact op), then run
            # the kernel's own backward — shared with functional.linear.
            linear_backward(pbe, cbe.relu_grad(out_t.grad, mask), x_t, w_t, b_t)

        fused.backward = _backward
    _install(P, C, fused)


def _rewrite_mul_add(P: ir.GraphNode, C: ir.GraphNode, side: int) -> None:
    """mul → add  ⇒  mul_add over ``(a, b, c)`` where ``c`` is the addend."""
    a_t, b_t = P.inputs
    c_t = C.inputs[1 - side]
    out_t = C.out
    p_shape = P.out.data.shape
    pbe = _node_backend(P)
    fused = ir.GraphNode("mul_add", (a_t, b_t, c_t), {"p_shape": p_shape}, out_t, be=pbe)
    if C.backward is not None:
        def _backward() -> None:
            g = out_t.grad
            # Same phase order as the separate thunks: the add side first
            # (c), then the mul side (a, b) — identical bit patterns when a
            # tensor appears on both sides.
            if c_t.requires_grad:
                c_t._accumulate_bcast(g)
            if a_t.requires_grad or b_t.requires_grad:
                gm = _unbroadcast(g, p_shape)
                if a_t.requires_grad:
                    a_t._accumulate_fresh(
                        _unbroadcast(pbe.multiply(gm, b_t.data), a_t.data.shape)
                    )
                if b_t.requires_grad:
                    b_t._accumulate_fresh(
                        _unbroadcast(pbe.multiply(gm, a_t.data), b_t.data.shape)
                    )

        fused.backward = _backward
    _install(P, C, fused)


def _rewrite_add_relu(P: ir.GraphNode, C: ir.GraphNode) -> None:
    """add → relu  ⇒  add_relu (one node, one masked grad fanned out)."""
    a_t, b_t = P.inputs
    out_t = C.out
    mask = _relu_mask(C)
    cbe = _node_backend(C)
    fused = ir.GraphNode("add_relu", (a_t, b_t), {"mask": mask}, out_t, be=_node_backend(P))
    if C.backward is not None:
        def _backward() -> None:
            gm = cbe.relu_grad(out_t.grad, mask)
            if a_t.requires_grad:
                a_t._accumulate_bcast(gm)
            if b_t.requires_grad:
                b_t._accumulate_bcast(gm)

        fused.backward = _backward
    _install(P, C, fused)


def _rewrite_batch_norm_relu(P: ir.GraphNode, C: ir.GraphNode) -> None:
    """batch_norm → relu  ⇒  batch_norm_relu (masked grad into the bn adjoint)."""
    out_t = C.out
    mask = _relu_mask(C)
    pa = P.attrs
    x_t = P.inputs[0]
    w_t = P.inputs[1] if pa["has_weight"] else None
    b_t = (P.inputs[2] if pa["has_weight"] else P.inputs[1]) if pa["has_bias"] else None
    xhat, inv_std = pa["xhat"], pa["inv_std"]
    axes, bshape, batch_stats = pa["axes"], pa["bshape"], pa["use_batch_stats"]
    pbe, cbe = _node_backend(P), _node_backend(C)
    attrs = dict(pa)
    attrs["mask"] = mask
    fused = ir.GraphNode("batch_norm_relu", P.inputs, attrs, out_t, be=pbe)
    if C.backward is not None:
        def _backward() -> None:
            # Mask the incoming grad, then run the kernel's own backward —
            # shared with functional.batch_norm.
            batch_norm_backward(
                pbe, cbe.relu_grad(out_t.grad, mask),
                x_t, w_t, b_t, xhat, inv_std, axes, bshape, batch_stats,
            )

        fused.backward = _backward
    _install(P, C, fused)


# --------------------------------------------------------------------------- #
# Forward evaluators for the fused ops (graph replay / serving)
# --------------------------------------------------------------------------- #
def _region_for_arrays(region: RegionIR, inputs):
    """``region``, respecialized if the replay arrays changed shape (a
    captured trace replayed over a different batch size)."""
    dyn = [inp for inp in region.inputs if inp.const is None]
    if all(a.shape == inp.shape for a, inp in zip(inputs, dyn)):
        return region
    return region.respecialize([a.shape for a in inputs])


@ir.register_forward("region")
def _eval_region(be, inputs, attrs):
    # Keyed by the replay shapes, not RegionIR identity: respecialization
    # returns a fresh object whenever the replay batch differs from the
    # trace, so an identity key would re-run respecialize + compile_region
    # on every call of a hot steady-state replay.
    key = tuple(a.shape for a in inputs)
    cached = attrs.get("_kernel")
    if cached is None or cached[0] != key:
        region = _region_for_arrays(attrs["region"], inputs)
        compiler = getattr(be, "compile_region", None)
        kern = region.interpret if compiler is None else compiler(region)
        cached = (key, kern)
        attrs["_kernel"] = cached
    return cached[1](inputs)


@ir.register_forward("linear_relu")
def _eval_linear_relu(be, inputs, attrs):
    return be.linear_relu(inputs[0], inputs[1], inputs[2] if len(inputs) == 3 else None)


@ir.register_forward("mul_add")
def _eval_mul_add(be, inputs, attrs):
    return be.mul_add(inputs[0], inputs[1], inputs[2])


@ir.register_forward("add_relu")
def _eval_add_relu(be, inputs, attrs):
    return be.add_relu(inputs[0], inputs[1])


@ir.register_forward("batch_norm_relu")
def _eval_batch_norm_relu(be, inputs, attrs):
    xd = inputs[0]
    mean, inv_std = _bn_replay_stats(be, xd, attrs)
    gamma, beta = _bn_affine_inputs(inputs, attrs)
    return be.bn_normalize_relu(xd, mean, inv_std, gamma, beta, attrs["bshape"])[1]
