"""Reverse-mode automatic differentiation over numpy arrays.

This subpackage is the lowest layer of the reproduction: a small but complete
autograd engine that the neural-network layers in :mod:`repro.nn` are built on.
It provides a :class:`~repro.autograd.tensor.Tensor` type that records the
operations applied to it and can back-propagate gradients through the recorded
graph, plus the dense numerical kernels (im2col convolution, pooling, softmax
cross-entropy) in :mod:`repro.autograd.functional`.

The public surface is intentionally close to a small subset of PyTorch so that
the TBNet algorithms read like the paper's pseudo-code.
"""

from repro.autograd.tensor import Tensor, no_grad, is_grad_enabled
from repro.autograd import functional
from repro.autograd import ir
from repro.autograd import fusion
from repro.autograd.grad_check import numerical_gradient, check_gradients

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "ir",
    "fusion",
    "numerical_gradient",
    "check_gradients",
]
