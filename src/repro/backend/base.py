"""The ``ArrayBackend`` protocol: the ndarray surface the kernels sit on.

Every numerical operation performed by the autograd kernels
(:mod:`repro.autograd.functional`), the tensor elementwise ops
(:mod:`repro.autograd.tensor`) and the optimizer update rules
(:mod:`repro.nn.optim`) dispatches through the *active backend* — an object
implementing this protocol, resolved via :func:`repro.backend.get_backend`.

The surface has two tiers:

**Primitives** are the ~15 ndarray operations the kernels are actually built
from: GEMM-shaped contractions (``matmul`` / ``tensordot``), padding and
strided window views, reductions, transcendentals and the RNG draws.  A new
backend (an accelerator, a JIT such as numexpr, a remote device) must provide
all of them.

**Composites** are fusion points: whole elementwise chains (the affine map of
``linear``, the softmax family, batch-norm normalization and its input
adjoint, the dropout mask, the SGD/Adam update rules) exposed as single
methods so a backend may collapse them into fewer temporaries or a single
fused kernel.  :class:`~repro.backend.numpy_backend.NumpyBackend` implements
each composite as the plain, readable numpy expression — that is the
reference semantics alternate backends are validated against.
:class:`~repro.backend.fused.FusedNumpyBackend` overrides them with in-place
chains that allocate far fewer temporaries while keeping the same operation
order (and therefore near-bit-identical results).

Structural operations with no numerical content — ``reshape``, ``transpose``,
basic indexing — are *not* part of the surface: they follow numpy semantics
on every backend and stay as plain ndarray calls in the kernels.  Backends
therefore consume and produce numpy ndarrays (or ndarray-compatible duck
arrays): the kernels apply ordinary ndarray glue (broadcast adds, index
gathers) between composite calls, so a device backend must hand back arrays
that ndarray arithmetic accepts.

Backends must be stateless with respect to the arrays they are handed: a
method may mutate only buffers documented as owned by the callee (optimizer
state and parameters in ``sgd_update`` / ``adam_update``); gradients and
activations passed in are read-only.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

__all__ = ["ArrayBackend"]


@runtime_checkable
class ArrayBackend(Protocol):
    """Protocol for swappable ndarray backends (see module docstring)."""

    #: Registry name; also shown in benchmark records.
    name: str

    # ------------------------------------------------------------------ #
    # Primitives: allocation, arithmetic, contractions
    # ------------------------------------------------------------------ #
    def zeros(self, shape, dtype) -> np.ndarray: ...

    def add(self, a, b) -> np.ndarray: ...

    def multiply(self, a, b) -> np.ndarray: ...

    def divide(self, a, b) -> np.ndarray: ...

    def negative(self, a) -> np.ndarray: ...

    def power(self, a, exponent: float) -> np.ndarray: ...

    def matmul(self, a, b) -> np.ndarray: ...

    def tensordot(self, a, b, axes) -> np.ndarray: ...

    # ------------------------------------------------------------------ #
    # Primitives: transcendentals
    # ------------------------------------------------------------------ #
    def exp(self, x) -> np.ndarray: ...

    def log(self, x) -> np.ndarray: ...

    def sqrt(self, x) -> np.ndarray: ...

    def tanh(self, x) -> np.ndarray: ...

    # ------------------------------------------------------------------ #
    # Primitives: reductions and structure
    # ------------------------------------------------------------------ #
    def sum(self, x, axis=None, keepdims: bool = False) -> np.ndarray: ...

    def mean(self, x, axis=None, keepdims: bool = False) -> np.ndarray: ...

    def var(self, x, axis=None) -> np.ndarray: ...

    def amax(self, x, axis=None, keepdims: bool = False) -> np.ndarray: ...

    def argmax(self, x, axis: int) -> np.ndarray: ...

    def pad(self, x, pad_width, value: float = 0.0) -> np.ndarray: ...

    def sliding_windows(self, x, kh: int, kw: int, sh: int, sw: int) -> np.ndarray:
        """Zero-copy ``(N, C, OH, OW, kh, kw)`` window view of an NCHW array."""
        ...

    # ------------------------------------------------------------------ #
    # Primitives: random draws (always from an explicit Generator)
    # ------------------------------------------------------------------ #
    def random_uniform(self, rng: np.random.Generator, shape) -> np.ndarray: ...

    def standard_normal(self, rng: np.random.Generator, shape) -> np.ndarray: ...

    def uniform(
        self, rng: np.random.Generator, low: float, high: float, shape
    ) -> np.ndarray: ...

    # ------------------------------------------------------------------ #
    # Composites: elementwise chains a backend may fuse
    # ------------------------------------------------------------------ #
    def relu(self, x) -> np.ndarray: ...

    def sigmoid(self, x) -> np.ndarray: ...

    def linear(self, x, w, b: Optional[np.ndarray]) -> np.ndarray:
        """Affine map ``x @ w + b`` (``b`` may be ``None``)."""
        ...

    def softmax(self, z, axis: int) -> np.ndarray: ...

    def softmax_grad(self, g, probs, axis: int) -> np.ndarray:
        """VJP of softmax: ``probs * (g - sum(g * probs))`` as a fresh buffer."""
        ...

    def log_softmax(self, z, axis: int) -> np.ndarray: ...

    def log_softmax_grad(self, g, logp, axis: int) -> np.ndarray: ...

    def xent_grad(self, logp, rows, idx, scale) -> np.ndarray:
        """Cross-entropy logits gradient ``(softmax(logp) - onehot) * scale``.

        ``scale`` is an ndarray already cast to ``logp.dtype`` (a scalar array
        for mean/sum reductions, an ``(N, 1)`` column for ``reduction='none'``).
        """
        ...

    def bn_normalize(
        self, x, mean, inv_std, gamma, beta, bshape: Tuple[int, ...]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(xhat, out)`` where ``xhat = (x - mean) * inv_std`` and
        ``out = xhat * gamma + beta`` (either affine term may be ``None``).
        ``out`` must never alias ``xhat``: the caller saves ``xhat`` for the
        backward pass and hands ``out`` to downstream ops.
        """
        ...

    def bn_input_grad(self, dxhat, xhat, inv_std, axes, bshape) -> np.ndarray:
        """The three-term batch-norm input adjoint (batch-statistics mode)."""
        ...

    def dropout_mask(
        self, rng: np.random.Generator, shape, p: float, dtype
    ) -> np.ndarray:
        """Inverted-dropout mask: ``(uniform >= p) / (1 - p)`` in ``dtype``."""
        ...

    # ------------------------------------------------------------------ #
    # Composites: fused tape chains (repro.autograd.fusion)
    #
    # Each collapses a matched chain of tape nodes into one call.  The
    # reference implementations run the exact op sequence of the separate
    # kernels, so fused and unfused traces are bit-identical; a backend may
    # collapse the chain into fewer buffers (or one device kernel) as long
    # as it keeps that operation order.
    # ------------------------------------------------------------------ #
    def relu_grad(self, g, mask) -> np.ndarray:
        """VJP of relu: ``g * mask`` as a fresh buffer (``g`` is read-only)."""
        ...

    def linear_relu(self, x, w, b: Optional[np.ndarray]) -> np.ndarray:
        """Fused ``relu(x @ w + b)`` (``b`` may be ``None``)."""
        ...

    def mul_add(self, a, b, c) -> np.ndarray:
        """Fused elementwise ``a * b + c`` with numpy broadcasting."""
        ...

    def add_relu(self, a, b) -> np.ndarray:
        """Fused elementwise ``relu(a + b)`` with numpy broadcasting."""
        ...

    def bn_normalize_relu(
        self, x, mean, inv_std, gamma, beta, bshape: Tuple[int, ...]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fused batch-norm normalization + relu: ``bn_normalize`` whose
        ``out`` is rectified in addition.  Returns ``(xhat, out)`` with the
        same aliasing contract as :meth:`bn_normalize` (``out`` must never
        alias the saved ``xhat``).
        """
        ...

    # ------------------------------------------------------------------ #
    # Region codegen fusion point
    # ------------------------------------------------------------------ #
    #: Which region node kinds :meth:`compile_region` accepts, as a set of
    #: feature strings: ``"elementwise"`` (the plain REGION_OPS — implied by
    #: having the method at all), ``"reduce"`` (trailing-axes ``sum``/
    #: ``mean`` tails), ``"linear"`` (the GEMM head with fused epilogue).
    #: The fusion pass and LazyBackend consult this *before* absorbing a
    #: structured node into a region; a backend that omits the attribute is
    #: treated as elementwise-only, so adding node kinds upstream can never
    #: hand an older backend a program it does not understand.
    region_features: frozenset

    def compile_region(self, region, specialize: bool = False) -> "Callable":
        """Compile one :class:`repro.codegen.region.RegionIR` into a
        ``kernel(arrays, out=None) -> ndarray`` callable.

        This is the fusion pipeline's execution hook: the region pass
        (:mod:`repro.autograd.fusion`), the lazy backend
        (:mod:`repro.backend.lazy`) and the serving compiler all hand
        extracted regions to the active backend through it.  The returned
        kernel must be **bit-identical** to running the region's op
        sequence through this backend's own primitives — that equality is
        what lets fusion stay on by default.  Backends that cannot honor
        it simply omit the method and their nodes are never region-fused.

        ``specialize=True`` asks for kernels rendered against the region's
        concrete shapes (constant loop bounds); callers pass it only for
        shape-stable compiled artifacts (serving buckets).  Backends may
        ignore the hint — it changes performance, never values — and
        callers tolerate backends whose ``compile_region`` predates the
        keyword (a ``TypeError`` falls back to the positional call).
        """
        ...

    # ------------------------------------------------------------------ #
    # Composites: optimizer update rules (mutate p and state in place)
    # ------------------------------------------------------------------ #
    def sgd_update(
        self,
        p: np.ndarray,
        g: np.ndarray,
        v: Optional[np.ndarray],
        lr: float,
        momentum: float,
        weight_decay: float,
        nesterov: bool,
    ) -> None:
        """One SGD step.  Mutates ``p`` (and ``v`` when momentum is active,
        initialized to zeros by the caller) in place; must not mutate ``g``.
        """
        ...

    def adam_update(
        self,
        p: np.ndarray,
        g: np.ndarray,
        m: np.ndarray,
        v: np.ndarray,
        lr: float,
        beta1: float,
        beta2: float,
        eps: float,
        bc1: float,
        bc2: float,
        weight_decay: float,
    ) -> None:
        """One Adam step with precomputed bias corrections ``bc1``/``bc2``.
        Mutates ``p``, ``m`` and ``v`` in place; must not mutate ``g``.
        """
        ...
