"""Fused numpy backend: the reference kernels with temporaries collapsed.

Inherits every primitive from :class:`~repro.backend.numpy_backend.NumpyBackend`
and overrides the composite fusion points with in-place elementwise chains:
each chain allocates one or two buffers where the reference allocates four to
seven, and every later step reuses them via ``out=``.  Operation order is
kept identical to the reference wherever possible, so most kernels are
bit-identical; the few reassociated chains (the batch-norm input adjoint, the
final Adam step scaling) differ only in the last ulp and are covered by the
tolerance-based cross-backend equivalence suite.

This is the ROADMAP's op-fusion direction delivered as a backend: the fusion
lives *below* the tape, so the autograd graph is unchanged and every future
backend (accelerator, JIT) can make its own fusion decisions behind the same
surface.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.backend.numpy_backend import NumpyBackend

__all__ = ["FusedNumpyBackend"]


class FusedNumpyBackend(NumpyBackend):
    """In-place fused variant of the reference backend."""

    name = "fused"

    # ------------------------------------------------------------------ #
    # Elementwise chains
    # ------------------------------------------------------------------ #
    def sigmoid(self, x) -> np.ndarray:
        out = np.negative(x)
        np.exp(out, out=out)
        out += 1.0
        np.divide(1.0, out, out=out)
        return out

    def linear(self, x, w, b: Optional[np.ndarray]) -> np.ndarray:
        out = np.matmul(x, w)
        if b is not None:
            out += b  # fold the bias into the GEMM output buffer
        return out

    # ------------------------------------------------------------------ #
    # Softmax family
    # ------------------------------------------------------------------ #
    def softmax(self, z, axis: int) -> np.ndarray:
        out = z - z.max(axis=axis, keepdims=True)
        np.exp(out, out=out)
        out /= out.sum(axis=axis, keepdims=True)
        return out

    def softmax_grad(self, g, probs, axis: int) -> np.ndarray:
        gp = g * probs
        gp -= probs * gp.sum(axis=axis, keepdims=True)
        return gp

    def log_softmax(self, z, axis: int) -> np.ndarray:
        shifted = z - z.max(axis=axis, keepdims=True)
        e = np.exp(shifted)
        shifted -= np.log(e.sum(axis=axis, keepdims=True))
        return shifted

    def log_softmax_grad(self, g, logp, axis: int) -> np.ndarray:
        gx = np.exp(logp)
        gx *= g.sum(axis=axis, keepdims=True)
        np.subtract(g, gx, out=gx)
        return gx

    def xent_grad(self, logp, rows, idx, scale) -> np.ndarray:
        d = np.exp(logp)
        d[rows, idx] -= 1.0
        d *= scale
        return d

    # ------------------------------------------------------------------ #
    # Fused tape chains (same op order as the reference, in-place buffers)
    # ------------------------------------------------------------------ #
    def linear_relu(self, x, w, b: Optional[np.ndarray]) -> np.ndarray:
        out = self.linear(x, w, b)  # fresh GEMM buffer: rectify in place
        return np.maximum(out, 0.0, out=out)

    def mul_add(self, a, b, c) -> np.ndarray:
        out = np.multiply(a, b)
        if out.shape == np.broadcast_shapes(out.shape, np.shape(c)):
            out += c
            return out
        return np.add(out, c)  # c broadens the result: cannot add in place

    def add_relu(self, a, b) -> np.ndarray:
        out = np.add(a, b)
        return np.maximum(out, 0.0, out=out)

    def bn_normalize_relu(
        self, x, mean, inv_std, gamma, beta, bshape: Tuple[int, ...]
    ) -> Tuple[np.ndarray, np.ndarray]:
        xhat, out = self.bn_normalize(x, mean, inv_std, gamma, beta, bshape)
        # out never aliases the saved xhat (bn_normalize contract), so the
        # rectification can land in place.
        return xhat, np.maximum(out, 0.0, out=out)

    # ------------------------------------------------------------------ #
    # Batch norm
    # ------------------------------------------------------------------ #
    def bn_normalize(
        self, x, mean, inv_std, gamma, beta, bshape: Tuple[int, ...]
    ) -> Tuple[np.ndarray, np.ndarray]:
        xhat = x - mean.reshape(bshape)
        xhat *= inv_std.reshape(bshape)
        if gamma is not None:
            out = xhat * gamma.reshape(bshape)
        else:
            out = xhat.copy()  # out must not alias the saved xhat
        if beta is not None:
            out += beta.reshape(bshape)
        return xhat, out

    def bn_input_grad(self, dxhat, xhat, inv_std, axes, bshape) -> np.ndarray:
        mean_dxhat = dxhat.mean(axis=axes).reshape(bshape)
        t = dxhat * xhat
        mean_dxhat_xhat = t.mean(axis=axes).reshape(bshape)
        # Two owned buffers carry the whole three-term chain, in the exact
        # association of the reference ((dxhat - m1) - xhat*m2) * inv_std so
        # the result stays bit-identical.
        np.multiply(xhat, mean_dxhat_xhat, out=t)
        dx = dxhat - mean_dxhat
        dx -= t
        dx *= inv_std.reshape(bshape)
        return dx

    # ------------------------------------------------------------------ #
    # Optimizer update rules
    # ------------------------------------------------------------------ #
    def sgd_update(self, p, g, v, lr, momentum, weight_decay, nesterov) -> None:
        if weight_decay:
            eff = np.multiply(p, weight_decay)  # the single owned scratch
            eff += g
            owned = True
        else:
            eff, owned = g, False
        if momentum:
            v *= momentum
            v += eff
            if nesterov:
                nv = np.multiply(v, momentum)
                nv += eff
                eff, owned = nv, True
            else:
                eff, owned = v, False
        lr_t = np.asarray(lr, dtype=p.dtype)
        if owned:
            eff *= lr_t
            p -= eff
        else:
            p -= lr_t * eff  # grad / velocity are not ours to scale in place

    def adam_update(
        self, p, g, m, v, lr, beta1, beta2, eps, bc1, bc2, weight_decay
    ) -> None:
        if weight_decay:
            gw = np.multiply(p, weight_decay)
            gw += g
        else:
            gw = g
        m *= beta1
        scratch = np.multiply(gw, 1.0 - beta1)
        m += scratch
        v *= beta2
        np.multiply(gw, gw, out=scratch)
        scratch *= 1.0 - beta2
        v += scratch
        denom = np.divide(v, bc2, out=scratch)
        np.sqrt(denom, out=denom)
        denom += eps
        # (lr/bc1 * m) / denom in the reference's association (bit-identical),
        # with the product landing in a fresh buffer and the divide in place.
        step = np.asarray(lr / bc1, dtype=p.dtype) * m
        step /= denom
        p -= step
