"""LazyBackend: defer elementwise primitives into codegen regions.

The graph-IR fusion pass (:mod:`repro.autograd.fusion`) needs a recorded
tape to rewrite.  :class:`LazyBackend` delivers the same region fusion to
**eager** code without tracing: the elementwise primitives (``add`` /
``multiply`` / ``divide`` / ``negative`` / ``relu``) return a
:class:`LazyArray` — a node in a growing elementwise expression DAG —
instead of computing.  The chain keeps accumulating until something needs
concrete values, at which point the whole pending region is flushed through
:func:`repro.codegen.compile_region` as **one kernel** (compiled C when
available, the bit-equal numpy interpreter arm otherwise).

Forced points need no special-casing in the calling code:

- **matmul / conv / every other backend method** are inherited from
  :class:`~repro.backend.numpy_backend.NumpyBackend` unmodified; they run
  numpy functions or ndarray methods on their operands, and
  :class:`LazyArray` forces itself whenever numpy converts it
  (``__array__``) or an attribute/method is looked up on it.  ``sum`` and
  ``mean`` are the exception: when the reduced axes are a trailing
  contiguous run they *defer into the region* as reduction-tail nodes
  (the codegen reduce stages replay numpy's pairwise summation
  bit-for-bit), so a softmax-CE epilogue no longer forces the chain;
  other axis layouts force and run eagerly as before.
- **``.data`` reads** — indexing, ``float()``, comparisons, printing — all
  route through the same forcing protocol; :meth:`Tensor.numpy` swaps the
  concrete array back into the tensor.
- **``Tensor.backward``** pauses deferral for the whole thunk loop
  (:func:`set_deferral`), so gradient math runs exactly the eager op
  sequence and stays bit-identical to the numpy backend.

An op joins the pending region only when every operand is a same-dtype
float32/float64 ndarray (or lazy node); anything else — dtype promotion,
python scalars after numpy coerces oddly, object arrays — falls through to
the eager ufunc, so semantics never change, only batching.
"""

from __future__ import annotations

import contextlib
import threading
from typing import List, Optional, Tuple

import numpy as np

from repro.backend.numpy_backend import NumpyBackend
from repro.codegen import RegionIR, RegionInput, compile_region

__all__ = [
    "LazyArray",
    "LazyBackend",
    "deferral_enabled",
    "pause_deferral",
    "set_deferral",
]

#: Per-thread deferral state (default: deferring).  Thread-local because
#: ``Tensor.backward`` pauses deferral with save/restore around its thunk
#: loop: two concurrent backward passes on a process-wide flag would
#: restore each other's value mid-run, re-enabling deferral inside a
#: backward and handing ``_accumulate_fresh`` a LazyArray as ``.grad``.
_DEFER = threading.local()

#: Cap on ops per flushed region (mirrors the fusion pass): bounds the
#: generated-C size; an over-long chain forces its deepest operand and
#: continues from the concrete intermediate.
_MAX_CHAIN = 32

_F32 = np.dtype(np.float32)
_F64 = np.dtype(np.float64)

_UFUNC = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "div": np.divide,
}


def deferral_enabled() -> bool:
    """Whether lazy primitives defer (vs. compute eagerly) on this thread."""
    return getattr(_DEFER, "flag", True)


def set_deferral(flag: bool) -> bool:
    """Set this thread's deferral flag; returns the previous value."""
    previous = getattr(_DEFER, "flag", True)
    _DEFER.flag = bool(flag)
    return previous


@contextlib.contextmanager
def pause_deferral():
    """Scoped ``set_deferral(False)`` — eager semantics inside the block."""
    previous = set_deferral(False)
    try:
        yield
    finally:
        set_deferral(previous)


class LazyArray:
    """One node of a pending elementwise region.

    Carries shape/dtype metadata (computed at creation, so shape queries
    never force) plus the op and source operands.  ``_value`` caches the
    concrete array after the first flush; the source links are dropped at
    that point so the expression DAG is reclaimed promptly.
    """

    _repro_lazy = True

    __slots__ = ("op", "srcs", "shape", "dtype", "nops", "meta", "_value")

    def __init__(
        self,
        op: str,
        srcs: tuple,
        shape: Tuple[int, ...],
        dtype,
        meta: Optional[tuple] = None,
    ) -> None:
        self.op = op
        self.srcs = srcs
        self.shape = tuple(shape)
        self.dtype = dtype
        self.meta = meta  # (k, keepdims) for deferred sum/mean, else None
        self.nops = 1 + sum(
            s.nops for s in srcs if isinstance(s, LazyArray) and s._value is None
        )
        self._value = None

    # ---- metadata (never forces) ------------------------------------- #
    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    def __len__(self) -> int:
        if not self.shape:
            raise TypeError("len() of unsized object")
        return self.shape[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "forced" if self._value is not None else f"pending:{self.nops} ops"
        return f"LazyArray(op={self.op!r}, shape={self.shape}, {state})"

    # ---- forcing protocol --------------------------------------------- #
    def _force(self) -> np.ndarray:
        value = self._value
        if value is None:
            value = _flush(self)
            self._value = value
            self.srcs = ()
        return value

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        value = self._force()
        if dtype is not None and value.dtype != np.dtype(dtype):
            return value.astype(dtype)
        if copy:
            return value.copy()
        return value

    def __getattr__(self, name):
        # Everything not defined here (.sum(), .reshape(), .astype(), ...)
        # delegates to the concrete array — each is a flush point.
        return getattr(self._force(), name)

    def __getitem__(self, index):
        return self._force()[index]

    def __float__(self) -> float:
        return float(self._force())

    def __int__(self) -> int:
        return int(self._force())

    def __bool__(self) -> bool:
        return bool(self._force())

    def __iter__(self):
        return iter(self._force())

    # ---- eager arithmetic/comparisons (flush points) ------------------ #
    # Direct numpy-style math on .data outside the backend is rare (masks,
    # user inspection); forcing keeps its semantics exactly eager.
    def __add__(self, other):
        return np.add(self._force(), _concrete(other))

    def __radd__(self, other):
        return np.add(_concrete(other), self._force())

    def __sub__(self, other):
        return np.subtract(self._force(), _concrete(other))

    def __rsub__(self, other):
        return np.subtract(_concrete(other), self._force())

    def __mul__(self, other):
        return np.multiply(self._force(), _concrete(other))

    def __rmul__(self, other):
        return np.multiply(_concrete(other), self._force())

    def __truediv__(self, other):
        return np.divide(self._force(), _concrete(other))

    def __rtruediv__(self, other):
        return np.divide(_concrete(other), self._force())

    def __neg__(self):
        return np.negative(self._force())

    def __pow__(self, other):
        return np.power(self._force(), _concrete(other))

    def __gt__(self, other):
        return self._force() > _concrete(other)

    def __ge__(self, other):
        return self._force() >= _concrete(other)

    def __lt__(self, other):
        return self._force() < _concrete(other)

    def __le__(self, other):
        return self._force() <= _concrete(other)

    def __eq__(self, other):
        return self._force() == _concrete(other)

    def __ne__(self, other):
        return self._force() != _concrete(other)

    __hash__ = None


def _concrete(value):
    """The concrete array behind ``value`` (identity for non-lazy)."""
    if isinstance(value, LazyArray):
        return value._force()
    return value


def _flush(root: LazyArray) -> np.ndarray:
    """Run the pending region below ``root`` as one kernel."""
    # Post-order over the unforced DAG: children before parents, shared
    # nodes once (regions are DAG-capable — an op may reference one slot
    # twice).
    order: List[LazyArray] = []
    visited = set()
    stack = [(root, False)]
    while stack:
        node, ready = stack.pop()
        if ready:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for src in node.srcs:
            if isinstance(src, LazyArray) and src._value is None:
                stack.append((src, False))

    leaves: List[np.ndarray] = []
    leaf_slot = {}
    for node in order:
        for src in node.srcs:
            if isinstance(src, LazyArray) and src._value is None:
                continue
            arr = src._value if isinstance(src, LazyArray) else src
            if id(arr) not in leaf_slot:
                leaf_slot[id(arr)] = len(leaves)
                leaves.append(arr)

    n_ext = len(leaves)
    node_slot = {id(node): n_ext + j for j, node in enumerate(order)}
    ops = []
    for node in order:
        srcs = []
        for src in node.srcs:
            if isinstance(src, LazyArray) and src._value is None:
                srcs.append(node_slot[id(src)])
            else:
                arr = src._value if isinstance(src, LazyArray) else src
                srcs.append(leaf_slot[id(arr)])
        if node.meta is not None:
            ops.append((node.op, tuple(srcs), node.meta))
        else:
            ops.append((node.op, tuple(srcs)))

    region = RegionIR(
        [RegionInput(a.dtype, a.shape) for a in leaves],
        ops,
        root.shape,
        root.dtype,
    )
    return compile_region(region)(leaves)


def _operand(value) -> Optional[tuple]:
    """``(shape, dtype)`` if ``value`` may join a region, else ``None``."""
    if isinstance(value, LazyArray):
        return value.shape, value.dtype
    if isinstance(value, np.ndarray) and value.dtype in (_F32, _F64):
        return value.shape, value.dtype
    return None


class LazyBackend(NumpyBackend):
    """The numpy backend with elementwise primitives deferred into regions.

    Everything else — matmul, convolutions, reductions, softmax, batch
    norm, optimizer rules — is inherited and runs eagerly, forcing pending
    operands through the :class:`LazyArray` conversion protocol.  Results
    are bit-identical to ``NumpyBackend`` by the codegen contract.
    """

    name = "lazy"

    # ---- deferred elementwise primitives ------------------------------ #
    def _defer_binary(self, op: str, a, b):
        if deferral_enabled():
            ma, mb = _operand(a), _operand(b)
            if ma is not None and mb is not None and ma[1] == mb[1]:
                try:
                    shape = np.broadcast_shapes(ma[0], mb[0])
                except ValueError:
                    shape = None  # let the eager ufunc raise its own error
                if shape is not None:
                    a = _maybe_force_long_chain(a)
                    b = _maybe_force_long_chain(b)
                    return LazyArray(op, (a, b), shape, ma[1])
        return _UFUNC[op](_concrete(a), _concrete(b))

    def add(self, a, b):
        return self._defer_binary("add", a, b)

    def multiply(self, a, b):
        return self._defer_binary("mul", a, b)

    def divide(self, a, b):
        return self._defer_binary("div", a, b)

    def negative(self, a):
        if deferral_enabled():
            ma = _operand(a)
            if ma is not None:
                a = _maybe_force_long_chain(a)
                return LazyArray("neg", (a,), ma[0], ma[1])
        return np.negative(_concrete(a))

    def relu(self, x):
        if deferral_enabled():
            mx = _operand(x)
            if mx is not None:
                x = _maybe_force_long_chain(x)
                return LazyArray("relu", (x,), mx[0], mx[1])
        return np.maximum(_concrete(x), 0.0)

    # ---- deferred reduction tails ------------------------------------- #
    # sum/mean defer when the reduced axes form a trailing contiguous run —
    # the only layout the codegen reduce stages render (numpy's pairwise
    # summation over the rows of a C-contiguous view, which the C arm
    # replays bit-for-bit).  Any other axis set forces the operand and runs
    # the eager ndarray method, exactly as before this layer existed.
    def _defer_reduce(self, op: str, x, axis, keepdims: bool):
        if deferral_enabled():
            mx = _operand(x)
            if mx is not None:
                shape, dtype = mx
                k = _trailing_axes(len(shape), axis)
                if k is not None:
                    x = _maybe_force_long_chain(x)
                    kept = shape[: len(shape) - k]
                    out_shape = kept + (1,) * k if keepdims else kept
                    return LazyArray(op, (x,), out_shape, dtype,
                                     meta=(k, bool(keepdims)))
        x = _concrete(x)
        fn = x.sum if op == "sum" else x.mean
        return fn(axis=axis, keepdims=keepdims)

    def sum(self, x, axis=None, keepdims: bool = False):
        return self._defer_reduce("sum", x, axis, keepdims)

    def mean(self, x, axis=None, keepdims: bool = False):
        return self._defer_reduce("mean", x, axis, keepdims)


def _trailing_axes(ndim: int, axis) -> Optional[int]:
    """``k`` when ``axis`` names exactly the last ``k`` of ``ndim`` axes.

    ``None`` means the reduction cannot join a region (non-trailing axes,
    zero-rank operand, or an out-of-range axis the eager method should
    report with its own error).
    """
    if ndim == 0:
        return None
    if axis is None:
        return ndim
    axes = (axis,) if isinstance(axis, int) else tuple(axis)
    norm = set()
    for a in axes:
        if not isinstance(a, int) or not -ndim <= a < ndim:
            return None
        norm.add(a + ndim if a < 0 else a)
    k = len(norm)
    if norm == set(range(ndim - k, ndim)):
        return k
    return None


def _maybe_force_long_chain(value):
    if isinstance(value, LazyArray) and value._value is None and value.nops >= _MAX_CHAIN:
        value._force()
    return value
