"""Process-wide backend registry and the seeded global random generator.

The active backend is a single process-wide slot (like torch's default
device): :func:`set_backend` swaps it, :func:`use_backend` swaps it for the
duration of a ``with`` block and restores the previous backend even when the
block raises, and :func:`get_backend` is the cheap accessor every kernel
calls on its hot path.

Backends are registered by name; ``numpy`` (the plain reference) and
``fused`` (in-place, fewer temporaries) are built in.  The default at import
time is the ``numpy`` reference, overridable with the ``REPRO_BACKEND``
environment variable (the CI matrix runs the whole test suite under both).

This module also owns the **seeded global generator**: the stream that
``repro.nn.init.manual_seed`` resets and that every default random draw in
the stack (layer init, ``Tensor.randn``/``uniform``, the dropout mask) falls
back to when no explicit ``rng`` is passed.  It lives here, below
``repro.autograd``, so the kernels can reach it without a layering inversion.
"""

from __future__ import annotations

import contextlib
import os
import threading
from typing import Dict, Iterator, List, Optional, Union

import numpy as np

from repro.backend.base import ArrayBackend
from repro.backend.fused import FusedNumpyBackend
from repro.backend.lazy import LazyBackend
from repro.backend.numpy_backend import NumpyBackend

__all__ = [
    "available_backends",
    "default_rng",
    "get_backend",
    "get_rng_state",
    "manual_seed",
    "register_backend",
    "set_backend",
    "set_rng_state",
    "use_backend",
]

_REGISTRY: Dict[str, ArrayBackend] = {}
_registry_lock = threading.Lock()


def register_backend(backend: ArrayBackend, name: str = None, overwrite: bool = False) -> ArrayBackend:
    """Register ``backend`` under ``name`` (defaults to ``backend.name``).

    Re-registering an existing name raises unless ``overwrite=True``, so a
    typo cannot silently shadow the reference backend.
    """
    name = name if name is not None else backend.name
    with _registry_lock:
        if name in _REGISTRY and not overwrite:
            raise ValueError(
                f"backend {name!r} is already registered; pass overwrite=True to replace it"
            )
        _REGISTRY[name] = backend
    return backend


def available_backends() -> List[str]:
    """Names of all registered backends, sorted."""
    return sorted(_REGISTRY)


def get_backend() -> ArrayBackend:
    """The active backend every kernel dispatches through.

    The first call resolves the ``REPRO_BACKEND`` environment choice
    **lazily**, so a program may ``register_backend()`` a third-party backend
    after import and still select it via the environment variable; an unknown
    name raises only once something actually asks for a backend.
    """
    global _active
    if _active is None:
        choice = os.environ.get("REPRO_BACKEND", "").strip() or "numpy"
        try:
            _active = _REGISTRY[choice]
        except KeyError:
            raise RuntimeError(
                f"REPRO_BACKEND={choice!r} does not name a registered backend; "
                f"available: {available_backends()}"
            ) from None
    return _active


def set_backend(backend: Union[str, ArrayBackend]) -> ArrayBackend:
    """Make ``backend`` (a registered name or an instance) the active one."""
    global _active
    if isinstance(backend, str):
        try:
            backend = _REGISTRY[backend]
        except KeyError:
            raise KeyError(
                f"unknown backend {backend!r}; available: {available_backends()}"
            ) from None
    _active = backend
    return backend


@contextlib.contextmanager
def use_backend(backend: Union[str, ArrayBackend]) -> Iterator[ArrayBackend]:
    """Context manager: activate ``backend``, restoring the previous active
    backend on exit — including when the body raises."""
    previous = get_backend()
    active = set_backend(backend)
    try:
        yield active
    finally:
        set_backend(previous)


# --------------------------------------------------------------------------- #
# Seeded global generator
# --------------------------------------------------------------------------- #
_global_rng = np.random.default_rng()


def manual_seed(seed: int) -> np.random.Generator:
    """Reset the global generator used by every default random draw."""
    global _global_rng
    _global_rng = np.random.default_rng(int(seed))
    return _global_rng


def default_rng() -> np.random.Generator:
    """The current global generator (see :func:`manual_seed`)."""
    return _global_rng


def get_rng_state() -> dict:
    """A picklable snapshot of the global generator's state.

    :class:`~repro.serve.procpool.ProcServer` ships this to worker
    processes so seeded randomness carries across ``fork`` *and* ``spawn``
    start methods; :func:`set_rng_state` applies it on the other side.
    """
    return _global_rng.bit_generator.state


def set_rng_state(state: dict) -> np.random.Generator:
    """Install a state captured by :func:`get_rng_state` into a fresh
    global generator (the bit-generator class comes from the snapshot)."""
    global _global_rng
    bit_generator = getattr(np.random, state["bit_generator"])()
    bit_generator.state = state
    _global_rng = np.random.Generator(bit_generator)
    return _global_rng


# --------------------------------------------------------------------------- #
# Built-in backends; the default (numpy, or $REPRO_BACKEND) is resolved
# lazily by the first get_backend() call — see its docstring.
# --------------------------------------------------------------------------- #
register_backend(NumpyBackend())
register_backend(FusedNumpyBackend())
register_backend(LazyBackend())

_active: Optional[ArrayBackend] = None
