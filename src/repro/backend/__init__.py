"""Swappable ndarray backends under the autograd kernel surface.

Every numerical operation in the stack — the dense kernels in
:mod:`repro.autograd.functional`, the elementwise ops on
:class:`~repro.autograd.tensor.Tensor`, the optimizer update rules in
:mod:`repro.nn.optim` — dispatches through the *active backend*, an object
implementing the :class:`~repro.backend.base.ArrayBackend` protocol.  Three
backends are built in:

- ``numpy`` — :class:`~repro.backend.numpy_backend.NumpyBackend`, the plain
  readable reference.  Its results define the semantics of the stack and are
  bit-identical to the historical inline kernels; alternate backends are
  validated against it.
- ``fused`` — :class:`~repro.backend.fused.FusedNumpyBackend`, the same
  operations with elementwise chains collapsed into in-place updates on one
  or two buffers (the ROADMAP's op-fusion direction, delivered below the
  tape so the autograd graph is unchanged).
- ``lazy`` — :class:`~repro.backend.lazy.LazyBackend`, which defers the
  elementwise primitives into pending expression DAGs and flushes each one
  as a single codegen region kernel at forced points (contractions,
  reductions, ``.data`` reads).

Select a backend process-wide with :func:`set_backend`, temporarily with the
:func:`use_backend` context manager, or at startup with the
``REPRO_BACKEND`` environment variable.  Register new backends (an
accelerator, a JIT) with :func:`register_backend`.

The module also hosts the seeded global generator behind
``repro.nn.init.manual_seed`` (see :func:`manual_seed` / :func:`default_rng`).
"""

from repro.backend.base import ArrayBackend
from repro.backend.fused import FusedNumpyBackend
from repro.backend.lazy import LazyArray, LazyBackend, pause_deferral, set_deferral
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.registry import (
    available_backends,
    default_rng,
    get_backend,
    manual_seed,
    register_backend,
    set_backend,
    use_backend,
)

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "FusedNumpyBackend",
    "LazyArray",
    "LazyBackend",
    "available_backends",
    "default_rng",
    "get_backend",
    "manual_seed",
    "pause_deferral",
    "register_backend",
    "set_backend",
    "set_deferral",
    "use_backend",
]
