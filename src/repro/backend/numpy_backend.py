"""The reference numpy backend.

Every method is the plainest correct numpy expression of the operation, with
no in-place tricks: this backend defines the semantics that alternate
backends (including :class:`~repro.backend.fused.FusedNumpyBackend`) are
validated against in the cross-backend equivalence suite.  Operation *order*
matches the historical inline kernels, so results are bit-identical to the
pre-registry engine.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

__all__ = ["NumpyBackend"]


class NumpyBackend:
    """Plain-numpy reference implementation of the ``ArrayBackend`` protocol."""

    name = "numpy"

    # ------------------------------------------------------------------ #
    # Primitives
    # ------------------------------------------------------------------ #
    def zeros(self, shape, dtype) -> np.ndarray:
        return np.zeros(shape, dtype=dtype)

    def add(self, a, b) -> np.ndarray:
        return np.add(a, b)

    def multiply(self, a, b) -> np.ndarray:
        return np.multiply(a, b)

    def divide(self, a, b) -> np.ndarray:
        return np.divide(a, b)

    def negative(self, a) -> np.ndarray:
        return np.negative(a)

    def power(self, a, exponent: float) -> np.ndarray:
        return np.power(a, exponent)

    def matmul(self, a, b) -> np.ndarray:
        return np.matmul(a, b)

    def tensordot(self, a, b, axes) -> np.ndarray:
        return np.tensordot(a, b, axes=axes)

    def exp(self, x) -> np.ndarray:
        return np.exp(x)

    def log(self, x) -> np.ndarray:
        return np.log(x)

    def sqrt(self, x) -> np.ndarray:
        return np.sqrt(x)

    def tanh(self, x) -> np.ndarray:
        return np.tanh(x)

    # Reductions call the ndarray bound methods, not the np.* module
    # functions: the fromnumeric wrappers add a measurable per-call cost on
    # the tape hot path (~10% of a small MLP step), and the protocol already
    # guarantees ndarray (or duck-array) inputs.
    def sum(self, x, axis=None, keepdims: bool = False) -> np.ndarray:
        return x.sum(axis=axis, keepdims=keepdims)

    def mean(self, x, axis=None, keepdims: bool = False) -> np.ndarray:
        return x.mean(axis=axis, keepdims=keepdims)

    def var(self, x, axis=None) -> np.ndarray:
        return x.var(axis=axis)

    def amax(self, x, axis=None, keepdims: bool = False) -> np.ndarray:
        return x.max(axis=axis, keepdims=keepdims)

    def argmax(self, x, axis: int) -> np.ndarray:
        return x.argmax(axis=axis)

    def pad(self, x, pad_width, value: float = 0.0) -> np.ndarray:
        return np.pad(x, pad_width, mode="constant", constant_values=value)

    def sliding_windows(self, x, kh: int, kw: int, sh: int, sw: int) -> np.ndarray:
        windows = sliding_window_view(x, (kh, kw), axis=(2, 3))
        return windows[:, :, ::sh, ::sw]

    def random_uniform(self, rng: np.random.Generator, shape) -> np.ndarray:
        return rng.random(shape)

    def standard_normal(self, rng: np.random.Generator, shape) -> np.ndarray:
        return rng.standard_normal(shape)

    def uniform(self, rng: np.random.Generator, low, high, shape) -> np.ndarray:
        return rng.uniform(low, high, shape)

    # ------------------------------------------------------------------ #
    # Composites (plain reference expressions)
    # ------------------------------------------------------------------ #
    def relu(self, x) -> np.ndarray:
        return np.maximum(x, 0.0)

    def sigmoid(self, x) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-x))

    def linear(self, x, w, b: Optional[np.ndarray]) -> np.ndarray:
        # The matmul output is a fresh buffer we own, so folding the bias in
        # place is safe even for the reference (and matches the historical
        # inline kernel bit-for-bit).
        out = np.matmul(x, w)
        if b is not None:
            out += b
        return out

    def softmax(self, z, axis: int) -> np.ndarray:
        shifted = z - z.max(axis=axis, keepdims=True)
        e = np.exp(shifted)
        return e / e.sum(axis=axis, keepdims=True)

    def softmax_grad(self, g, probs, axis: int) -> np.ndarray:
        gp = g * probs
        return gp - probs * gp.sum(axis=axis, keepdims=True)

    def log_softmax(self, z, axis: int) -> np.ndarray:
        shifted = z - z.max(axis=axis, keepdims=True)
        lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        return shifted - lse

    def log_softmax_grad(self, g, logp, axis: int) -> np.ndarray:
        return g - np.exp(logp) * g.sum(axis=axis, keepdims=True)

    def xent_grad(self, logp, rows, idx, scale) -> np.ndarray:
        d = np.exp(logp)
        d[rows, idx] -= 1.0
        return d * scale

    def bn_normalize(
        self, x, mean, inv_std, gamma, beta, bshape: Tuple[int, ...]
    ) -> Tuple[np.ndarray, np.ndarray]:
        xhat = (x - mean.reshape(bshape)) * inv_std.reshape(bshape)
        out = xhat
        if gamma is not None:
            out = out * gamma.reshape(bshape)
        if beta is not None:
            out = out + beta.reshape(bshape)
        if out is xhat:
            out = xhat.copy()  # never hand the saved xhat buffer downstream
        return xhat, out

    def bn_input_grad(self, dxhat, xhat, inv_std, axes, bshape) -> np.ndarray:
        mean_dxhat = dxhat.mean(axis=axes).reshape(bshape)
        mean_dxhat_xhat = (dxhat * xhat).mean(axis=axes).reshape(bshape)
        return (dxhat - mean_dxhat - xhat * mean_dxhat_xhat) * inv_std.reshape(bshape)

    # ------------------------------------------------------------------ #
    # Fused tape chains (reference: the exact op sequence of the separate
    # kernels, so fused and unfused traces are bit-identical)
    # ------------------------------------------------------------------ #
    def relu_grad(self, g, mask) -> np.ndarray:
        # Exactly the multiply the standalone relu backward performs.
        return self.multiply(g, mask)

    def linear_relu(self, x, w, b: Optional[np.ndarray]) -> np.ndarray:
        return np.maximum(self.linear(x, w, b), 0.0)

    def mul_add(self, a, b, c) -> np.ndarray:
        return np.add(np.multiply(a, b), c)

    def add_relu(self, a, b) -> np.ndarray:
        return np.maximum(np.add(a, b), 0.0)

    def bn_normalize_relu(
        self, x, mean, inv_std, gamma, beta, bshape: Tuple[int, ...]
    ) -> Tuple[np.ndarray, np.ndarray]:
        xhat, out = self.bn_normalize(x, mean, inv_std, gamma, beta, bshape)
        return xhat, np.maximum(out, 0.0)

    # ------------------------------------------------------------------ #
    # Region codegen fusion point
    # ------------------------------------------------------------------ #

    #: Region node kinds this backend's ``compile_region`` accepts — the
    #: capability hook the fusion pass and LazyBackend consult before
    #: absorbing a node into a region.  ``"elementwise"`` covers the plain
    #: REGION_OPS; ``"reduce"`` adds trailing-axes sum/mean tails;
    #: ``"linear"`` adds the host-GEMM head with fused epilogue.  A backend
    #: without this attribute is treated as elementwise-only.
    region_features = frozenset({"elementwise", "reduce", "linear"})

    def compile_region(self, region, specialize: bool = False):
        # One compiled C loop per region (bit-equal to the ufunc sequence
        # by the codegen contract); the numpy-interpreter arm — which *is*
        # this backend's op sequence — when codegen is off or no compiler
        # exists.  FusedNumpyBackend inherits this: its elementwise
        # primitives are the same ufuncs.  ``specialize=True`` renders the
        # kernels with the region's concrete shapes as literal loop bounds
        # (serving sessions opt in per bucket).
        from repro.codegen import compile_region as _compile_region

        return _compile_region(region, specialize=specialize)

    def dropout_mask(self, rng: np.random.Generator, shape, p: float, dtype) -> np.ndarray:
        # Drawn through the random_uniform primitive so a backend that
        # overrides only the RNG (a device generator) inherits a consistent
        # mask for free.
        keep = self.random_uniform(rng, shape) >= p
        return keep.astype(dtype) / np.asarray(1.0 - p, dtype=dtype)

    # ------------------------------------------------------------------ #
    # Optimizer update rules
    # ------------------------------------------------------------------ #
    def sgd_update(self, p, g, v, lr, momentum, weight_decay, nesterov) -> None:
        if weight_decay:
            g = g + weight_decay * p  # fresh buffer; caller's grad untouched
        if momentum:
            v *= momentum
            v += g
            g = g + momentum * v if nesterov else v
        p -= np.asarray(lr, dtype=p.dtype) * g

    def adam_update(
        self, p, g, m, v, lr, beta1, beta2, eps, bc1, bc2, weight_decay
    ) -> None:
        if weight_decay:
            g = g + weight_decay * p
        m *= beta1
        m += (1.0 - beta1) * g
        v *= beta2
        v += (1.0 - beta2) * np.square(g)
        denom = np.sqrt(v / bc2)
        denom += eps
        p -= np.asarray(lr / bc1, dtype=p.dtype) * m / denom
