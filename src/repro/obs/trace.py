"""Request tracing: per-stage spans in a bounded ring, Chrome-trace export.

A :class:`Tracer` hands out monotonically increasing **trace ids** (one per
request) and records :class:`Span` objects — ``(trace_id, name, start, end,
thread, args)`` — into a bounded ring buffer, so a long-running server keeps
the most recent N spans with O(1) recording cost and no unbounded growth.

The serving front end records one span per request stage
(``queue_wait → coalesce → serve → scatter → resolve``; see
:mod:`repro.serve.frontend`), which makes a single request's life visible
end to end: how long it sat in the queue, which worker picked it up, how
many serve attempts (retries, bisection splits) it took, and when its
future resolved.

:meth:`Tracer.chrome_trace` exports the ring as Chrome ``trace_event`` JSON
(the ``{"traceEvents": [...]}`` object format): save it as ``trace.json``
— or scrape it live from the ``/traces.json`` HTTP route
(:mod:`repro.obs.http`) — and load it in ``chrome://tracing`` or
https://ui.perfetto.dev to see the spans on a per-thread timeline.

Timestamps are ``time.monotonic()`` seconds (the serving stack's clock);
the Chrome export converts to microseconds, which is what the trace-event
format expects.  Spans may be recorded from any thread: recording takes one
lock around a deque append.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

__all__ = ["Span", "Tracer"]


class Span:
    """One recorded stage of one trace: a closed ``[start, end]`` interval.

    ``start``/``end`` are ``time.monotonic()`` seconds; ``thread`` is the
    recording thread's name (the Chrome export lanes spans by thread);
    ``args`` carries small JSON-serializable details (attempt number, batch
    size, error class).
    """

    __slots__ = ("trace_id", "name", "start", "end", "thread", "args")

    def __init__(self, trace_id: int, name: str, start: float, end: float,
                 thread: str, args: Optional[dict] = None) -> None:
        self.trace_id = trace_id
        self.name = name
        self.start = start
        self.end = end
        self.thread = thread
        self.args = args or {}

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Span(trace={self.trace_id}, {self.name!r}, "
            f"{self.duration * 1e3:.3f} ms)"
        )


class Tracer:
    """A bounded ring of :class:`Span` records plus trace-id allocation.

    Parameters
    ----------
    capacity:
        Maximum retained spans; the ring keeps the most recent ones.  With
        ~5 spans per served request the default keeps the last ~800
        requests' worth.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        # The ring holds plain (trace_id, name, start, end, thread, args)
        # tuples — recording is on the serving hot path, so the Span
        # objects are only materialized at read time (:meth:`spans`).
        self._spans: deque = deque(maxlen=self.capacity)
        self._ids = itertools.count(1)

    def new_trace(self) -> int:
        """Allocate the next trace id (thread-safe, monotonically rising)."""
        return next(self._ids)

    def record(self, trace_id: int, name: str, start: float, end: float,
               **args) -> None:
        """Record one finished span with explicit timestamps.

        The explicit-timestamp form is what the server uses: a stage's start
        (e.g. submit time) and end (e.g. collection time) are observed on
        different threads, so a context manager cannot bracket it.
        """
        entry = (trace_id, name, start, end,
                 threading.current_thread().name, args or None)
        lock = self._lock
        lock.acquire()
        try:
            self._spans.append(entry)
        finally:
            lock.release()

    def record_many(
        self, entries: List[Tuple[int, str, float, float, Optional[dict]]]
    ) -> None:
        """Batch-record ``(trace_id, name, start, end, args)`` tuples.

        One thread-name lookup and one lock acquisition for the whole
        batch — the server uses this for the per-request span fan-out of a
        coalesced batch, where per-span :meth:`record` calls would pay the
        lock N times on the hot path.
        """
        thread = threading.current_thread().name
        full = [(tid, name, start, end, thread, args)
                for tid, name, start, end, args in entries]
        lock = self._lock
        lock.acquire()
        try:
            self._spans.extend(full)
        finally:
            lock.release()

    @contextmanager
    def span(self, trace_id: int, name: str, **args):
        """Context manager recording the block's wall time as one span."""
        start = time.monotonic()
        try:
            yield
        finally:
            self.record(trace_id, name, start, time.monotonic(), **args)

    def spans(self, trace_id: Optional[int] = None) -> List[Span]:
        """Snapshot of retained spans, oldest first; optionally one trace's."""
        with self._lock:
            snapshot = list(self._spans)
        if trace_id is not None:
            snapshot = [e for e in snapshot if e[0] == trace_id]
        return [Span(*e) for e in snapshot]

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def chrome_trace(self, pid: int = 1) -> Dict:
        """The retained spans as a Chrome ``trace_event`` JSON object.

        Complete (``"ph": "X"``) events with microsecond timestamps, laned
        by recording thread; each event's ``args`` carries the trace id so
        chrome://tracing's search finds every stage of one request.
        """
        events = []
        for span in self.spans():
            args = dict(span.args)
            args["trace_id"] = span.trace_id
            events.append({
                "name": span.name,
                "cat": "request",
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": max(0.0, span.duration) * 1e6,
                "pid": pid,
                "tid": span.thread,
                "args": args,
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}
