"""The observability HTTP edge: ``/metrics``, ``/health``, ``/ready``,
``/traces.json`` over a stdlib ``http.server`` thread.

:class:`ObsHTTPServer` binds a :class:`~repro.obs.metrics.Registry`, an
optional :class:`~repro.obs.trace.Tracer` and a pair of probe callbacks to
four routes:

- ``GET /metrics`` — the registry in Prometheus text exposition format
  (``text/plain; version=0.0.4``), ready for a Prometheus scrape job or a
  plain ``curl``;
- ``GET /health`` — liveness: always ``200`` with the ``health_fn()``
  snapshot as JSON (the process answered, so it is alive; the body says how
  well);
- ``GET /ready`` — readiness: ``200`` when ``ready_fn()`` is truthy,
  ``503`` otherwise, with ``{"ready": bool}`` JSON either way — the shape
  load balancers and rolling deploys expect;
- ``GET /traces.json`` — the tracer's ring as Chrome ``trace_event`` JSON
  (load it in ``chrome://tracing``); ``404`` when no tracer is attached.

The server is a ``ThreadingHTTPServer`` running ``serve_forever`` on a
daemon thread: scrapes never touch the serving hot path beyond the
registry's per-metric locks, and a wedged scrape cannot wedge the process.
Bind is loopback by default; ``port=0`` asks the OS for a free port (read
it back from :attr:`ObsHTTPServer.port`).

Wiring it to a live :class:`repro.serve.Server` is one call —
``server.serve_http()`` — which maps the probes to ``Server.health`` /
``Server.ready`` and shuts the edge down with the server.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

from repro.obs.metrics import Registry
from repro.obs.trace import Tracer

__all__ = ["ObsHTTPServer"]

#: The Prometheus text exposition content type.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    # The edge is an ops surface: keep request logging off the server's
    # stdout/stderr (scrapes arrive every few seconds, forever).
    def log_message(self, format, *args):  # noqa: A002 - BaseHTTPRequestHandler API
        pass

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload) -> None:
        self._send(status, json.dumps(payload).encode("utf-8"),
                   "application/json; charset=utf-8")

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        edge: "ObsHTTPServer" = self.server.edge  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                self._send(200, edge.registry.render().encode("utf-8"),
                           METRICS_CONTENT_TYPE)
            elif path == "/health":
                payload = edge.health_fn() if edge.health_fn is not None else {}
                self._send_json(200, payload)
            elif path == "/ready":
                ready = bool(edge.ready_fn()) if edge.ready_fn is not None else True
                self._send_json(200 if ready else 503, {"ready": ready})
            elif path == "/traces.json":
                if edge.tracer is None:
                    self._send_json(404, {"error": "no tracer attached"})
                else:
                    self._send_json(200, edge.tracer.chrome_trace())
            else:
                self._send_json(404, {
                    "error": f"unknown path {path!r}",
                    "routes": ["/metrics", "/health", "/ready", "/traces.json"],
                })
        except Exception as exc:  # a broken probe must not kill the edge
            try:
                self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
            except OSError:
                pass  # client went away mid-error; nothing left to tell it


class ObsHTTPServer:
    """A daemon-thread HTTP edge over one registry/tracer/probe set.

    Parameters
    ----------
    registry:
        The :class:`~repro.obs.metrics.Registry` behind ``/metrics``
        (default: the process-wide one).
    tracer:
        Optional :class:`~repro.obs.trace.Tracer` behind ``/traces.json``.
    health_fn / ready_fn:
        Probe callbacks: ``health_fn() -> dict`` (served as JSON with 200)
        and ``ready_fn() -> bool`` (200/503).  Both optional.
    host / port:
        Bind address; loopback and an OS-assigned free port by default.

    Use :meth:`start`/:meth:`stop` explicitly or as a context manager.
    """

    def __init__(
        self,
        registry: Optional[Registry] = None,
        tracer: Optional[Tracer] = None,
        health_fn: Optional[Callable[[], dict]] = None,
        ready_fn: Optional[Callable[[], bool]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        if registry is None:
            from repro.obs.metrics import get_registry

            registry = get_registry()
        self.registry = registry
        self.tracer = tracer
        self.health_fn = health_fn
        self.ready_fn = ready_fn
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.edge = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the OS-assigned one)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ObsHTTPServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-obs-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the edge down and release the socket (idempotent)."""
        thread = self._thread
        if thread is not None:
            self._thread = None
            self._httpd.shutdown()
            thread.join(timeout=5.0)
        self._httpd.server_close()

    def __enter__(self) -> "ObsHTTPServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
