"""Metrics core: thread-safe Counter/Gauge/Histogram in a Registry with
Prometheus text exposition.

The serving stack (and anything else in the process) instruments itself by
creating metrics in a :class:`Registry` and bumping them on the hot path:

- :class:`Counter` — a monotonically increasing total (``inc()``);
- :class:`Gauge` — a point-in-time value (``set()`` / ``inc()`` / ``dec()``),
  or a *callback gauge* (``set_function``) whose value is computed at scrape
  time — the right shape for queue depths and liveness counts, which would
  otherwise need a write on every queue operation;
- :class:`Histogram` — fixed-bucket distribution (``observe()``), with
  log-spaced latency buckets by default (:data:`DEFAULT_LATENCY_BUCKETS_MS`,
  a 1-2-5 series from 0.1 ms to 10 s) plus the implicit ``+Inf`` bucket,
  running sum and count, and a bucket-interpolated :meth:`Histogram.quantile`
  estimate.

Metrics are **labeled**: ``registry.counter(name, help, labelnames=(...))``
returns a :class:`MetricFamily`; ``family.labels(k=v, ...)`` returns the
child for one label combination (created on first use, cached after — hold
the child and call ``inc()`` on it, the hot path is one lock + one float
add).  A family declared without label names returns its single child
directly, so the common unlabeled case reads ``registry.counter(...).inc()``.

:func:`Registry.render` produces the Prometheus text exposition format
(``# HELP`` / ``# TYPE`` headers, ``name{label="value"} value`` samples,
``_bucket``/``_sum``/``_count`` histogram series with cumulative ``le``
buckets), deterministically ordered so it can be golden-tested and served
from the ``/metrics`` HTTP route (:mod:`repro.obs.http`).

A process-wide default registry is available via :func:`get_registry`;
subsystems that want isolation (each :class:`repro.serve.Server` by default)
create their own.  :data:`NULL_REGISTRY` is a no-op implementation of the
same surface: every metric it hands out swallows writes and reads 0 —
pass it where instrumentation must cost nothing (overhead benchmarks).

Everything here is plain threading + floats: no numpy on the hot path, no
external dependencies.
"""

from __future__ import annotations

import bisect
import re
import threading
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "NULL_REGISTRY",
    "NullRegistry",
    "Registry",
    "get_registry",
]

#: Log-spaced (1-2-5 series) latency buckets in milliseconds, 0.1 ms – 10 s.
#: Shared by every latency histogram in the stack so dashboards line up.
DEFAULT_LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0,
    100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0,
)

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _format_value(value: float) -> str:
    """Prometheus sample value: integral floats render without the ``.0``."""
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labelnames: Sequence[str], labelvalues: Sequence[str],
                   extra: Tuple[str, str] = ()) -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, labelvalues)
    ]
    if extra:
        pairs.append(f'{extra[0]}="{_escape_label_value(extra[1])}"')
    return "{" + ",".join(pairs) + "}" if pairs else ""


class Counter:
    """A monotonically increasing total.  Thread-safe; negative increments
    raise (a counter that can go down is a :class:`Gauge`)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; inc({amount}) is negative")
        # Hot path: explicit acquire/release is measurably cheaper than the
        # `with` statement's context-manager machinery.
        lock = self._lock
        lock.acquire()
        try:
            self._value += amount
        finally:
            lock.release()

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _samples(self, name, labelnames, labelvalues):
        yield name, _render_labels(labelnames, labelvalues), self.value


class Gauge:
    """A value that goes up and down — or, with :meth:`set_function`, a
    callback evaluated at scrape time (queue depth, live worker count)."""

    __slots__ = ("_lock", "_value", "_fn")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    def set_function(self, fn: Callable[[], float]) -> None:
        """Make this gauge read ``fn()`` at scrape time instead of a stored
        value.  The callback must be cheap and thread-safe."""
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        with self._lock:
            fn = self._fn
            if fn is None:
                return self._value
        return float(fn())

    def _samples(self, name, labelnames, labelvalues):
        yield name, _render_labels(labelnames, labelvalues), self.value


class Histogram:
    """Fixed-bucket distribution with cumulative Prometheus exposition.

    ``observe(v)`` is one lock, one bisect and two float adds; bucket edges
    are fixed at construction (default :data:`DEFAULT_LATENCY_BUCKETS_MS`).
    The implicit ``+Inf`` bucket catches everything above the last edge.
    """

    __slots__ = ("_lock", "_uppers", "_counts", "_sum", "_count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS) -> None:
        uppers = tuple(sorted(float(b) for b in buckets))
        if not uppers:
            raise ValueError("a histogram needs at least one bucket edge")
        if len(set(uppers)) != len(uppers):
            raise ValueError(f"duplicate bucket edges: {uppers}")
        self._lock = threading.Lock()
        self._uppers = uppers
        # One slot per finite edge plus the +Inf overflow slot.
        self._counts = [0] * (len(uppers) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        idx = bisect.bisect_left(self._uppers, value)
        lock = self._lock
        lock.acquire()
        try:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1
        finally:
            lock.release()

    def observe_many(self, values) -> None:
        """Record a batch of observations under one lock acquisition.

        The serving front end uses this for the per-request latency fan-out
        of a coalesced batch, where per-value :meth:`observe` calls would
        pay the lock once per request on the hot path.  Singleton batches
        (a request served alone) delegate to :meth:`observe`, which is
        cheaper than the batch plumbing for one value.
        """
        if len(values) == 1:
            self.observe(values[0])
            return
        bisect_left = bisect.bisect_left
        uppers = self._uppers
        idxs = [bisect_left(uppers, v) for v in values]
        total = sum(values)
        lock = self._lock
        lock.acquire()
        try:
            counts = self._counts
            for idx in idxs:
                counts[idx] += 1
            self._sum += total
            self._count += len(idxs)
        finally:
            lock.release()

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def buckets(self) -> Dict[float, int]:
        """Cumulative counts keyed by upper edge (``inf`` for the overflow)."""
        with self._lock:
            counts = list(self._counts)
        out: Dict[float, int] = {}
        running = 0
        for upper, n in zip(self._uppers + (float("inf"),), counts):
            running += n
            out[upper] = running
        return out

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (``0 <= q <= 1``).

        Linear interpolation inside the bucket that crosses the target rank;
        observations in the ``+Inf`` bucket resolve to the last finite edge
        (the estimate saturates, it does not invent a tail).  Returns 0.0
        for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if total == 0:
            return 0.0
        target = q * total
        running = 0.0
        lower = 0.0
        for upper, n in zip(self._uppers, counts):
            if running + n >= target and n > 0:
                frac = (target - running) / n
                return lower + (upper - lower) * min(1.0, max(0.0, frac))
            running += n
            lower = upper
        return self._uppers[-1]

    def _samples(self, name, labelnames, labelvalues):
        with self._lock:
            counts = list(self._counts)
            total_sum, total_count = self._sum, self._count
        running = 0
        for upper, n in zip(self._uppers, counts):
            running += n
            labels = _render_labels(labelnames, labelvalues,
                                    extra=("le", _format_value(upper)))
            yield f"{name}_bucket", labels, running
        labels = _render_labels(labelnames, labelvalues, extra=("le", "+Inf"))
        yield f"{name}_bucket", labels, total_count
        yield f"{name}_sum", _render_labels(labelnames, labelvalues), total_sum
        yield f"{name}_count", _render_labels(labelnames, labelvalues), total_count


_CHILD_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """All children of one metric name: the unit of registration/exposition.

    Created through :meth:`Registry.counter` / :meth:`Registry.gauge` /
    :meth:`Registry.histogram`, never directly.  :meth:`labels` returns the
    child for one combination of label values (cached); hold the child on
    hot paths — the lookup takes the family lock.
    """

    __slots__ = ("name", "help", "type", "labelnames", "_kwargs",
                 "_lock", "_children")

    def __init__(self, name: str, help_text: str, type_: str,
                 labelnames: Tuple[str, ...], **kwargs) -> None:
        self.name = name
        self.help = help_text
        self.type = type_
        self.labelnames = labelnames
        self._kwargs = kwargs
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}

    def labels(self, **labelvalues) -> object:
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = _CHILD_TYPES[self.type](**self._kwargs)
                self._children[key] = child
        return child

    def collect(self) -> List[Tuple[Tuple[str, ...], object]]:
        """Snapshot of ``(labelvalues, child)`` pairs, label-sorted."""
        with self._lock:
            return sorted(self._children.items())

    def render(self) -> str:
        lines = [
            f"# HELP {self.name} {_escape_help(self.help)}",
            f"# TYPE {self.name} {self.type}",
        ]
        for labelvalues, child in self.collect():
            for sample_name, labels, value in child._samples(
                self.name, self.labelnames, labelvalues
            ):
                lines.append(f"{sample_name}{labels} {_format_value(value)}")
        return "\n".join(lines)


class Registry:
    """A namespace of metric families with text exposition.

    ``counter``/``gauge``/``histogram`` are **get-or-create**: asking twice
    for the same name returns the same family (so every worker replica and
    pool can register its series idempotently), while re-declaring a name
    with a different type or label set raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}

    def _get_or_create(self, name: str, help_text: str, type_: str,
                       labelnames: Sequence[str], **kwargs):
        if not _METRIC_NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        labelnames = tuple(labelnames)
        for label in labelnames:
            if not _LABEL_NAME_RE.match(label) or label.startswith("__"):
                raise ValueError(f"invalid label name {label!r} on {name}")
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, help_text, type_, labelnames, **kwargs)
                self._families[name] = family
            elif family.type != type_ or family.labelnames != labelnames:
                raise ValueError(
                    f"metric {name!r} already registered as {family.type} "
                    f"with labels {family.labelnames}; cannot re-register as "
                    f"{type_} with labels {labelnames}"
                )
        # The unlabeled common case skips the .labels() hop entirely.
        return family if labelnames else family.labels()

    def counter(self, name: str, help_text: str = "",
                labelnames: Sequence[str] = ()):
        """A :class:`Counter` (no labels) or its family (with labels)."""
        return self._get_or_create(name, help_text, "counter", labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: Sequence[str] = ()):
        """A :class:`Gauge` (no labels) or its family (with labels)."""
        return self._get_or_create(name, help_text, "gauge", labelnames)

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS):
        """A :class:`Histogram` (no labels) or its family (with labels)."""
        return self._get_or_create(
            name, help_text, "histogram", labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[MetricFamily]:
        """The family registered under ``name``, or ``None``."""
        with self._lock:
            return self._families.get(name)

    def families(self) -> List[MetricFamily]:
        """Name-sorted snapshot of every registered family."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def render(self) -> str:
        """The whole registry in Prometheus text exposition format.

        Families appear name-sorted, children label-sorted, so the output is
        deterministic for a given set of values (golden-testable) and every
        scrape is a consistent per-metric snapshot.
        """
        blocks = [family.render() for family in self.families()]
        return "\n".join(blocks) + ("\n" if blocks else "")


# --------------------------------------------------------------------------- #
# The null implementation: same surface, zero cost, reads 0.
# --------------------------------------------------------------------------- #
class _NullMetric:
    """Acts as counter, gauge, histogram, and family all at once: every
    write is a no-op, every read is 0, ``labels()`` returns itself."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None: pass
    def dec(self, amount: float = 1.0) -> None: pass
    def set(self, value: float) -> None: pass
    def set_function(self, fn) -> None: pass
    def observe(self, value: float) -> None: pass
    def observe_many(self, values) -> None: pass
    def labels(self, **labelvalues) -> "_NullMetric": return self
    def quantile(self, q: float) -> float: return 0.0
    def buckets(self) -> Dict[float, int]: return {}
    def collect(self): return []

    @property
    def value(self) -> float: return 0.0
    @property
    def count(self) -> int: return 0
    @property
    def sum(self) -> float: return 0.0


_NULL_METRIC = _NullMetric()


class NullRegistry:
    """A :class:`Registry` stand-in whose metrics cost nothing and read 0.

    Pass :data:`NULL_REGISTRY` where instrumentation must be off — e.g. the
    observability-overhead benchmark's uninstrumented arm — without forking
    any code path: the hot-path ``inc()``/``observe()`` calls still happen,
    they just hit empty methods.
    """

    def counter(self, name, help_text="", labelnames=()): return _NULL_METRIC
    def gauge(self, name, help_text="", labelnames=()): return _NULL_METRIC
    def histogram(self, name, help_text="", labelnames=(), buckets=()): return _NULL_METRIC
    def get(self, name): return None
    def families(self): return []
    def render(self) -> str: return ""


#: Shared no-op registry instance.
NULL_REGISTRY = NullRegistry()

#: The process-wide default registry.
_DEFAULT = Registry()


def get_registry() -> Registry:
    """The process-wide default :class:`Registry`.

    Subsystems that want isolated scrape output (each
    :class:`repro.serve.Server` by default) create their own ``Registry``
    instead; pass this one in to aggregate several servers into a single
    ``/metrics`` page.
    """
    return _DEFAULT
