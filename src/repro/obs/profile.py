"""Op-level profiler: per-op time/call tables for compiled serving steps and
the autograd backward loop.

The engine's per-op costs — the graph-IR node overhead, whether a fusion
pattern actually pays, which compiled step dominates a served batch — are
invisible to end-to-end timing.  This module gives them a first-class
measurement hook with a strict contract: **profiling never changes
results** (the hooks only time existing calls, bit-for-bit identical
outputs) and costs nothing when off (one ``is None`` check per
``backward()`` / ``session.run()``, not per op).

Two ways to turn it on:

- ``REPRO_PROFILE=1`` in the environment installs a process-wide
  :class:`Profiler` at import and prints its table to stderr at interpreter
  exit — zero code changes to profile a script;
- :func:`using_profiler` scopes a profiler to a block::

      from repro.obs import profile
      with profile.using_profiler() as prof:
          session.run(images, context)
          loss.backward()
      print(prof.table())

Instrumented paths (each records ``<path>:<op>`` so the same op is
distinguishable per context):

- ``serve:<op>`` — every compiled step replayed by
  :meth:`repro.serve.session.InferenceSession.run`;
- ``backward:<op>`` — every backward thunk run by
  :meth:`repro.autograd.tensor.Tensor.backward`.

The active profiler is process-global (like the fusion toggle): spans from
worker threads all land in one table, aggregation is lock-protected.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Profiler",
    "active_profiler",
    "disable_profiler",
    "enable_profiler",
    "using_profiler",
]


class Profiler:
    """Aggregates per-op call counts and total wall time (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # op -> [calls, total_seconds]
        self._records: Dict[str, List[float]] = {}

    def record(self, op: str, seconds: float) -> None:
        """Add one timed call of ``op`` (called from the instrumented loops)."""
        with self._lock:
            entry = self._records.get(op)
            if entry is None:
                self._records[op] = [1, seconds]
            else:
                entry[0] += 1
                entry[1] += seconds

    @contextmanager
    def timed(self, op: str) -> Iterator[None]:
        """Context manager timing one block as one call of ``op``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(op, time.perf_counter() - start)

    def reset(self) -> None:
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Per-op summary: ``{op: {calls, total_ms, mean_us, share}}``.

        ``share`` is the op's fraction of the total recorded time (so a
        table sorted by it reads as a flame-graph summary).
        """
        with self._lock:
            snapshot = {op: (entry[0], entry[1]) for op, entry in self._records.items()}
        grand_total = sum(total for _, total in snapshot.values()) or 1.0
        return {
            op: {
                "calls": float(calls),
                "total_ms": total * 1e3,
                "mean_us": (total / calls) * 1e6 if calls else 0.0,
                "share": total / grand_total,
            }
            for op, (calls, total) in snapshot.items()
        }

    def table(self, sort_by: str = "total_ms", limit: Optional[int] = None) -> str:
        """A fixed-width per-op table, heaviest first.

        ``sort_by`` is any :meth:`stats` column (``total_ms`` default,
        ``calls``, ``mean_us``, ``share``); ``limit`` truncates the rows.
        """
        stats = self.stats()
        if not stats:
            return "(no ops recorded)"
        if sort_by not in ("calls", "total_ms", "mean_us", "share"):
            raise ValueError(f"unknown sort column {sort_by!r}")
        rows: List[Tuple[str, Dict[str, float]]] = sorted(
            stats.items(), key=lambda item: item[1][sort_by], reverse=True
        )
        if limit is not None:
            rows = rows[:limit]
        width = max(len("op"), max(len(op) for op, _ in rows))
        lines = [
            f"{'op':<{width}}  {'calls':>8}  {'total_ms':>10}  {'mean_us':>10}  {'share':>6}",
            "-" * (width + 42),
        ]
        for op, row in rows:
            lines.append(
                f"{op:<{width}}  {int(row['calls']):>8}  {row['total_ms']:>10.3f}  "
                f"{row['mean_us']:>10.1f}  {row['share']:>5.1%}"
            )
        return "\n".join(lines)


# --------------------------------------------------------------------------- #
# The process-global active profiler (None = profiling off, the hot default).
# --------------------------------------------------------------------------- #
_ACTIVE: Optional[Profiler] = None
_LOCK = threading.Lock()


def active_profiler() -> Optional[Profiler]:
    """The currently active :class:`Profiler`, or ``None`` when off.

    The instrumented loops call this once per ``run()``/``backward()`` and
    take the untimed fast path on ``None`` — keep it trivial.
    """
    return _ACTIVE


def enable_profiler(profiler: Optional[Profiler] = None) -> Profiler:
    """Install ``profiler`` (or a fresh one) as the process-wide profiler."""
    global _ACTIVE
    with _LOCK:
        _ACTIVE = profiler if profiler is not None else Profiler()
        return _ACTIVE


def disable_profiler() -> None:
    """Deactivate profiling (the instrumented loops revert to fast paths)."""
    global _ACTIVE
    with _LOCK:
        _ACTIVE = None


@contextmanager
def using_profiler(profiler: Optional[Profiler] = None) -> Iterator[Profiler]:
    """Scope a profiler to a block; restores the previous one on exit."""
    global _ACTIVE
    with _LOCK:
        previous = _ACTIVE
        prof = profiler if profiler is not None else Profiler()
        _ACTIVE = prof
    try:
        yield prof
    finally:
        with _LOCK:
            _ACTIVE = previous


def _env_enabled() -> bool:
    return os.environ.get("REPRO_PROFILE", "").strip().lower() in (
        "1", "true", "yes", "on",
    )


if _env_enabled():  # pragma: no cover - exercised via subprocess in tests
    enable_profiler()

    def _report_at_exit() -> None:
        import sys

        prof = active_profiler()
        if prof is not None and len(prof):
            print("\n[REPRO_PROFILE] per-op profile:", file=sys.stderr)
            print(prof.table(), file=sys.stderr)

    import atexit

    atexit.register(_report_at_exit)
