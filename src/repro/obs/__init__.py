"""First-class observability: metrics, request tracing, op profiling, and
the Prometheus-style HTTP edge.

Four standalone pieces (each usable alone, none imports the rest of the
stack above :mod:`repro.backend`):

- :mod:`repro.obs.metrics` — thread-safe :class:`Counter` / :class:`Gauge`
  / :class:`Histogram` (log-spaced latency buckets, labeled series) in a
  :class:`Registry` with Prometheus text exposition;
- :mod:`repro.obs.trace` — per-request stage spans in a bounded ring
  (:class:`Tracer`), exportable as Chrome ``trace_event`` JSON for
  ``chrome://tracing``;
- :mod:`repro.obs.profile` — the op-level profiler (``REPRO_PROFILE=1`` or
  :func:`using_profiler`) hooked into compiled serving steps and the
  autograd backward loop; timing only, bit-identical results;
- :mod:`repro.obs.http` — :class:`ObsHTTPServer`, a stdlib HTTP thread
  serving ``/metrics``, ``/health``, ``/ready`` and ``/traces.json``.

The serving stack emits through this package: every
:class:`repro.serve.Server` owns a registry + tracer (see the metric
catalogue below), ``server.serve_http()`` exposes them, and
``Server.stats()`` remains the in-process compatibility snapshot of the
same series.

Metric catalogue (every series the serving stack exports)
---------------------------------------------------------
All serving metrics carry a ``server`` label (``srv0``, ``srv1``, ... in
creation order) so multiple servers can share one registry, and a ``mode``
label (``thread`` for :class:`~repro.serve.frontend.Server`, ``process``
for :class:`~repro.serve.procpool.ProcServer`) so the two worker
substrates stay distinguishable on shared dashboards.

Counters:

- ``repro_serve_requests_submitted_total`` — requests accepted by ``submit()``;
- ``repro_serve_requests_completed_total`` — requests resolved with a result;
- ``repro_serve_samples_completed_total`` — samples inside completed requests;
- ``repro_serve_batches_dispatched_total`` — coalesced batches handed to workers;
- ``repro_serve_samples_dispatched_total`` — samples inside dispatched batches
  (clamped per dispatch to ``max_batch_size``, the occupancy numerator);
- ``repro_serve_requests_rejected_total`` — ``reject``-mode overload refusals;
- ``repro_serve_requests_shed_total`` — ``shed_oldest`` cancellations;
- ``repro_serve_requests_expired_total`` — deadline sweeps (never served);
- ``repro_serve_requests_failed_total`` — futures resolved with an exception;
- ``repro_serve_batches_retried_total`` — re-serve attempts (transient
  retries and bisection halves);
- ``repro_serve_worker_restarts_total`` — watchdog respawns + stuck
  replacements;
- ``repro_serve_bucket_calls_total{bucket="N"}`` — compiled runs routed to
  each session bucket;
- ``repro_serve_eager_tail_total`` — eager last-resort serves (remainder
  smaller than every bucket);
- ``repro_serve_proc_respawns_total`` — worker *process* respawns after a
  crash or SIGKILL (process mode only; thread respawns stay under
  ``repro_serve_worker_restarts_total``);
- ``repro_serve_proc_pipe_fallback_total`` — oversized requests served over
  the pickled pipe cold path instead of the shared-memory ring.

Gauges (computed at scrape time):

- ``repro_serve_queue_depth`` — requests waiting in the queue;
- ``repro_serve_workers_alive`` — live worker threads;
- ``repro_serve_batch_occupancy`` — mean dispatched samples per batch over
  ``max_batch_size`` (1.0 = every dispatch full);
- ``repro_serve_arena_version`` — version of the live shared-memory
  parameter bank (process mode; bumps on ``publish_weights()``).

Histograms (milliseconds, buckets
:data:`~repro.obs.metrics.DEFAULT_LATENCY_BUCKETS_MS`):

- ``repro_serve_request_latency_ms`` — submit-to-result, the same quantity
  ``stats()['latency_ms_p*']`` reports percentiles of;
- ``repro_serve_queue_wait_ms`` — submit-to-collection (time spent queued);
- ``repro_serve_service_ms`` — collection-to-result (coalesce + serve +
  scatter), so ``latency ≈ queue_wait + service`` per request.
"""

from repro.obs.http import ObsHTTPServer
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    NullRegistry,
    Registry,
    get_registry,
)
from repro.obs.profile import (
    Profiler,
    active_profiler,
    disable_profiler,
    enable_profiler,
    using_profiler,
)
from repro.obs.trace import Span, Tracer

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "NullRegistry",
    "ObsHTTPServer",
    "Profiler",
    "Registry",
    "Span",
    "Tracer",
    "active_profiler",
    "disable_profiler",
    "enable_profiler",
    "get_registry",
    "using_profiler",
]
