"""Reproduction package for conf_dac_Liu0L024.

Layers:

- :mod:`repro.autograd` — the define-by-run tape engine and dense kernels.
- :mod:`repro.nn` — Module/Parameter containers, layers, init schemes and
  optimizers over the fused kernels.
- :mod:`repro.models` — reference models; :class:`~repro.models.tbnet.TBNet`
  is the paper's two-branch network.
"""

__version__ = "0.3.0"
