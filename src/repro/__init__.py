"""Reproduction package for conf_dac_Liu0L024.

Layers:

- :mod:`repro.backend` — the swappable ndarray backend registry: the
  ``numpy`` reference and the ``fused`` in-place backend behind one
  ``ArrayBackend`` surface, plus the process-wide seeded generator.
- :mod:`repro.autograd` — the define-by-run tape engine (reified as a graph
  IR of explicit nodes), the dense kernels, and the trace-time fusion pass
  (:mod:`repro.autograd.fusion`), dispatching all numerical work through the
  active backend.
- :mod:`repro.nn` — Module/Parameter containers, layers, init schemes and
  optimizers over the fused kernels.
- :mod:`repro.models` — reference models; :class:`~repro.models.tbnet.TBNet`
  is the paper's two-branch network.
- :mod:`repro.serve` — the serving stack: compiled ``no_grad`` trace
  replay (:class:`~repro.serve.InferenceSession`), bucketed session pools
  for dynamic batch shapes, and the request-queue front end with sharded
  workers (:class:`~repro.serve.Server`).
"""

__version__ = "0.6.0"
