"""Reproduction package for conf_dac_Liu0L024.

Layers:

- :mod:`repro.autograd` — the define-by-run tape engine and dense kernels.
"""

__version__ = "0.2.0"
