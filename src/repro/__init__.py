"""Reproduction package for conf_dac_Liu0L024.

Layers:

- :mod:`repro.backend` — the swappable ndarray backend registry: the
  ``numpy`` reference and the ``fused`` in-place backend behind one
  ``ArrayBackend`` surface, plus the process-wide seeded generator.
- :mod:`repro.autograd` — the define-by-run tape engine and dense kernels,
  dispatching all numerical work through the active backend.
- :mod:`repro.nn` — Module/Parameter containers, layers, init schemes and
  optimizers over the fused kernels.
- :mod:`repro.models` — reference models; :class:`~repro.models.tbnet.TBNet`
  is the paper's two-branch network.
"""

__version__ = "0.4.0"
