"""TBNet — the paper's two-branch reference network.

The model fuses two input modalities through separate branches whose
embeddings are concatenated before a shared classifier head:

- the **spatial branch** is a small convnet over NCHW images
  (conv → batch-norm → relu → pool, twice, then flatten);
- the **context branch** is an MLP over flat per-sample feature vectors
  (linear → relu → dropout → linear → relu).

Every block is built from :mod:`repro.nn` layers, so the whole model is a
:class:`~repro.nn.module.Module`: ``parameters()``, ``train()``/``eval()``
and ``state_dict()`` checkpointing come for free, and
:meth:`TBNet.train_step` is one fused-kernel forward, one backward and one
optimizer step.

:func:`make_synthetic_batch` produces a deterministic class-conditional batch
(class identity is injected into both modalities) so smoke training has
actual signal to fit, not just labels to memorise.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro import nn
from repro.autograd import Tensor, functional as F, no_grad
from repro.backend import default_rng

__all__ = ["TBNet", "make_synthetic_batch"]


class TBNet(nn.Module):
    """Two-branch network over (image, context) pairs.

    Parameters
    ----------
    in_channels, image_size:
        Spatial-branch input layout ``(N, in_channels, image_size,
        image_size)``; ``image_size`` must be divisible by 4 (two 2×2 pools).
    context_dim:
        Context-branch input layout ``(N, context_dim)``.
    num_classes:
        Output logits ``(N, num_classes)``.
    width:
        Base channel/feature width; branch widths scale with it.
    dropout:
        Drop probability of the two regularising dropouts (0 disables them).
    rng:
        Explicit generator for reproducible weight init and dropout masks.
    """

    def __init__(
        self,
        in_channels: int = 3,
        image_size: int = 16,
        context_dim: int = 16,
        num_classes: int = 10,
        width: int = 16,
        dropout: float = 0.25,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if image_size % 4 != 0:
            raise ValueError(f"image_size must be divisible by 4, got {image_size}")
        self.in_channels = int(in_channels)
        self.image_size = int(image_size)
        self.context_dim = int(context_dim)
        self.num_classes = int(num_classes)
        self.width = int(width)
        self.dropout_rate = float(dropout)

        c1, c2 = width, 2 * width
        spatial_dim = c2 * (image_size // 4) ** 2
        context_width = 2 * width
        head_width = 4 * width

        self.spatial = nn.Sequential(
            nn.Conv2d(in_channels, c1, 3, padding=1, rng=rng),
            nn.BatchNorm2d(c1),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(c1, c2, 3, padding=1, rng=rng),
            nn.BatchNorm2d(c2),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Flatten(),
        )
        self.context = nn.Sequential(
            nn.Linear(context_dim, context_width, rng=rng),
            nn.ReLU(),
            nn.Dropout(dropout, rng=rng),
            nn.Linear(context_width, context_width, rng=rng),
            nn.ReLU(),
        )
        self.head = nn.Sequential(
            nn.Linear(spatial_dim + context_width, head_width, rng=rng),
            nn.ReLU(),
            nn.Dropout(dropout, rng=rng),
            nn.Linear(head_width, num_classes, rng=rng),
        )

    def forward(self, images, context) -> Tensor:
        spatial_emb = self.spatial(images)
        context_emb = self.context(context)
        fused = Tensor.concatenate([spatial_emb, context_emb], axis=1)
        return self.head(fused)

    def loss(self, images, context, targets) -> Tensor:
        """Cross-entropy of the fused logits against integer class targets."""
        return F.softmax_cross_entropy(self.forward(images, context), targets)

    def train_step(self, optimizer: nn.optim.Optimizer, images, context, targets) -> float:
        """One full training step: forward, backward, parameter update.

        Returns the scalar loss of the step (before the update).  Gradients
        are cleared after the update, so steps compose without manual
        ``zero_grad()`` calls.
        """
        loss = self.loss(images, context, targets)
        loss.backward()
        optimizer.step()
        optimizer.zero_grad()
        return loss.item()

    def infer(self, images, context) -> np.ndarray:
        """Eager ``no_grad`` forward returning the plain logits array.

        The eval-mode serving path: call :meth:`~repro.nn.module.Module.eval`
        first so batch-norm uses its running statistics and dropout is a
        tape-free identity — the trace this produces is exactly what
        :meth:`compile_serving` captures and replays.
        """
        with no_grad():
            return self.forward(images, context).data

    def compile_serving(self, batch_size: int, fuse: bool = True):
        """Compile a fixed-batch :class:`repro.serve.InferenceSession`.

        Switches the model to eval mode (serving sessions refuse train-mode
        layers), captures one forward trace over a zero example batch of
        ``batch_size`` samples and returns the compiled session.  Parameters
        stay bound by reference, so later in-place updates are served
        without recompiling; wrap the session with
        :func:`repro.serve.serve_batches` to serve arbitrary request sizes.
        """
        from repro.serve import compile_inference  # deferred: serve sits above models

        self.eval()
        images = Tensor.zeros(batch_size, self.in_channels, self.image_size, self.image_size)
        context = Tensor.zeros(batch_size, self.context_dim)
        return compile_inference(self, (images, context), fuse=fuse)

    def spawn_factory(self):
        """A picklable zero-arg callable rebuilding this architecture.

        :class:`repro.serve.ProcServer` workers under the ``spawn`` start
        method reconstruct the model from this and take the actual
        weights from the shared-memory arena, so the factory only has to
        get the architecture right.
        """
        import functools

        return functools.partial(
            TBNet,
            in_channels=self.in_channels,
            image_size=self.image_size,
            context_dim=self.context_dim,
            num_classes=self.num_classes,
            width=self.width,
            dropout=self.dropout_rate,
        )

    def serve(
        self,
        buckets=(1, 4, 16, 64),
        *,
        workers: int = 1,
        workers_mode: str = "thread",
        start_method: Optional[str] = None,
        max_batch_size: Optional[int] = None,
        max_wait: float = 0.002,
        fuse: bool = True,
        start: bool = True,
        http_port: Optional[int] = None,
        http_host: str = "127.0.0.1",
        **resilience,
    ):
        """Build a dynamic-batching :class:`repro.serve.Server` over this model.

        Switches the model to eval mode, compiles one bucketed
        :class:`repro.serve.SessionPool` replica per worker, and returns the
        request-queue server (already started unless ``start=False``)::

            with model.serve(workers=2, queue_limit=256, overload="reject",
                             default_timeout=0.5) as server:
                logits = server(images, context)        # blocking
                future = server.submit(images, context) # or async

        Extra keyword arguments pass straight through to
        :class:`repro.serve.Server` — the resilience knobs (``queue_limit``,
        ``overload``, ``default_timeout``, ``retry``, ``supervise``,
        ``supervision``, ``latency_window``) and the observability knobs
        (``registry``, ``trace``, ``trace_capacity``) ride along unchanged.

        ``http_port`` (with ``http_host``) additionally starts the
        observability HTTP edge — ``/metrics``, ``/health``, ``/ready``,
        ``/traces.json`` — on the started server (``0`` picks a free port;
        read it back from ``server.serve_http().port``).  Requires
        ``start=True``.

        ``workers_mode="thread"`` (default) shards across worker threads
        with parameters bound by reference, so in-place fine-tuning shows
        up on every worker without recompiling.  ``workers_mode="process"``
        builds a :class:`repro.serve.ProcServer` instead — OS worker
        processes over shared-memory parameter arenas (``start_method``
        picks ``fork``/``spawn``); there, hot weight updates go through
        ``server.publish_weights()``.
        """
        # Deferred: serve sits above models.
        from repro.serve import ProcServer, Server

        if workers_mode not in ("thread", "process"):
            raise ValueError(
                f"workers_mode must be 'thread' or 'process', got "
                f"{workers_mode!r}"
            )
        if workers_mode == "thread" and start_method is not None:
            raise ValueError("start_method only applies to workers_mode='process'")
        self.eval()
        example = (
            Tensor.zeros(1, self.in_channels, self.image_size, self.image_size),
            Tensor.zeros(1, self.context_dim),
        )
        if workers_mode == "process":
            server = ProcServer(
                self,
                example,
                buckets,
                workers=workers,
                start_method=start_method,
                model_factory=self.spawn_factory(),
                max_batch_size=max_batch_size,
                max_wait=max_wait,
                fuse=fuse,
                **resilience,
            )
        else:
            server = Server(
                self,
                example,
                buckets,
                workers=workers,
                max_batch_size=max_batch_size,
                max_wait=max_wait,
                fuse=fuse,
                **resilience,
            )
        if not start:
            if http_port is not None:
                raise ValueError("http_port requires start=True")
            return server
        server.start()
        if http_port is not None:
            server.serve_http(host=http_host, port=http_port)
        return server


def make_synthetic_batch(
    batch: int,
    in_channels: int = 3,
    image_size: int = 16,
    context_dim: int = 16,
    num_classes: int = 10,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[Tensor, Tensor, np.ndarray]:
    """Class-conditional synthetic ``(images, context, targets)`` batch.

    Each sample's class shifts the mean of its image channels and of its
    context vector, so both branches carry label signal and a few optimizer
    steps must reduce the loss.  Without an explicit ``rng`` the draw comes
    from the seeded global generator (``repro.nn.init.manual_seed``), like
    every other default draw in the stack.
    """
    rng = rng if rng is not None else default_rng()
    targets = rng.integers(0, num_classes, size=batch)
    class_signal = (targets / max(num_classes - 1, 1)).astype(np.float32) - 0.5

    images = rng.standard_normal((batch, in_channels, image_size, image_size)).astype(np.float32)
    images += class_signal[:, None, None, None]
    context = rng.standard_normal((batch, context_dim)).astype(np.float32)
    context += class_signal[:, None]
    return Tensor(images), Tensor(context), targets
