"""Reference models composed from :mod:`repro.nn` layers.

Currently :class:`~repro.models.tbnet.TBNet`, the paper's two-branch network.
"""

from repro.models.tbnet import TBNet, make_synthetic_batch

__all__ = ["TBNet", "make_synthetic_batch"]
