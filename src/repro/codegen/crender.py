"""Render one :class:`~repro.codegen.region.RegionIR` signature to C.

The generated kernel is a single nested loop over the output elements —
one pass, zero temporaries — with per-input strides derived at runtime
from the output shape and the compile-time broadcast pattern, so the same
kernel serves every concrete size of the region structure (batch-size
changes hit the cache; dtype/rank changes miss it).

Bit-equality with the numpy interpreter arm is the design constraint:

- ``add``/``sub``/``mul``/``div``/``neg`` are plain IEEE-754 scalar ops,
  identical to the numpy ufuncs (compiled with ``-ffp-contract=off`` so
  the compiler cannot contract ``a*b+c`` into an FMA, which would change
  the last bits).
- ``relu`` is rendered as ``(x > 0 || isnan(x)) ? x : 0`` — exactly
  ``np.maximum(x, 0.0)``: NaN propagates, ``-0.0`` maps to ``+0.0``.

Inputs must be C-contiguous (the JIT wrapper guarantees it); the output is
written densely through a running index.
"""

from __future__ import annotations

import hashlib
from typing import List, Tuple

__all__ = ["render_kernel", "kernel_name"]

_CTYPE = {"float32": "float", "float64": "double"}


def kernel_name(signature: tuple) -> str:
    """Stable function/file name for one region signature."""
    digest = hashlib.sha256(repr(signature).encode()).hexdigest()[:16]
    return f"repro_region_{digest}"


def _strides(pattern: Tuple[int, ...]) -> List[str]:
    """C expressions for the element strides of one input.

    For a C-contiguous operand whose effective shape has size 1 (or is
    absent) wherever ``pattern`` is 0, the stride over output dim ``d`` is
    0 if broadcast, else the product of the *input's* trailing real dims.
    """
    exprs = []
    for d in range(len(pattern)):
        if pattern[d] == 0:
            exprs.append("0")
            continue
        terms = [f"shape[{k}]" for k in range(d + 1, len(pattern)) if pattern[k] == 1]
        exprs.append(" * ".join(terms) if terms else "1")
    return exprs


def render_kernel(signature: tuple) -> Tuple[str, str]:
    """Return ``(name, c_source)`` for one region signature."""
    ops, dtype, ndim, patterns = signature
    ctype = _CTYPE[dtype]
    name = kernel_name(signature)
    n_in = len(patterns)
    zero = "0.0f" if ctype == "float" else "0.0"

    lines = [
        "#include <math.h>",
        "typedef long long i64;",
        "",
        f"void {name}(const i64 *shape, "
        + "".join(f"const {ctype} *in{k}, " for k in range(n_in))
        + f"{ctype} *out)",
        "{",
    ]
    # Per-input stride constants (from the output shape at runtime).
    for k, pattern in enumerate(patterns):
        for d, expr in enumerate(_strides(pattern)):
            lines.append(f"    const i64 s{k}_{d} = {expr};")
    lines.append("    i64 o = 0;")

    indent = "    "
    # Nested loops with per-level base pointers: each level hoists its
    # index*stride add out of the inner loops.
    bases = {k: f"in{k}" for k in range(n_in)}
    for d in range(ndim):
        lines.append(f"{indent}for (i64 i{d} = 0; i{d} < shape[{d}]; ++i{d}) {{")
        indent += "    "
        for k in range(n_in):
            lines.append(
                f"{indent}const {ctype} *b{k}_{d} = {bases[k]} + i{d} * s{k}_{d};"
            )
            bases[k] = f"b{k}_{d}"

    # Loads, then the op program as scalar temporaries.
    for k in range(n_in):
        lines.append(f"{indent}const {ctype} v{k} = {bases[k]}[0];")
    slot = n_in
    val = {k: f"v{k}" for k in range(n_in)}
    for op, srcs in ops:
        a = val[srcs[0]]
        if op == "neg":
            expr = f"-{a}"
        elif op == "relu":
            expr = f"({a} > {zero} || isnan({a})) ? {a} : {zero}"
        else:
            b = val[srcs[1]]
            sym = {"add": "+", "sub": "-", "mul": "*", "div": "/"}[op]
            expr = f"{a} {sym} {b}"
        lines.append(f"{indent}const {ctype} t{slot} = {expr};")
        val[slot] = f"t{slot}"
        slot += 1
    lines.append(f"{indent}out[o++] = t{slot - 1};")

    for d in range(ndim - 1, -1, -1):
        indent = indent[:-4]
        lines.append(f"{indent}}}")
    lines.append("}")
    lines.append("")
    return name, "\n".join(lines)
