"""Render :class:`~repro.codegen.region.RegionIR` programs to C.

Elementwise programs render as a single nested loop over the output
elements — one pass, zero temporaries — with per-input strides derived at
runtime from the output shape and the compile-time broadcast pattern, so
the same kernel serves every concrete size of the region structure
(batch-size changes hit the cache; dtype/rank changes miss it).

Structured programs (reduction tails, ``linear`` heads) are decomposed by
:func:`stage_plan` into a pipeline of *stages*:

- a ``linear`` op runs its GEMM through the host BLAS (generated C cannot
  be bit-equal to it) and its bias add joins the first elementwise loop —
  the epilogue folds into the kernel, the GEMM does not;
- a ``map`` stage is the classic elementwise loop;
- a ``reduce`` stage computes its elementwise body into a scratch row and
  collapses it with **numpy's pairwise summation** — the exact scalar
  algorithm (8 independent accumulators over 8..128-element blocks, a
  fixed combine tree, recursive halving above 128 rounded to multiples of
  8) that ``np.sum``/``np.mean`` use for contiguous trailing-axes
  reductions, so the C arm stays bit-equal to the numpy arm.

Bit-equality with the numpy interpreter arm is the design constraint:

- ``add``/``sub``/``mul``/``div``/``neg`` are plain IEEE-754 scalar ops,
  identical to the numpy ufuncs (compiled with ``-ffp-contract=off`` so
  the compiler cannot contract ``a*b+c`` into an FMA, which would change
  the last bits).
- ``relu`` is rendered as ``(x > 0 || isnan(x)) ? x : 0`` — exactly
  ``np.maximum(x, 0.0)``: NaN propagates, ``-0.0`` maps to ``+0.0``.
- ``mean`` divides the pairwise sum by the reduced extent — exactly
  ``np.mean``'s sum-then-divide.

Any signature may be *specialized* on concrete shapes: loop bounds and
strides render as integer literals, so ``-O3`` can fully unroll and
vectorize the small fixed-size loops the serving planner compiles per
bucket.  Specialized and dynamic kernels share the ABI (the runtime shape
vector is still passed; specialized kernels ignore it).

Inputs must be C-contiguous (the JIT wrapper guarantees it); the output is
written densely through a running index.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["render_kernel", "kernel_name", "kernel_arity", "stage_plan"]

_CTYPE = {"float32": "float", "float64": "double"}


def kernel_name(signature: tuple) -> str:
    """Stable function/file name for one kernel signature."""
    digest = hashlib.sha256(repr(signature).encode()).hexdigest()[:16]
    return f"repro_region_{digest}"


def kernel_arity(signature: tuple) -> int:
    """Number of data-pointer arguments between the shape vector and ``out``.

    Elementwise signatures pass one pointer per input; reduce signatures
    add one trailing scratch pointer (the pairwise row buffer).
    """
    if signature[0] == "reduce":
        return len(signature[4]) + 1
    if signature[0] == "spec":
        return len(signature[4])
    return len(signature[3])


# --------------------------------------------------------------------------- #
# Stride/bounds helpers
# --------------------------------------------------------------------------- #
def _strides(pattern: Tuple[int, ...]) -> List[str]:
    """C expressions for the element strides of one input.

    For a C-contiguous operand whose effective shape has size 1 (or is
    absent) wherever ``pattern`` is 0, the stride over output dim ``d`` is
    0 if broadcast, else the product of the *input's* trailing real dims.
    """
    exprs = []
    for d in range(len(pattern)):
        if pattern[d] == 0:
            exprs.append("0")
            continue
        terms = [f"shape[{k}]" for k in range(d + 1, len(pattern)) if pattern[k] == 1]
        exprs.append(" * ".join(terms) if terms else "1")
    return exprs


def _literal_strides(pattern: Tuple[int, ...], shape: Tuple[int, ...]) -> List[int]:
    """Concrete element strides for a specialized kernel."""
    strides = []
    for d in range(len(pattern)):
        if pattern[d] == 0:
            strides.append(0)
            continue
        n = 1
        for k in range(d + 1, len(pattern)):
            if pattern[k] == 1:
                n *= shape[k]
        strides.append(n)
    return strides


def _pattern(shape: Tuple[int, ...], against: Tuple[int, ...]) -> Tuple[int, ...]:
    """Broadcast pattern of ``shape`` right-aligned against ``against``."""
    ndim = len(against)
    padded = (1,) * (ndim - len(shape)) + tuple(shape)
    return tuple(0 if s == 1 else 1 for s in padded)


# --------------------------------------------------------------------------- #
# Shared rendering pieces
# --------------------------------------------------------------------------- #
def _op_expr(op: str, srcs, val, zero: str) -> str:
    a = val[srcs[0]]
    if op == "neg":
        return f"-{a}"
    if op == "relu":
        return f"({a} > {zero} || isnan({a})) ? {a} : {zero}"
    b = val[srcs[1]]
    sym = {"add": "+", "sub": "-", "mul": "*", "div": "/"}[op]
    return f"{a} {sym} {b}"


def _body_lines(ops, n_in: int, indent: str, ctype: str, zero: str, bases) -> Tuple[list, str]:
    """Loads + the op program as scalar temporaries; returns the last temp."""
    lines = []
    for k in range(n_in):
        lines.append(f"{indent}const {ctype} v{k} = {bases[k]}[0];")
    slot = n_in
    val = {k: f"v{k}" for k in range(n_in)}
    for op, srcs in ops:
        expr = _op_expr(op, srcs, val, zero)
        lines.append(f"{indent}const {ctype} t{slot} = {expr};")
        val[slot] = f"t{slot}"
        slot += 1
    return lines, f"t{slot - 1}" if ops else "v0"


_PAIRWISE_C = """
static {ctype} repro_pw_{suffix}(const {ctype} *a, i64 n)
{{
    if (n < 8) {{
        {ctype} res = {zero};
        for (i64 i = 0; i < n; i++) res += a[i];
        return res;
    }} else if (n <= 128) {{
        {ctype} r0 = a[0], r1 = a[1], r2 = a[2], r3 = a[3];
        {ctype} r4 = a[4], r5 = a[5], r6 = a[6], r7 = a[7];
        i64 i;
        for (i = 8; i < n - (n % 8); i += 8) {{
            r0 += a[i + 0]; r1 += a[i + 1]; r2 += a[i + 2]; r3 += a[i + 3];
            r4 += a[i + 4]; r5 += a[i + 5]; r6 += a[i + 6]; r7 += a[i + 7];
        }}
        {ctype} res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7));
        for (; i < n; i++) res += a[i];
        return res;
    }} else {{
        i64 n2 = n / 2;
        n2 -= n2 % 8;
        return repro_pw_{suffix}(a, n2) + repro_pw_{suffix}(a + n2, n - n2);
    }}
}}
"""


# --------------------------------------------------------------------------- #
# Kernel renderers
# --------------------------------------------------------------------------- #
def render_kernel(signature: tuple) -> Tuple[str, str]:
    """Return ``(name, c_source)`` for one kernel signature.

    Signature forms:

    - ``(ops, dtype, ndim, patterns)`` — the classic dynamic elementwise
      kernel (kept byte-stable so pre-existing cache entries stay valid).
    - ``("spec", ops, dtype, out_shape, in_shapes)`` — elementwise,
      specialized on concrete shapes (literal bounds and strides).
    - ``("reduce", ops, dtype, (kept_ndim, red_ndim), patterns, is_mean,
      spec_shapes_or_None)`` — elementwise body collapsed over the trailing
      ``red_ndim`` axes with pairwise summation.
    """
    if signature[0] == "spec":
        return _render_spec_map(signature)
    if signature[0] == "reduce":
        return _render_reduce(signature)
    return _render_map(signature)


def _render_map(signature: tuple) -> Tuple[str, str]:
    ops, dtype, ndim, patterns = signature
    ctype = _CTYPE[dtype]
    name = kernel_name(signature)
    n_in = len(patterns)
    zero = "0.0f" if ctype == "float" else "0.0"

    lines = [
        "#include <math.h>",
        "typedef long long i64;",
        "",
        f"void {name}(const i64 *shape, "
        + "".join(f"const {ctype} *in{k}, " for k in range(n_in))
        + f"{ctype} *out)",
        "{",
    ]
    # Per-input stride constants (from the output shape at runtime).
    for k, pattern in enumerate(patterns):
        for d, expr in enumerate(_strides(pattern)):
            lines.append(f"    const i64 s{k}_{d} = {expr};")
    lines.append("    i64 o = 0;")

    indent = "    "
    # Nested loops with per-level base pointers: each level hoists its
    # index*stride add out of the inner loops.
    bases = {k: f"in{k}" for k in range(n_in)}
    for d in range(ndim):
        lines.append(f"{indent}for (i64 i{d} = 0; i{d} < shape[{d}]; ++i{d}) {{")
        indent += "    "
        for k in range(n_in):
            lines.append(
                f"{indent}const {ctype} *b{k}_{d} = {bases[k]} + i{d} * s{k}_{d};"
            )
            bases[k] = f"b{k}_{d}"

    body, last = _body_lines(ops, n_in, indent, ctype, zero, bases)
    lines.extend(body)
    lines.append(f"{indent}out[o++] = {last};")

    for d in range(ndim - 1, -1, -1):
        indent = indent[:-4]
        lines.append(f"{indent}}}")
    lines.append("}")
    lines.append("")
    return name, "\n".join(lines)


def _render_spec_map(signature: tuple) -> Tuple[str, str]:
    """Elementwise kernel with every bound and stride a compile-time literal."""
    _, ops, dtype, out_shape, in_shapes = signature
    ctype = _CTYPE[dtype]
    name = kernel_name(signature)
    n_in = len(in_shapes)
    ndim = len(out_shape)
    zero = "0.0f" if ctype == "float" else "0.0"
    patterns = [_pattern(s, out_shape) for s in in_shapes]
    strides = [_literal_strides(p, out_shape) for p in patterns]

    lines = [
        "#include <math.h>",
        "typedef long long i64;",
        "",
        f"void {name}(const i64 *shape, "
        + "".join(f"const {ctype} *in{k}, " for k in range(n_in))
        + f"{ctype} *out)",
        "{",
        "    (void)shape;",
        "    i64 o = 0;",
    ]
    indent = "    "
    bases = {k: f"in{k}" for k in range(n_in)}
    for d in range(ndim):
        lines.append(f"{indent}for (i64 i{d} = 0; i{d} < {out_shape[d]}; ++i{d}) {{")
        indent += "    "
        for k in range(n_in):
            lines.append(
                f"{indent}const {ctype} *b{k}_{d} = {bases[k]} + i{d} * {strides[k][d]};"
            )
            bases[k] = f"b{k}_{d}"
    body, last = _body_lines(ops, n_in, indent, ctype, zero, bases)
    lines.extend(body)
    lines.append(f"{indent}out[o++] = {last};")
    for d in range(ndim - 1, -1, -1):
        indent = indent[:-4]
        lines.append(f"{indent}}}")
    lines.append("}")
    lines.append("")
    return name, "\n".join(lines)


def _render_reduce(signature: tuple) -> Tuple[str, str]:
    """Map-reduce kernel: elementwise body into a scratch row, pairwise sum.

    ABI: ``name(const i64 *dims, ins..., scratch, out)`` where ``dims`` is
    the *core* shape (kept dims then reduced dims) and ``scratch`` holds at
    least the reduced extent.  The scratch row is filled in C order —
    exactly the memory order ``np.sum`` would see on the materialized
    elementwise result — so the pairwise collapse is bit-equal to numpy's.
    """
    _, ops, dtype, (kept, red), patterns, is_mean, spec = signature
    ctype = _CTYPE[dtype]
    name = kernel_name(signature)
    n_in = len(patterns)
    ndim = kept + red
    zero = "0.0f" if ctype == "float" else "0.0"
    suffix = "f32" if ctype == "float" else "f64"

    def bound(d: int) -> str:
        return str(spec[d]) if spec is not None else f"shape[{d}]"

    lines = [
        "#include <math.h>",
        "typedef long long i64;",
        _PAIRWISE_C.format(ctype=ctype, suffix=suffix, zero=zero),
        f"void {name}(const i64 *shape, "
        + "".join(f"const {ctype} *in{k}, " for k in range(n_in))
        + f"{ctype} *scratch, {ctype} *out)",
        "{",
    ]
    if spec is not None:
        lines.append("    (void)shape;")
        strides = [_literal_strides(p, tuple(spec)) for p in patterns]
        for k in range(n_in):
            for d in range(ndim):
                lines.append(f"    const i64 s{k}_{d} = {strides[k][d]};")
        r_extent = 1
        for d in range(kept, ndim):
            r_extent *= spec[d]
        lines.append(f"    const i64 R = {r_extent};")
    else:
        for k, pattern in enumerate(patterns):
            for d, expr in enumerate(_strides(pattern)):
                lines.append(f"    const i64 s{k}_{d} = {expr};")
        r_terms = " * ".join(f"shape[{d}]" for d in range(kept, ndim)) or "1"
        lines.append(f"    const i64 R = {r_terms};")
    lines.append("    i64 o = 0;")

    indent = "    "
    bases = {k: f"in{k}" for k in range(n_in)}
    for d in range(kept):
        lines.append(f"{indent}for (i64 i{d} = 0; i{d} < {bound(d)}; ++i{d}) {{")
        indent += "    "
        for k in range(n_in):
            lines.append(
                f"{indent}const {ctype} *b{k}_{d} = {bases[k]} + i{d} * s{k}_{d};"
            )
            bases[k] = f"b{k}_{d}"

    lines.append(f"{indent}i64 q = 0;")
    inner_bases = dict(bases)
    for d in range(kept, ndim):
        lines.append(f"{indent}for (i64 i{d} = 0; i{d} < {bound(d)}; ++i{d}) {{")
        indent += "    "
        for k in range(n_in):
            lines.append(
                f"{indent}const {ctype} *b{k}_{d} = {inner_bases[k]} + i{d} * s{k}_{d};"
            )
            inner_bases[k] = f"b{k}_{d}"
    body, last = _body_lines(ops, n_in, indent, ctype, zero, inner_bases)
    lines.extend(body)
    lines.append(f"{indent}scratch[q++] = {last};")
    for d in range(ndim - 1, kept - 1, -1):
        indent = indent[:-4]
        lines.append(f"{indent}}}")

    acc = f"repro_pw_{suffix}(scratch, R)"
    if is_mean:
        acc = f"({acc}) / ({ctype})R"
    lines.append(f"{indent}out[o++] = {acc};")

    for d in range(kept - 1, -1, -1):
        indent = indent[:-4]
        lines.append(f"{indent}}}")
    lines.append("}")
    lines.append("")
    return name, "\n".join(lines)


# --------------------------------------------------------------------------- #
# Stage planning for structured regions
# --------------------------------------------------------------------------- #
class Stage:
    """One kernel of a structured region's pipeline.

    ``inputs`` are value refs: ``("ext", i)`` a region input, ``("mm", m)``
    the m-th host matmul workspace, ``("stage", s)`` a prior stage's
    output.  ``reduce`` is ``None`` for a map stage or ``(red_ndim,
    is_mean)``; a reduce stage's output shape is its *metadata* shape
    (keepdims 1s included — the dense element order is identical).
    """

    __slots__ = ("ops", "inputs", "in_shapes", "core_shape", "out_shape", "reduce")

    def __init__(self, ops, inputs, in_shapes, core_shape, out_shape, reduce):
        self.ops = tuple(ops)
        self.inputs = tuple(inputs)
        self.in_shapes = tuple(tuple(s) for s in in_shapes)
        self.core_shape = tuple(core_shape)
        self.out_shape = tuple(out_shape)
        self.reduce = reduce

    def signature(self, dtype: str, specialize: bool) -> tuple:
        patterns = tuple(_pattern(s, self.core_shape) for s in self.in_shapes)
        if self.reduce is not None:
            red, is_mean = self.reduce
            kept = len(self.core_shape) - red
            spec = tuple(self.core_shape) if specialize else None
            return ("reduce", self.ops, dtype, (kept, red), patterns, is_mean, spec)
        if specialize:
            return ("spec", self.ops, dtype, tuple(self.core_shape),
                    tuple(self.in_shapes))
        return (self.ops, dtype, len(self.core_shape), patterns)


class StagePlan:
    """Host matmuls + kernel stages for one structured region."""

    __slots__ = ("matmuls", "stages")

    def __init__(self, matmuls, stages):
        self.matmuls = tuple(matmuls)  # (x_slot, w_slot, b_slot|None, out_shape)
        self.stages = tuple(stages)


def stage_plan(region) -> Optional[StagePlan]:
    """Decompose a structured region into host GEMMs + kernel stages.

    Returns ``None`` when the program is not renderable as a stage
    pipeline — a value produced inside one stage and consumed in a later
    one (other than through a stage output), or a reduction of a value
    that is not the running tail — in which case the caller falls back to
    the (bit-equal) interpreter arm.
    """
    n_in = len(region.inputs)
    slot_shapes = region.slot_shapes

    # value ref per slot: ("ext", i) | ("mm", m) | ("stage", s) | ("op", stage, j)
    refs: List[tuple] = [("ext", i) for i in range(n_in)]
    matmuls: List[tuple] = []
    stages: List[Stage] = []

    cur_ops: List[tuple] = []        # (op, local_srcs)
    cur_inputs: List[tuple] = []     # value refs
    cur_in_shapes: List[tuple] = []
    cur_slotmap: dict = {}           # value ref -> local slot

    def local_input(ref: tuple, shape) -> int:
        s = cur_slotmap.get(ref)
        if s is None:
            s = len(cur_inputs)
            cur_slotmap[ref] = s
            cur_inputs.append(ref)
            cur_in_shapes.append(tuple(shape))
        return s

    def ref_shape(ref: tuple) -> tuple:
        kind, idx = ref[0], ref[1]
        if kind == "ext":
            return region.inputs[idx].shape
        if kind == "mm":
            return matmuls[idx][3]
        return stages[idx].out_shape

    def close_stage(reduce_meta, out_shape) -> tuple:
        nonlocal cur_ops, cur_inputs, cur_in_shapes, cur_slotmap
        n_loc = len(cur_inputs)
        # Stage-local srcs: input slots stay, ("loc", j) interior refs shift
        # past the inputs — the same slot convention RegionIR uses.
        ops_local = [
            (op, tuple(s if isinstance(s, int) else n_loc + s[1] for s in srcs))
            for op, srcs in cur_ops
        ]
        core = ()
        for s in cur_in_shapes:
            core = tuple(np.broadcast_shapes(core, s))
        stage = Stage(ops_local, cur_inputs, cur_in_shapes, core, out_shape,
                      reduce_meta)
        stages.append(stage)
        cur_ops, cur_inputs, cur_in_shapes, cur_slotmap = [], [], [], {}
        return ("stage", len(stages) - 1)

    for j, entry in enumerate(region.ops):
        op, srcs = entry[0], entry[1]
        slot = n_in + j
        if op == "linear":
            if cur_ops:
                return None  # GEMM heads only: a mid-stream linear is not planned
            x, w = refs[srcs[0]], refs[srcs[1]]
            if x[0] != "ext" or w[0] != "ext":
                return None
            mm_shape = slot_shapes[srcs[0]][:-1] + (slot_shapes[srcs[1]][1],)
            m = len(matmuls)
            matmuls.append((x[1], w[1], None, mm_shape))
            if len(srcs) == 3:
                # Bias joins the first elementwise loop: mm + b.
                a = local_input(("mm", m), mm_shape)
                b = local_input(refs[srcs[2]], ref_shape(refs[srcs[2]]))
                cur_ops.append(("add", (a, b)))
                refs.append(("op", len(stages), len(cur_ops) - 1))
            else:
                refs.append(("mm", m))
            continue
        if op in ("sum", "mean"):
            k, _keepdims = entry[2]
            src_ref = refs[srcs[0]]
            if src_ref[0] == "op":
                if src_ref[1] != len(stages) or src_ref[2] != len(cur_ops) - 1:
                    return None  # reduce of a non-tail interior value
            else:
                if cur_ops:
                    return None
                local_input(src_ref, ref_shape(src_ref))
            src_shape = slot_shapes[srcs[0]]
            if len(src_shape) < k:
                return None
            # The stage core must be the reduced value's own shape: an
            # interior broadcast smaller than a sibling's would misalign
            # the reduction axes.
            refs.append(close_stage((k, op == "mean"), slot_shapes[slot]))
            stage = stages[-1]
            if stage.core_shape != tuple(src_shape):
                return None
            continue
        # elementwise
        local = []
        for s in srcs:
            ref = refs[s]
            if ref[0] == "op":
                if ref[1] != len(stages):
                    return None  # produced in a closed stage, not its output
                local.append(("loc", ref[2]))
            else:
                local.append(local_input(ref, ref_shape(ref)))
        cur_ops.append((op, tuple(local)))
        refs.append(("op", len(stages), len(cur_ops) - 1))

    last_ref = refs[-1]
    if last_ref[0] == "op":
        close_stage(None, region.out_shape)
    elif last_ref[0] == "mm":
        # Bias-free linear with no epilogue: a pure copy stage moves the
        # workspace into the caller's output buffer (a load/store copy is
        # trivially bit-equal).
        stages.append(Stage([], [last_ref], [ref_shape(last_ref)],
                            region.out_shape, region.out_shape, None))
    elif last_ref[0] != "stage" or last_ref[1] != len(stages) - 1:
        return None
    return StagePlan(matmuls, stages)
