"""Region IR: a straight-line program over broadcastable arrays.

A *region* is the unit the fusion passes extract and the execution backends
compile: a DAG of elementwise operations (``add``/``sub``/``mul``/``div``/
``neg``/``relu``) plus three *structured* node kinds — trailing-axes
``sum``/``mean`` reduction tails and a ``linear`` (GEMM + bias) head —
whose interior values can run as **one kernel**: a single pass over the
output elements for elementwise programs, accumulator loops for the
reduction tails, and a host GEMM whose bias/activation epilogue folds into
the first elementwise loop.

The program form is linear SSA: slots ``[0, len(inputs))`` name the region
inputs, and each op appends one more slot; the region's output is the last
op's slot.  Ops are ``(op, src_slots)`` pairs; the reduction kinds carry a
third *meta* element:

- ``("sum", (s,), (k, keepdims))`` — reduce slot ``s`` over its last ``k``
  axes (numpy ``sum(axis=tuple(range(nd-k, nd)))``); ``keepdims`` keeps
  the reduced axes as size-1 dims.
- ``("mean", (s,), (k, keepdims))`` — same axes, arithmetic mean.
- ``("linear", (x, w[, b]))`` — ``matmul(x, w) + b``; all operands must be
  *input* slots (the GEMM itself runs through the host BLAS — generated C
  cannot be bit-equal to it — and only the epilogue joins the loop).

Inputs carry their effective dtype/shape, an optional ``reshape`` applied
to the bound array before use (batch-norm affine parameters are ``(C,)``
arrays broadcast as ``(1, C, 1, 1)``), and an optional ``const`` array
bound at build time (frozen batch-norm statistics) so callers only supply
the *dynamic* inputs.

Two execution arms share this IR:

- :meth:`RegionIR.interpret` — the numpy arm: the exact ufunc-by-ufunc
  sequence the eager tape would have executed, so its results are
  bit-identical to unfused eager execution by construction.  Reduction
  accumulators are pinned to the region dtype (explicit ``dtype=`` on
  ``np.sum``/``np.mean``) so the interpreter can never accumulate a
  float32 region in float64 precision the C arm doesn't have.
- the C arm (:mod:`repro.codegen.crender` + :mod:`repro.codegen.jit`) —
  compiled loop kernels.  Every elementwise op maps to an IEEE-754 scalar
  operation that numpy also implements as a plain IEEE op, and the
  reduction tails replay numpy's own pairwise-summation order, so the two
  arms are **bit-equal**; that equality is the contract the test suite
  enforces.

:meth:`RegionIR.signature` is the kernel-cache key: for elementwise
programs it abstracts concrete sizes into per-input *broadcast patterns*
(which output dims an input actually strides over), so one compiled kernel
serves every batch size of the same region structure, while a dtype or
rank change misses the cache.  Structured regions include the concrete
input shapes (their stage decomposition is shape-dependent), and
:func:`repro.codegen.jit.compile_region` can *specialize* any region on
its shapes so the loops render with constant bounds.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["REGION_OPS", "REGION_STRUCTURED_OPS", "RegionInput", "RegionIR"]

#: Elementwise ops a region may contain.  Deliberately restricted to
#: operations whose C scalar form is bit-equal to the numpy ufunc (IEEE
#: add/sub/mul/div/neg plus the relu max-with-zero): transcendentals
#: (exp, tanh, ...) use numpy's own SIMD polynomials and would break the
#: two-arm equality.
REGION_OPS = ("add", "sub", "mul", "div", "neg", "relu")

#: Structured node kinds: trailing-axes reductions + the GEMM head.
REGION_STRUCTURED_OPS = ("sum", "mean", "linear")

_ARITY = {"add": 2, "sub": 2, "mul": 2, "div": 2, "neg": 1, "relu": 1,
          "sum": 1, "mean": 1}

_UFUNC = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "div": np.divide,
}


class RegionInput:
    """One region operand: dtype/shape metadata plus optional binding.

    ``shape`` is the *effective* shape (after ``reshape``) that participates
    in broadcasting.  ``const`` pins the operand to a fixed array at build
    time; const inputs are skipped in the dynamic-argument list callers pass
    to the compiled kernel.
    """

    __slots__ = ("dtype", "shape", "reshape", "const")

    def __init__(
        self,
        dtype,
        shape: Tuple[int, ...],
        reshape: Optional[Tuple[int, ...]] = None,
        const: Optional[np.ndarray] = None,
    ) -> None:
        self.dtype = np.dtype(dtype)
        self.shape = tuple(shape)
        self.reshape = tuple(reshape) if reshape is not None else None
        self.const = const


def _normalize_op(entry) -> tuple:
    """``(op, srcs)`` or ``(op, srcs, meta)`` → stored form.

    Elementwise ops stay 2-tuples (keeping their signatures — and therefore
    the kernel cache keys of every pre-existing region — byte-stable);
    ``sum``/``mean`` keep their ``(k, keepdims)`` meta as a plain tuple.
    """
    if len(entry) == 2:
        op, srcs = entry
        if op in ("sum", "mean"):
            raise ValueError(f"op {op!r} needs (k, keepdims) meta")
        return (op, tuple(srcs))
    op, srcs, meta = entry
    if meta is None:
        return (op, tuple(srcs))
    if op not in ("sum", "mean"):
        raise ValueError(f"op {op!r} takes no meta, got {meta!r}")
    k, keepdims = meta
    return (op, tuple(srcs), (int(k), bool(keepdims)))


def _op_meta(entry) -> Optional[tuple]:
    return entry[2] if len(entry) > 2 else None


def _infer_slot_shapes(input_shapes: Sequence[Tuple[int, ...]], ops) -> List[tuple]:
    """Shape of every slot, in slot order.  Raises on malformed programs."""
    shapes = list(input_shapes)
    for i, entry in enumerate(ops):
        op, srcs = entry[0], entry[1]
        meta = _op_meta(entry)
        if op == "linear":
            x, w = shapes[srcs[0]], shapes[srcs[1]]
            if len(x) < 2 or len(w) != 2 or x[-1] != w[0]:
                raise ValueError(
                    f"op {i} (linear): incompatible shapes {x} @ {w}"
                )
            out = x[:-1] + (w[1],)
            if len(srcs) == 3:
                out = tuple(np.broadcast_shapes(out, shapes[srcs[2]]))
            shapes.append(out)
        elif op in ("sum", "mean"):
            k, keepdims = meta
            src = shapes[srcs[0]]
            if not 1 <= k <= len(src):
                raise ValueError(
                    f"op {i} ({op}): cannot reduce last {k} axes of {src}"
                )
            kept = src[: len(src) - k]
            shapes.append(kept + (1,) * k if keepdims else kept)
        elif op in ("neg", "relu"):
            shapes.append(shapes[srcs[0]])
        else:
            shapes.append(
                tuple(np.broadcast_shapes(shapes[srcs[0]], shapes[srcs[1]]))
            )
    return shapes


class RegionIR:
    """A fused region: inputs + linear op program.

    Parameters
    ----------
    inputs:
        The region operands, in the order dynamic arguments are passed.
    ops:
        ``(op, src_slots)`` pairs — or ``(op, src_slots, meta)`` triples
        for the reduction kinds; ``src_slots`` index inputs
        (``< len(inputs)``) or earlier op results (``len(inputs) + i``).
    out_shape, out_dtype:
        Shape/dtype of the final op's result (the region output).
    """

    __slots__ = (
        "inputs", "ops", "out_shape", "out_dtype", "slot_shapes", "_signature"
    )

    def __init__(
        self,
        inputs: Sequence[RegionInput],
        ops: Sequence[tuple],
        out_shape: Tuple[int, ...],
        out_dtype,
    ) -> None:
        self.inputs = tuple(inputs)
        self.ops = tuple(_normalize_op(entry) for entry in ops)
        self.out_shape = tuple(out_shape)
        self.out_dtype = np.dtype(out_dtype)
        self._signature = None
        if not self.ops:
            raise ValueError("a region needs at least one op")
        if self.out_dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError(f"regions are float32/float64 only, got {self.out_dtype}")
        n_in = len(self.inputs)
        for i, entry in enumerate(self.ops):
            op, srcs = entry[0], entry[1]
            if op == "linear":
                if len(srcs) not in (2, 3):
                    raise ValueError(
                        f"op {i} (linear) takes 2 or 3 operands, got {len(srcs)}"
                    )
                if any(s >= n_in for s in srcs):
                    raise ValueError(
                        f"op {i} (linear) operands must be region inputs "
                        f"(the GEMM runs on the host), got slots {srcs}"
                    )
            elif op in _ARITY:
                if len(srcs) != _ARITY[op]:
                    raise ValueError(
                        f"op {op!r} takes {_ARITY[op]} operands, got {len(srcs)}"
                    )
            else:
                raise ValueError(f"unknown region op {op!r}")
            for s in srcs:
                if not 0 <= s < n_in + i:
                    raise ValueError(f"op {i} ({op}) references undefined slot {s}")
        for inp in self.inputs:
            if inp.dtype != self.out_dtype:
                raise ValueError(
                    f"region inputs must share the output dtype {self.out_dtype}, "
                    f"got {inp.dtype}"
                )
        self.slot_shapes = _infer_slot_shapes(
            [inp.shape for inp in self.inputs], self.ops
        )
        if self.slot_shapes[-1] != self.out_shape:
            raise ValueError(
                f"program produces shape {self.slot_shapes[-1]}, "
                f"declared out_shape is {self.out_shape}"
            )

    @property
    def num_dynamic(self) -> int:
        """How many (non-const) arrays a caller passes per execution."""
        return sum(1 for inp in self.inputs if inp.const is None)

    @property
    def is_elementwise(self) -> bool:
        """Whether the program contains only plain elementwise ops."""
        return all(len(entry) == 2 and entry[0] != "linear" for entry in self.ops)

    # ------------------------------------------------------------------ #
    # Cache key
    # ------------------------------------------------------------------ #
    def broadcast_pattern(self, inp: RegionInput) -> Tuple[int, ...]:
        """Which output dims ``inp`` strides over: 1 = real dim, 0 = broadcast.

        The input's effective shape is right-aligned against the output
        shape (numpy broadcasting); missing leading dims and size-1 dims
        read with stride 0.  (Elementwise regions only — a structured
        region's inputs broadcast against their *stage* shapes, computed by
        the stage planner.)
        """
        ndim = len(self.out_shape)
        shape = (1,) * (ndim - len(inp.shape)) + inp.shape
        return tuple(0 if s == 1 else 1 for s in shape)

    def signature(self) -> tuple:
        """Structural kernel-cache key.

        Elementwise regions: op program, dtype, rank, broadcast patterns —
        everything the rendered C depends on, and nothing else (concrete
        sizes are runtime arguments, so one kernel serves every batch
        size).  Structured regions (reductions / linear): the concrete
        input shapes join the key — their host/stage decomposition is
        shape-dependent — so two sizes are two keys.
        """
        sig = self._signature
        if sig is None:
            if self.is_elementwise:
                sig = (
                    self.ops,
                    str(self.out_dtype),
                    len(self.out_shape),
                    tuple(self.broadcast_pattern(inp) for inp in self.inputs),
                )
            else:
                sig = (
                    "structured",
                    self.ops,
                    str(self.out_dtype),
                    tuple(inp.shape for inp in self.inputs),
                )
            self._signature = sig
        return sig

    def respecialize(self, shapes: Sequence[Tuple[int, ...]]) -> "RegionIR":
        """The same program over new *dynamic* input shapes.

        Used when a captured region is replayed over a different batch
        size: the op program (and usually the kernel-cache signature) is
        unchanged, only the concrete shapes move.  Const inputs keep their
        pinned shapes; reshaped inputs are not supported (the caller's
        array shape would be pre-reshape and ambiguous).
        """
        new_inputs = []
        j = 0
        for inp in self.inputs:
            if inp.const is not None:
                new_inputs.append(inp)
                continue
            if inp.reshape is not None:
                raise ValueError("cannot respecialize a region with reshaped inputs")
            shape = tuple(shapes[j])
            j += 1
            new_inputs.append(RegionInput(inp.dtype, shape))
        slot_shapes = _infer_slot_shapes(
            [inp.shape for inp in new_inputs], self.ops
        )
        return RegionIR(new_inputs, self.ops, slot_shapes[-1], self.out_dtype)

    # ------------------------------------------------------------------ #
    # Binding + the numpy interpreter arm
    # ------------------------------------------------------------------ #
    def bind(self, arrays: Sequence[np.ndarray]) -> list:
        """Resolve the full operand list: consts spliced in, reshapes applied.

        Validates the dynamic arrays against the recorded shapes — a
        mismatch would make the compiled kernel's stride arithmetic read out
        of bounds, so it is a hard error, not a silent best-effort.
        """
        bound = []
        j = 0
        for i, inp in enumerate(self.inputs):
            if inp.const is not None:
                bound.append(inp.const)
                continue
            if j >= len(arrays):
                raise ValueError(
                    f"region takes {self.num_dynamic} arrays, got {len(arrays)}"
                )
            a = arrays[j]
            j += 1
            if inp.reshape is not None:
                a = a.reshape(inp.reshape)
            if a.shape != inp.shape:
                raise ValueError(
                    f"region input {i} has shape {a.shape}, expected {inp.shape}"
                )
            if a.dtype != inp.dtype:
                raise ValueError(
                    f"region input {i} has dtype {a.dtype}, expected {inp.dtype}"
                )
            bound.append(a)
        if j != len(arrays):
            raise ValueError(
                f"region takes {self.num_dynamic} arrays, got {len(arrays)}"
            )
        return bound

    def interpret(
        self, arrays: Sequence[np.ndarray], out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """The numpy-interpreter arm: run the program ufunc by ufunc.

        This is exactly the op sequence the eager (unfused) tape executed,
        so results are bit-identical to no-fusion by construction; it is
        also the reference the C arm must match.  ``out``, when given, is
        used as the final op's ``out=`` buffer (same values, zero-alloc).

        Reduction accumulators are **pinned to the region dtype** (explicit
        ``dtype=``): numpy would otherwise be free to accumulate a float32
        reduction at float64 precision on some paths, and the f32 C kernel
        has no such widening — the pin keeps the two arms bit-equal.
        """
        vals = self.bind(arrays)
        last = len(self.ops) - 1
        dtype = self.out_dtype
        for i, entry in enumerate(self.ops):
            op, srcs = entry[0], entry[1]
            dst = out if (i == last and out is not None) else None
            if op == "neg":
                r = np.negative(vals[srcs[0]], out=dst)
            elif op == "relu":
                r = np.maximum(vals[srcs[0]], 0.0, out=dst)
            elif op in ("sum", "mean"):
                k, keepdims = entry[2]
                v = vals[srcs[0]]
                axes = tuple(range(v.ndim - k, v.ndim))
                fn = np.sum if op == "sum" else np.mean
                r = fn(v, axis=axes, keepdims=keepdims, dtype=dtype, out=dst)
            elif op == "linear":
                # Exactly the backend linear: a GEMM, then the bias added
                # elementwise (the backends do `out += b`, which is the
                # same IEEE add as np.add).
                r = np.matmul(vals[srcs[0]], vals[srcs[1]], out=dst)
                if len(srcs) == 3:
                    r = np.add(r, vals[srcs[2]], out=dst)
            else:
                r = _UFUNC[op](vals[srcs[0]], vals[srcs[1]], out=dst)
            vals.append(r)
        return vals[-1]
