"""Region IR: a straight-line elementwise program over broadcastable arrays.

A *region* is the unit the fusion passes extract and the execution backends
compile: a DAG of elementwise operations (``add``/``sub``/``mul``/``div``/
``neg``/``relu``) whose interior values each have exactly one consumer, so
the whole thing can run as **one kernel** — a single pass over the output
elements with zero materialized temporaries.

The program form is linear SSA: slots ``[0, len(inputs))`` name the region
inputs, and each op appends one more slot; the region's output is the last
op's slot.  Inputs carry their effective dtype/shape, an optional
``reshape`` applied to the bound array before use (batch-norm affine
parameters are ``(C,)`` arrays broadcast as ``(1, C, 1, 1)``), and an
optional ``const`` array bound at build time (frozen batch-norm statistics)
so callers only supply the *dynamic* inputs.

Two execution arms share this IR:

- :meth:`RegionIR.interpret` — the numpy arm: the exact ufunc-by-ufunc
  sequence the eager tape would have executed, so its results are
  bit-identical to unfused eager execution by construction.
- the C arm (:mod:`repro.codegen.crender` + :mod:`repro.codegen.jit`) —
  one compiled loop kernel.  Every region op maps to an IEEE-754 scalar
  operation that numpy also implements as a plain IEEE op, so the two arms
  are **bit-equal**; that equality is the contract the test suite enforces.

:meth:`RegionIR.signature` is the kernel-cache key: it abstracts concrete
sizes into per-input *broadcast patterns* (which output dims an input
actually strides over), so one compiled kernel serves every batch size of
the same region structure, while a dtype or rank change misses the cache.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = ["REGION_OPS", "RegionInput", "RegionIR"]

#: Ops a region may contain.  Deliberately restricted to operations whose
#: C scalar form is bit-equal to the numpy ufunc (IEEE add/sub/mul/div/neg
#: plus the relu max-with-zero): transcendentals (exp, tanh, ...) use
#: numpy's own SIMD polynomials and would break the two-arm equality.
REGION_OPS = ("add", "sub", "mul", "div", "neg", "relu")

_ARITY = {"add": 2, "sub": 2, "mul": 2, "div": 2, "neg": 1, "relu": 1}

_UFUNC = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "div": np.divide,
}


class RegionInput:
    """One region operand: dtype/shape metadata plus optional binding.

    ``shape`` is the *effective* shape (after ``reshape``) that participates
    in broadcasting.  ``const`` pins the operand to a fixed array at build
    time; const inputs are skipped in the dynamic-argument list callers pass
    to the compiled kernel.
    """

    __slots__ = ("dtype", "shape", "reshape", "const")

    def __init__(
        self,
        dtype,
        shape: Tuple[int, ...],
        reshape: Optional[Tuple[int, ...]] = None,
        const: Optional[np.ndarray] = None,
    ) -> None:
        self.dtype = np.dtype(dtype)
        self.shape = tuple(shape)
        self.reshape = tuple(reshape) if reshape is not None else None
        self.const = const


class RegionIR:
    """A fused elementwise region: inputs + linear op program.

    Parameters
    ----------
    inputs:
        The region operands, in the order dynamic arguments are passed.
    ops:
        ``(op, src_slots)`` pairs; ``src_slots`` index inputs
        (``< len(inputs)``) or earlier op results (``len(inputs) + i``).
    out_shape, out_dtype:
        Shape/dtype of the final op's result (the region output).
    """

    __slots__ = ("inputs", "ops", "out_shape", "out_dtype", "_signature")

    def __init__(
        self,
        inputs: Sequence[RegionInput],
        ops: Sequence[Tuple[str, Tuple[int, ...]]],
        out_shape: Tuple[int, ...],
        out_dtype,
    ) -> None:
        self.inputs = tuple(inputs)
        self.ops = tuple((op, tuple(srcs)) for op, srcs in ops)
        self.out_shape = tuple(out_shape)
        self.out_dtype = np.dtype(out_dtype)
        self._signature = None
        if not self.ops:
            raise ValueError("a region needs at least one op")
        if self.out_dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError(f"regions are float32/float64 only, got {self.out_dtype}")
        n_in = len(self.inputs)
        for i, (op, srcs) in enumerate(self.ops):
            if op not in _ARITY:
                raise ValueError(f"unknown region op {op!r}")
            if len(srcs) != _ARITY[op]:
                raise ValueError(f"op {op!r} takes {_ARITY[op]} operands, got {len(srcs)}")
            for s in srcs:
                if not 0 <= s < n_in + i:
                    raise ValueError(f"op {i} ({op}) references undefined slot {s}")
        for inp in self.inputs:
            if inp.dtype != self.out_dtype:
                raise ValueError(
                    f"region inputs must share the output dtype {self.out_dtype}, "
                    f"got {inp.dtype}"
                )

    @property
    def num_dynamic(self) -> int:
        """How many (non-const) arrays a caller passes per execution."""
        return sum(1 for inp in self.inputs if inp.const is None)

    # ------------------------------------------------------------------ #
    # Cache key
    # ------------------------------------------------------------------ #
    def broadcast_pattern(self, inp: RegionInput) -> Tuple[int, ...]:
        """Which output dims ``inp`` strides over: 1 = real dim, 0 = broadcast.

        The input's effective shape is right-aligned against the output
        shape (numpy broadcasting); missing leading dims and size-1 dims
        read with stride 0.
        """
        ndim = len(self.out_shape)
        shape = (1,) * (ndim - len(inp.shape)) + inp.shape
        return tuple(0 if s == 1 else 1 for s in shape)

    def signature(self) -> tuple:
        """Structural kernel-cache key: op program, dtype, rank, broadcast
        patterns — everything the rendered C depends on, and nothing else
        (concrete sizes are runtime arguments, so one kernel serves every
        batch size)."""
        sig = self._signature
        if sig is None:
            sig = (
                self.ops,
                str(self.out_dtype),
                len(self.out_shape),
                tuple(self.broadcast_pattern(inp) for inp in self.inputs),
            )
            self._signature = sig
        return sig

    def respecialize(self, shapes: Sequence[Tuple[int, ...]]) -> "RegionIR":
        """The same program over new *dynamic* input shapes.

        Used when a captured region is replayed over a different batch
        size: the op program (and usually the kernel-cache signature) is
        unchanged, only the concrete shapes move.  Const inputs keep their
        pinned shapes; reshaped inputs are not supported (the caller's
        array shape would be pre-reshape and ambiguous).
        """
        new_inputs = []
        slot_shapes = []
        j = 0
        for inp in self.inputs:
            if inp.const is not None:
                new_inputs.append(inp)
                slot_shapes.append(inp.shape)
                continue
            if inp.reshape is not None:
                raise ValueError("cannot respecialize a region with reshaped inputs")
            shape = tuple(shapes[j])
            j += 1
            new_inputs.append(RegionInput(inp.dtype, shape))
            slot_shapes.append(shape)
        for op, srcs in self.ops:
            if op in ("neg", "relu"):
                slot_shapes.append(slot_shapes[srcs[0]])
            else:
                slot_shapes.append(
                    tuple(np.broadcast_shapes(slot_shapes[srcs[0]], slot_shapes[srcs[1]]))
                )
        return RegionIR(new_inputs, self.ops, slot_shapes[-1], self.out_dtype)

    # ------------------------------------------------------------------ #
    # Binding + the numpy interpreter arm
    # ------------------------------------------------------------------ #
    def bind(self, arrays: Sequence[np.ndarray]) -> list:
        """Resolve the full operand list: consts spliced in, reshapes applied.

        Validates the dynamic arrays against the recorded shapes — a
        mismatch would make the compiled kernel's stride arithmetic read out
        of bounds, so it is a hard error, not a silent best-effort.
        """
        bound = []
        j = 0
        for i, inp in enumerate(self.inputs):
            if inp.const is not None:
                bound.append(inp.const)
                continue
            if j >= len(arrays):
                raise ValueError(
                    f"region takes {self.num_dynamic} arrays, got {len(arrays)}"
                )
            a = arrays[j]
            j += 1
            if inp.reshape is not None:
                a = a.reshape(inp.reshape)
            if a.shape != inp.shape:
                raise ValueError(
                    f"region input {i} has shape {a.shape}, expected {inp.shape}"
                )
            if a.dtype != inp.dtype:
                raise ValueError(
                    f"region input {i} has dtype {a.dtype}, expected {inp.dtype}"
                )
            bound.append(a)
        if j != len(arrays):
            raise ValueError(
                f"region takes {self.num_dynamic} arrays, got {len(arrays)}"
            )
        return bound

    def interpret(
        self, arrays: Sequence[np.ndarray], out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """The numpy-interpreter arm: run the program ufunc by ufunc.

        This is exactly the op sequence the eager (unfused) tape executed,
        so results are bit-identical to no-fusion by construction; it is
        also the reference the C arm must match.  ``out``, when given, is
        used as the final op's ``out=`` buffer (same values, zero-alloc).
        """
        vals = self.bind(arrays)
        last = len(self.ops) - 1
        for i, (op, srcs) in enumerate(self.ops):
            dst = out if (i == last and out is not None) else None
            if op == "neg":
                r = np.negative(vals[srcs[0]], out=dst)
            elif op == "relu":
                r = np.maximum(vals[srcs[0]], 0.0, out=dst)
            else:
                r = _UFUNC[op](vals[srcs[0]], vals[srcs[1]], out=dst)
            vals.append(r)
        return vals[-1]
