"""Region codegen: elementwise region IR → one compiled C loop kernel.

See :mod:`repro.codegen.region` for the IR, :mod:`repro.codegen.crender`
for the C renderer, and :mod:`repro.codegen.jit` for compilation, the
on-disk kernel cache, and the numpy-interpreter fallback arm.
"""

from repro.codegen.jit import (
    clear_kernel_memo,
    codegen_enabled,
    codegen_stats,
    compile_region,
    enable_codegen,
    have_compiler,
    ingest_worker_codegen_stats,
    kernel_cache_dir,
    using_codegen,
)
from repro.codegen.region import (
    REGION_OPS,
    REGION_STRUCTURED_OPS,
    RegionInput,
    RegionIR,
)

__all__ = [
    "REGION_OPS",
    "REGION_STRUCTURED_OPS",
    "RegionInput",
    "RegionIR",
    "clear_kernel_memo",
    "codegen_enabled",
    "codegen_stats",
    "compile_region",
    "enable_codegen",
    "have_compiler",
    "ingest_worker_codegen_stats",
    "kernel_cache_dir",
    "using_codegen",
]
