"""Compile region kernels to native code, with an on-disk kernel cache.

Pipeline: region → structural signature → C source
(:mod:`repro.codegen.crender`) → shared object compiled by the system C
compiler → loaded through :mod:`cffi` (ABI mode; :mod:`ctypes` when cffi is
unavailable).  Kernels are cached at three levels:

- **in process** by signature, so repeated flushes/compiles of the same
  region structure resolve to one loaded function;
- **on disk** under ``$REPRO_KERNEL_CACHE`` (default
  ``~/.cache/repro/kernels``), content-hashed over the C source *and* the
  compiler identity, so a cc upgrade or a renderer change can never serve a
  stale binary.  Entries are written atomically (temp file +
  ``os.replace``) so concurrent processes race benignly;
- a **corrupted entry** (truncated .so, missing symbol) is unlinked and
  recompiled instead of crashing.

When codegen is disabled (``REPRO_CODEGEN=0``), no compiler is available,
or a compile fails, :func:`compile_region` falls back to the numpy
interpreter arm — bit-equal to the compiled arm by contract, so the
fallback is purely a performance event.  It is counted as one: the module
registers ``repro_codegen_*`` counters and a ``compile_ms`` histogram in
the process-default observability registry (:func:`repro.obs.get_registry`),
all off the kernel execution hot path.
"""

from __future__ import annotations

import contextlib
import os
import shutil
import subprocess
import tempfile
import threading
import time
from pathlib import Path
from typing import Callable, Optional

import numpy as np

from repro.codegen.crender import render_kernel
from repro.codegen.region import RegionIR

__all__ = [
    "codegen_enabled",
    "enable_codegen",
    "using_codegen",
    "have_compiler",
    "kernel_cache_dir",
    "compile_region",
    "clear_kernel_memo",
    "codegen_stats",
]

_FALSY = ("", "0", "off", "false", "no")

#: Programmatic override of the REPRO_CODEGEN environment toggle.
_OVERRIDE: Optional[bool] = None


def codegen_enabled() -> bool:
    """Whether :func:`compile_region` may emit native kernels.

    :func:`enable_codegen` / :func:`using_codegen` take precedence;
    otherwise ``REPRO_CODEGEN`` decides (**on** by default — unlike fusion,
    codegen only runs where fusion already placed a region, and it degrades
    gracefully to the interpreter without a compiler).
    """
    if _OVERRIDE is not None:
        return _OVERRIDE
    return os.environ.get("REPRO_CODEGEN", "1").strip().lower() not in _FALSY


def enable_codegen(flag: Optional[bool]) -> None:
    """Force codegen on/off, or ``None`` for the environment default."""
    global _OVERRIDE
    _OVERRIDE = flag


@contextlib.contextmanager
def using_codegen(flag: bool):
    """Scoped :func:`enable_codegen`, restoring the previous override."""
    global _OVERRIDE
    previous = _OVERRIDE
    _OVERRIDE = bool(flag)
    try:
        yield
    finally:
        _OVERRIDE = previous


def kernel_cache_dir() -> Path:
    """The on-disk kernel cache directory (``REPRO_KERNEL_CACHE`` override)."""
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return Path(override)
    return Path(os.path.expanduser("~")) / ".cache" / "repro" / "kernels"


# --------------------------------------------------------------------------- #
# Compiler discovery
# --------------------------------------------------------------------------- #
_cc_cache: Optional[tuple] = None  # (path or None, version string)


def _compiler() -> tuple:
    global _cc_cache
    if _cc_cache is None:
        path = None
        for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
            if cand and shutil.which(cand):
                path = shutil.which(cand)
                break
        version = ""
        if path:
            try:
                proc = subprocess.run(
                    [path, "--version"], capture_output=True, text=True, timeout=10
                )
                version = proc.stdout.splitlines()[0] if proc.stdout else ""
            except (OSError, subprocess.SubprocessError):
                path = None
        _cc_cache = (path, version)
    return _cc_cache


def have_compiler() -> bool:
    """Whether a usable C compiler was found (``$CC``, cc, gcc, clang)."""
    return _compiler()[0] is not None


# --------------------------------------------------------------------------- #
# Observability
# --------------------------------------------------------------------------- #
_metrics_cache = None


def _metrics():
    """Codegen counters in the process-default registry (lazy, cached)."""
    global _metrics_cache
    if _metrics_cache is None:
        from repro.obs.metrics import get_registry

        registry = get_registry()
        _metrics_cache = {
            "compiled": registry.counter(
                "repro_codegen_kernels_compiled_total",
                "Region kernels compiled to native code",
            ),
            "cache_hits": registry.counter(
                "repro_codegen_cache_hits_total",
                "Region kernels served from the on-disk cache",
            ),
            "fallback": registry.counter(
                "repro_codegen_fallback_total",
                "Regions resolved to the numpy-interpreter arm "
                "(codegen disabled, no compiler, or compile failure)",
            ),
            "compile_ms": registry.histogram(
                "repro_codegen_compile_ms",
                "Wall time of one region kernel compile",
                buckets=(1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0),
            ),
        }
    return _metrics_cache


def codegen_stats() -> dict:
    """Plain-int snapshot of the codegen counters (tests, bench reports)."""
    with _LOCK:
        return dict(_STATS)


_STATS = {"compiled": 0, "disk_hits": 0, "memo_hits": 0, "fallbacks": 0}


# --------------------------------------------------------------------------- #
# Kernel compilation + loading
# --------------------------------------------------------------------------- #
_LOCK = threading.Lock()
#: signature -> (raw_fn, keepalive) | None (None = interpreter fallback).
_MEMO: dict = {}

#: -O3 for auto-vectorization of the elementwise loops (per-element op
#: sequences are independent, so vectorizing them is IEEE-exact); no
#: -ffast-math, and -ffp-contract=off because GCC otherwise contracts
#: a*b+c into FMA, which changes the last bits — the numpy arm never
#: fuses, so the C arm must not either.  The flags participate in the
#: cache content hash: a flag change can never serve a stale binary.
_CFLAGS = ("-O3", "-shared", "-fPIC", "-ffp-contract=off")

try:  # pragma: no cover - exercised via whichever loader is present
    import cffi as _cffi
except ImportError:  # pragma: no cover
    _cffi = None


def clear_kernel_memo() -> None:
    """Drop the in-process kernel memo (tests re-exercise the disk cache)."""
    with _LOCK:
        _MEMO.clear()


def _load(so_path: Path, name: str, n_in: int):
    """Load one kernel symbol; raises OSError/AttributeError on corruption."""
    if _cffi is not None:
        ffi = _cffi.FFI()
        # ABI-level pointer args: the calling convention only needs "pointer",
        # so void* avoids re-declaring the kernel's typed prototype.
        ffi.cdef(
            f"void {name}(" + ", ".join(["const void *"] * (n_in + 1)) + ", void *);"
        )
        lib = ffi.dlopen(str(so_path))
        fn = getattr(lib, name)

        from_buffer = ffi.from_buffer

        def call(shape_arr, arrays, out):
            fn(
                from_buffer(shape_arr),
                *(from_buffer(a) for a in arrays),
                from_buffer(out, require_writable=True),
            )

        return call, (ffi, lib)

    import ctypes

    lib = ctypes.CDLL(str(so_path))
    fn = getattr(lib, name)
    fn.argtypes = [ctypes.c_void_p] * (n_in + 2)
    fn.restype = None

    def call(shape_arr, arrays, out):
        fn(
            shape_arr.ctypes.data,
            *(a.ctypes.data for a in arrays),
            out.ctypes.data,
        )

    return call, (lib,)


def _compile_to_cache(signature) -> Optional[tuple]:
    """Compile (or cache-load) the kernel for one signature.

    Returns ``(call, keepalive)`` or ``None`` when the native arm is
    unavailable.  Caller holds no locks; the memo is updated by the caller.
    """
    cc, cc_version = _compiler()
    if cc is None:
        return None
    name, source = render_kernel(signature)
    import hashlib

    content = hashlib.sha256(
        (source + "\x00" + cc_version + "\x00" + " ".join(_CFLAGS)).encode()
    ).hexdigest()[:20]
    cache_dir = kernel_cache_dir()
    so_path = cache_dir / f"{name}-{content}.so"
    n_in = len(signature[3])

    if so_path.exists():
        try:
            loaded = _load(so_path, name, n_in)
            _metrics()["cache_hits"].inc()
            with _LOCK:
                _STATS["disk_hits"] += 1
            return loaded
        except (OSError, AttributeError):
            # Corrupted entry (truncated write, bad disk, wrong arch):
            # drop it and recompile below.
            with contextlib.suppress(OSError):
                so_path.unlink()

    try:
        cache_dir.mkdir(parents=True, exist_ok=True)
    except OSError:
        return None
    start = time.perf_counter()
    tmp_dir = tempfile.mkdtemp(dir=str(cache_dir))
    try:
        c_path = Path(tmp_dir) / f"{name}.c"
        tmp_so = Path(tmp_dir) / f"{name}.so"
        c_path.write_text(source)
        proc = subprocess.run(
            [cc, *_CFLAGS, "-o", str(tmp_so), str(c_path)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        if proc.returncode != 0:
            return None
        # Keep the source next to the binary for debuggability; both are
        # content-addressed, so concurrent racers write identical bytes.
        with contextlib.suppress(OSError):
            os.replace(str(c_path), str(cache_dir / f"{name}-{content}.c"))
        os.replace(str(tmp_so), str(so_path))
    except (OSError, subprocess.SubprocessError):
        return None
    finally:
        shutil.rmtree(tmp_dir, ignore_errors=True)
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    try:
        loaded = _load(so_path, name, n_in)
    except (OSError, AttributeError):
        return None
    _metrics()["compiled"].inc()
    _metrics()["compile_ms"].observe(elapsed_ms)
    with _LOCK:
        _STATS["compiled"] += 1
    return loaded


def _kernel_for(signature):
    """The loaded native kernel for ``signature``, or ``None`` (memoized)."""
    with _LOCK:
        if signature in _MEMO:
            _STATS["memo_hits"] += 1
            return _MEMO[signature]
    resolved = _compile_to_cache(signature)
    with _LOCK:
        # A racing thread may have resolved it first; keep the winner so
        # both closures share one loaded library.
        existing = _MEMO.setdefault(signature, resolved)
    return existing


# --------------------------------------------------------------------------- #
# The public fusion point
# --------------------------------------------------------------------------- #
def compile_region(region: RegionIR) -> Callable:
    """Compile one region into ``kernel(arrays, out=None) -> ndarray``.

    The returned callable takes the region's *dynamic* input arrays (consts
    are bound inside) and an optional pre-allocated ``out`` buffer.  It runs
    the native kernel when codegen is enabled and a compiler is available,
    and the numpy-interpreter arm otherwise — the two arms are bit-equal,
    so which one you got is observable only through the codegen counters
    (and :func:`codegen_stats`).
    """
    resolved = None
    if codegen_enabled():
        resolved = _kernel_for(region.signature())
    if resolved is None:
        _metrics()["fallback"].inc()
        with _LOCK:
            _STATS["fallbacks"] += 1
        interpret = region.interpret

        def kernel(arrays, out=None):
            return interpret(arrays, out=out)

        kernel.is_compiled = False
        return kernel

    call, _keepalive = resolved
    bind = region.bind
    out_shape = region.out_shape
    out_dtype = region.out_dtype
    shape_arr = np.asarray(out_shape or (0,), dtype=np.int64)
    ascontiguous = np.ascontiguousarray

    def kernel(arrays, out=None):
        bound = [ascontiguous(a) for a in bind(arrays)]
        if out is None:
            out = np.empty(out_shape, out_dtype)
        call(shape_arr, bound, out)
        return out

    kernel.is_compiled = True
    return kernel
