"""Compile region kernels to native code, with an on-disk kernel cache.

Pipeline: region → structural signature → C source
(:mod:`repro.codegen.crender`) → shared object compiled by the system C
compiler → loaded through :mod:`cffi` (ABI mode; :mod:`ctypes` when cffi is
unavailable).  Kernels are cached at three levels:

- **in process** by signature, so repeated flushes/compiles of the same
  region structure resolve to one loaded function;
- **on disk** under ``$REPRO_KERNEL_CACHE`` (default
  ``~/.cache/repro/kernels``), content-hashed over the C source *and* the
  compiler identity, so a cc upgrade or a renderer change can never serve a
  stale binary.  Entries are written atomically (temp file +
  ``os.replace``); concurrent *processes* compiling the same kernel
  additionally serialize on an advisory ``flock`` per entry so N workers
  produce one compile and N-1 disk hits — and when the lock itself is
  unavailable (no :mod:`fcntl`, NFS refusing locks) they fall back to the
  benign atomic-replace race rather than failing;
- a **corrupted entry** (truncated .so, missing symbol) is unlinked and
  recompiled instead of crashing.

*Structured* regions (reduction tails, ``linear`` heads) compile as a
pipeline planned by :func:`repro.codegen.crender.stage_plan`: host GEMMs
into workspaces, then one kernel per map/reduce stage.  Passing
``specialize=True`` renders every stage with its concrete shapes as
literal loop bounds — the serving planner compiles each bucket this way so
``-O3`` can unroll and vectorize batch-1 loops — keyed into the same cache
by (structure, shapes); the dynamic-shape kernels remain the default for
eager/lazy use.

When codegen is disabled (``REPRO_CODEGEN=0``), no compiler is available,
or a compile fails, :func:`compile_region` falls back to the numpy
interpreter arm — bit-equal to the compiled arm by contract, so the
fallback is purely a performance event.  It is counted as one: the module
registers ``repro_codegen_*`` counters and a ``compile_ms`` histogram in
the process-default observability registry (:func:`repro.obs.get_registry`),
all off the kernel execution hot path.  The ``mode``-labelled
``repro_codegen_cache_{hit,miss}_total`` counters separate this process's
traffic (``mode="local"``) from worker-process compiles that
:func:`ingest_worker_codegen_stats` folds in (``mode="process"``).
"""

from __future__ import annotations

import contextlib
import os
import shutil
import subprocess
import tempfile
import threading
import time
from pathlib import Path
from typing import Callable, Optional

import numpy as np

from repro.codegen.crender import kernel_arity, render_kernel, stage_plan
from repro.codegen.region import RegionIR

__all__ = [
    "codegen_enabled",
    "enable_codegen",
    "using_codegen",
    "have_compiler",
    "kernel_cache_dir",
    "compile_region",
    "clear_kernel_memo",
    "codegen_stats",
    "ingest_worker_codegen_stats",
]

_FALSY = ("", "0", "off", "false", "no")

#: Programmatic override of the REPRO_CODEGEN environment toggle.
_OVERRIDE: Optional[bool] = None


def codegen_enabled() -> bool:
    """Whether :func:`compile_region` may emit native kernels.

    :func:`enable_codegen` / :func:`using_codegen` take precedence;
    otherwise ``REPRO_CODEGEN`` decides (**on** by default — unlike fusion,
    codegen only runs where fusion already placed a region, and it degrades
    gracefully to the interpreter without a compiler).
    """
    if _OVERRIDE is not None:
        return _OVERRIDE
    return os.environ.get("REPRO_CODEGEN", "1").strip().lower() not in _FALSY


def enable_codegen(flag: Optional[bool]) -> None:
    """Force codegen on/off, or ``None`` for the environment default."""
    global _OVERRIDE
    _OVERRIDE = flag


@contextlib.contextmanager
def using_codegen(flag: bool):
    """Scoped :func:`enable_codegen`, restoring the previous override."""
    global _OVERRIDE
    previous = _OVERRIDE
    _OVERRIDE = bool(flag)
    try:
        yield
    finally:
        _OVERRIDE = previous


def kernel_cache_dir() -> Path:
    """The on-disk kernel cache directory (``REPRO_KERNEL_CACHE`` override)."""
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return Path(override)
    return Path(os.path.expanduser("~")) / ".cache" / "repro" / "kernels"


# --------------------------------------------------------------------------- #
# Compiler discovery
# --------------------------------------------------------------------------- #
_cc_cache: Optional[tuple] = None  # (path or None, version string)


def _compiler() -> tuple:
    global _cc_cache
    if _cc_cache is None:
        path = None
        for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
            if cand and shutil.which(cand):
                path = shutil.which(cand)
                break
        version = ""
        if path:
            try:
                proc = subprocess.run(
                    [path, "--version"], capture_output=True, text=True, timeout=10
                )
                version = proc.stdout.splitlines()[0] if proc.stdout else ""
            except (OSError, subprocess.SubprocessError):
                path = None
        _cc_cache = (path, version)
    return _cc_cache


def have_compiler() -> bool:
    """Whether a usable C compiler was found (``$CC``, cc, gcc, clang)."""
    return _compiler()[0] is not None


# --------------------------------------------------------------------------- #
# Observability
# --------------------------------------------------------------------------- #
_metrics_cache = None


def _metrics():
    """Codegen counters in the process-default registry (lazy, cached)."""
    global _metrics_cache
    if _metrics_cache is None:
        from repro.obs.metrics import get_registry

        registry = get_registry()
        _metrics_cache = {
            "compiled": registry.counter(
                "repro_codegen_kernels_compiled_total",
                "Region kernels compiled to native code",
            ),
            "cache_hits": registry.counter(
                "repro_codegen_cache_hits_total",
                "Region kernels served from the on-disk cache",
            ),
            "fallback": registry.counter(
                "repro_codegen_fallback_total",
                "Regions resolved to the numpy-interpreter arm "
                "(codegen disabled, no compiler, or compile failure)",
            ),
            "compile_ms": registry.histogram(
                "repro_codegen_compile_ms",
                "Wall time of one region kernel compile",
                buckets=(1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0),
            ),
            "cache_hit": registry.counter(
                "repro_codegen_cache_hit_total",
                "Kernel lookups resolved without compiling (memo or disk), "
                "by where the lookup ran",
                labelnames=("mode",),
            ),
            "cache_miss": registry.counter(
                "repro_codegen_cache_miss_total",
                "Kernel lookups that compiled from source, by where the "
                "compile ran",
                labelnames=("mode",),
            ),
        }
    return _metrics_cache


def codegen_stats() -> dict:
    """Plain-int snapshot of the codegen counters (tests, bench reports)."""
    with _LOCK:
        return dict(_STATS)


def ingest_worker_codegen_stats(stats: dict, mode: str = "process") -> None:
    """Fold a worker process's :func:`codegen_stats` snapshot into this
    process's ``mode``-labelled cache counters.

    ``ProcServer`` workers compile kernels in their own processes, invisible
    to the parent's ``/metrics`` edge; each worker reports its snapshot once
    (at ready-handshake time, when its session pool — and therefore every
    kernel it will use — has been built), so snapshots are deltas and sum
    correctly across respawns.
    """
    hits = int(stats.get("disk_hits", 0)) + int(stats.get("memo_hits", 0))
    misses = int(stats.get("compiled", 0))
    metrics = _metrics()
    if hits:
        metrics["cache_hit"].labels(mode=mode).inc(hits)
    if misses:
        metrics["cache_miss"].labels(mode=mode).inc(misses)


_STATS = {"compiled": 0, "disk_hits": 0, "memo_hits": 0, "fallbacks": 0}


# --------------------------------------------------------------------------- #
# Kernel compilation + loading
# --------------------------------------------------------------------------- #
_LOCK = threading.Lock()
#: signature -> (raw_fn, keepalive) | None (None = interpreter fallback).
_MEMO: dict = {}

#: -O3 for auto-vectorization of the elementwise loops (per-element op
#: sequences are independent, so vectorizing them is IEEE-exact); no
#: -ffast-math, and -ffp-contract=off because GCC otherwise contracts
#: a*b+c into FMA, which changes the last bits — the numpy arm never
#: fuses, so the C arm must not either.  The flags participate in the
#: cache content hash: a flag change can never serve a stale binary.
_CFLAGS = ("-O3", "-shared", "-fPIC", "-ffp-contract=off")

try:  # pragma: no cover - exercised via whichever loader is present
    import cffi as _cffi
except ImportError:  # pragma: no cover
    _cffi = None


def clear_kernel_memo() -> None:
    """Drop the in-process kernel memo (tests re-exercise the disk cache)."""
    with _LOCK:
        _MEMO.clear()


def _load(so_path: Path, name: str, n_in: int):
    """Load one kernel symbol; raises OSError/AttributeError on corruption."""
    if _cffi is not None:
        ffi = _cffi.FFI()
        # ABI-level pointer args: the calling convention only needs "pointer",
        # so void* avoids re-declaring the kernel's typed prototype.
        ffi.cdef(
            f"void {name}(" + ", ".join(["const void *"] * (n_in + 1)) + ", void *);"
        )
        lib = ffi.dlopen(str(so_path))
        fn = getattr(lib, name)

        from_buffer = ffi.from_buffer

        def call(shape_arr, arrays, out):
            fn(
                from_buffer(shape_arr),
                *(from_buffer(a) for a in arrays),
                from_buffer(out, require_writable=True),
            )

        return call, (ffi, lib)

    import ctypes

    lib = ctypes.CDLL(str(so_path))
    fn = getattr(lib, name)
    fn.argtypes = [ctypes.c_void_p] * (n_in + 2)
    fn.restype = None

    def call(shape_arr, arrays, out):
        fn(
            shape_arr.ctypes.data,
            *(a.ctypes.data for a in arrays),
            out.ctypes.data,
        )

    return call, (lib,)


@contextlib.contextmanager
def _entry_lock(cache_dir: Path, stem: str):
    """Advisory per-entry lock for cross-process compile serialization.

    Lock-or-lose-gracefully: when :mod:`fcntl` is unavailable or the
    filesystem refuses the lock, yield without it — the atomic
    ``os.replace`` publish keeps the unlocked race benign (last writer
    wins with identical bytes), it just wastes a duplicate compile.
    The ``.lock`` file is left in place; unlinking it would race with a
    process that just opened it.
    """
    handle = None
    locked = False
    try:
        import fcntl

        handle = open(cache_dir / f"{stem}.lock", "a+b")
        fcntl.flock(handle, fcntl.LOCK_EX)
        locked = True
    except (ImportError, OSError):
        pass
    try:
        yield locked
    finally:
        if handle is not None:
            if locked:
                with contextlib.suppress(OSError):
                    import fcntl

                    fcntl.flock(handle, fcntl.LOCK_UN)
            handle.close()


def _try_disk_hit(so_path: Path, name: str, n_in: int) -> Optional[tuple]:
    """Load an existing cache entry; unlink (don't crash) on corruption."""
    if not so_path.exists():
        return None
    try:
        loaded = _load(so_path, name, n_in)
    except (OSError, AttributeError):
        # Corrupted entry (truncated write, bad disk, wrong arch):
        # drop it and let the caller recompile.
        with contextlib.suppress(OSError):
            so_path.unlink()
        return None
    _metrics()["cache_hits"].inc()
    _metrics()["cache_hit"].labels(mode="local").inc()
    with _LOCK:
        _STATS["disk_hits"] += 1
    return loaded


def _compile_to_cache(signature) -> Optional[tuple]:
    """Compile (or cache-load) the kernel for one signature.

    Returns ``(call, keepalive)`` or ``None`` when the native arm is
    unavailable.  Caller holds no locks; the memo is updated by the caller.
    """
    cc, cc_version = _compiler()
    if cc is None:
        return None
    name, source = render_kernel(signature)
    import hashlib

    content = hashlib.sha256(
        (source + "\x00" + cc_version + "\x00" + " ".join(_CFLAGS)).encode()
    ).hexdigest()[:20]
    cache_dir = kernel_cache_dir()
    so_path = cache_dir / f"{name}-{content}.so"
    n_in = kernel_arity(signature)

    loaded = _try_disk_hit(so_path, name, n_in)
    if loaded is not None:
        return loaded

    try:
        cache_dir.mkdir(parents=True, exist_ok=True)
    except OSError:
        return None

    with _entry_lock(cache_dir, f"{name}-{content}"):
        # Double-check under the lock: the process that held it before us
        # may have just published this entry.
        loaded = _try_disk_hit(so_path, name, n_in)
        if loaded is not None:
            return loaded

        start = time.perf_counter()
        tmp_dir = tempfile.mkdtemp(dir=str(cache_dir))
        try:
            c_path = Path(tmp_dir) / f"{name}.c"
            tmp_so = Path(tmp_dir) / f"{name}.so"
            c_path.write_text(source)
            proc = subprocess.run(
                [cc, *_CFLAGS, "-o", str(tmp_so), str(c_path)],
                capture_output=True,
                text=True,
                timeout=120,
            )
            if proc.returncode != 0:
                return None
            # Keep the source next to the binary for debuggability; both are
            # content-addressed, so concurrent racers write identical bytes.
            with contextlib.suppress(OSError):
                os.replace(str(c_path), str(cache_dir / f"{name}-{content}.c"))
            os.replace(str(tmp_so), str(so_path))
        except (OSError, subprocess.SubprocessError):
            return None
        finally:
            shutil.rmtree(tmp_dir, ignore_errors=True)
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    try:
        loaded = _load(so_path, name, n_in)
    except (OSError, AttributeError):
        return None
    _metrics()["compiled"].inc()
    _metrics()["compile_ms"].observe(elapsed_ms)
    _metrics()["cache_miss"].labels(mode="local").inc()
    with _LOCK:
        _STATS["compiled"] += 1
    return loaded


def _kernel_for(signature):
    """The loaded native kernel for ``signature``, or ``None`` (memoized)."""
    sentinel = object()
    with _LOCK:
        resolved = _MEMO.get(signature, sentinel)
        if resolved is not sentinel:
            _STATS["memo_hits"] += 1
    if resolved is not sentinel:
        if resolved is not None:
            # Memoized fallbacks (None) are not cache hits — nothing was
            # served; they re-count as fallbacks at the region level.
            _metrics()["cache_hit"].labels(mode="local").inc()
        return resolved
    resolved = _compile_to_cache(signature)
    with _LOCK:
        # A racing thread may have resolved it first; keep the winner so
        # both closures share one loaded library.
        existing = _MEMO.setdefault(signature, resolved)
    return existing


# --------------------------------------------------------------------------- #
# The public fusion point
# --------------------------------------------------------------------------- #
def _as_buffer(a: np.ndarray) -> np.ndarray:
    """A ≥1-d view for the FFI layer (0-d arrays confuse ``from_buffer``)."""
    return a if a.ndim else a.reshape(1)


def _elementwise_kernel(region: RegionIR, resolved: tuple) -> Callable:
    call, _keepalive = resolved
    bind = region.bind
    out_shape = region.out_shape
    out_dtype = region.out_dtype
    shape_arr = np.asarray(out_shape or (0,), dtype=np.int64)
    ascontiguous = np.ascontiguousarray

    def kernel(arrays, out=None):
        bound = [ascontiguous(a) for a in bind(arrays)]
        if out is None:
            out = np.empty(out_shape, out_dtype)
        call(shape_arr, bound, out)
        return out

    kernel.is_compiled = True
    return kernel


def _structured_kernel(region: RegionIR, specialize: bool) -> Optional[Callable]:
    """Compile a structured region as host GEMMs + a stage pipeline.

    Returns ``None`` when the program cannot be stage-planned or any stage
    fails to compile — the caller falls back to the interpreter arm for the
    *whole* region, keeping the two-arm bit-equality trivially.
    """
    plan = stage_plan(region)
    if plan is None:
        return None
    dtype_str = str(region.out_dtype)
    calls = []
    for stage in plan.stages:
        resolved = _kernel_for(stage.signature(dtype_str, specialize))
        if resolved is None:
            return None
        calls.append(resolved[0])

    out_dtype = region.out_dtype
    out_shape = region.out_shape
    bind = region.bind
    ascontiguous = np.ascontiguousarray
    matmuls = plan.matmuls
    stages = plan.stages
    last = len(stages) - 1
    dims = [np.asarray(st.core_shape or (0,), dtype=np.int64) for st in stages]
    scratch_n = [
        int(np.prod(st.core_shape[len(st.core_shape) - st.reduce[0]:], dtype=np.int64))
        if st.reduce is not None else 0
        for st in stages
    ]

    def kernel(arrays, out=None):
        bound = [ascontiguous(a) for a in bind(arrays)]
        mm_outs = [np.matmul(bound[x], bound[w]) for x, w, _b, _shape in matmuls]
        stage_outs = []
        for si, stage in enumerate(stages):
            ins = []
            for kind, idx in stage.inputs:
                if kind == "ext":
                    ins.append(bound[idx])
                elif kind == "mm":
                    ins.append(mm_outs[idx])
                else:
                    ins.append(stage_outs[idx])
            ins = [_as_buffer(a) for a in ins]
            if stage.reduce is not None:
                ins.append(np.empty(scratch_n[si], out_dtype))
            if si == last:
                buf = np.empty(out_shape, out_dtype) if out is None else out
            else:
                buf = np.empty(stage.out_shape, out_dtype)
            calls[si](dims[si], ins, _as_buffer(buf))
            stage_outs.append(buf)
        return stage_outs[-1]

    kernel.is_compiled = True
    return kernel


def compile_region(region: RegionIR, specialize: bool = False) -> Callable:
    """Compile one region into ``kernel(arrays, out=None) -> ndarray``.

    The returned callable takes the region's *dynamic* input arrays (consts
    are bound inside) and an optional pre-allocated ``out`` buffer.  It runs
    the native kernel when codegen is enabled and a compiler is available,
    and the numpy-interpreter arm otherwise — the two arms are bit-equal,
    so which one you got is observable only through the codegen counters
    (and :func:`codegen_stats`).

    With ``specialize=True`` the kernels render with the region's concrete
    shapes as literal loop bounds (and literal strides), trading one cache
    entry per shape for fully unrollable loops — the serving planner opts
    in per compiled bucket, where the shapes are known and stable.
    Specialized and dynamic kernels of the same region are distinct cache
    entries; the numeric results are identical either way.
    """
    if codegen_enabled():
        if region.is_elementwise:
            if specialize:
                signature = (
                    "spec",
                    region.ops,
                    str(region.out_dtype),
                    region.out_shape,
                    tuple(inp.shape for inp in region.inputs),
                )
            else:
                signature = region.signature()
            resolved = _kernel_for(signature)
            if resolved is not None:
                return _elementwise_kernel(region, resolved)
        else:
            kernel = _structured_kernel(region, specialize)
            if kernel is not None:
                return kernel

    _metrics()["fallback"].inc()
    with _LOCK:
        _STATS["fallbacks"] += 1
    interpret = region.interpret

    def kernel(arrays, out=None):
        return interpret(arrays, out=out)

    kernel.is_compiled = False
    return kernel
